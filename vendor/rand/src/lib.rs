//! Minimal offline stand-in for the `rand` crate: the `RngCore`,
//! `SeedableRng` and `Rng` traits plus uniform range sampling — the subset
//! this workspace uses. Deterministic given the generator's stream;
//! distribution quality is inherited from the backing generator.

use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit state into a full seed via SplitMix64 (the same
    /// construction the real crate uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Namespace parity with the real crate (unused generators omitted).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Counter(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
