//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements enough of the API for `harness = false` benches to compile
//! and produce useful wall-clock numbers: warm-up + N timed samples with
//! mean/min reporting and optional byte throughput. No statistics engine,
//! no plots, no CLI filtering.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` only, re-running `setup` before every sample.
    pub fn iter_with_setup<S, O, SF: FnMut() -> S, RF: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut routine: RF,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_count {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, group: &str, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{name}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().unwrap();
        let extra = match throughput {
            Some(Throughput::Bytes(b)) if mean.as_nanos() > 0 => {
                let gib_s = b as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                format!("  {gib_s:.3} GiB/s")
            }
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{group}/{name}: mean {mean:?} min {min:?} ({} samples){extra}",
            self.samples.len()
        );
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&self.name, &id, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<I: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report("bench", &id, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Bytes(1 << 20));
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_function("setup", |b| b.iter_with_setup(|| 5u64, |x| x * 2));
            g.finish();
        }
        // 1 warm-up + 3 samples
        assert_eq!(ran, 4);
    }
}
