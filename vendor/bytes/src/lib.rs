//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view of an immutable,
//! reference-counted byte buffer — the subset of the real crate's contract
//! the workspace depends on (`From<Vec<u8>>`, `slice`, `Deref`, equality).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer view.
#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A view of a static slice (copies; the real crate borrows, but the
    /// observable behaviour is identical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// An owned copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `range`; shares the underlying buffer (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of {}",
            self.len
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }

    /// The bytes as a plain slice.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// An owned copy of the bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            buf: v.into(),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len > 32 {
            write!(f, "…(+{})", self.len - 32)?;
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_indexes() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s[0], 2);
        let ss = s.slice(1..);
        assert_eq!(ss.to_vec(), vec![3, 4]);
        assert_eq!(b, Bytes::from(vec![1u8, 2, 3, 4, 5]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_oob_panics() {
        let _ = Bytes::from(vec![0u8; 4]).slice(2..9);
    }
}
