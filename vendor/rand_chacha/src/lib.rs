//! Offline stand-in for `rand_chacha` providing [`ChaCha8Rng`].
//!
//! This is a genuine ChaCha8 keystream generator (RFC 8439 quarter-round,
//! 8 rounds), not a toy LCG: the simulation's determinism and statistical
//! quality both ride on it. Word/byte ordering follows the reference
//! implementation; seeding uses [`rand::SeedableRng::seed_from_u64`]'s
//! SplitMix64 expansion.

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    /// 64-bit block counter + 64-bit nonce (always zero nonce).
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let mut w = s;
        for _ in 0..4 {
            // two double-rounds per iteration = 8 rounds total
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = w[i].wrapping_add(s[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Current block counter (introspection / tests).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_roughly_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(0xDA05);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        // 64k bits, expect ~32k ones
        assert!((30_000..34_000).contains(&ones), "bit bias: {ones}");
        let mean: f64 = (0..1000).map(|_| r.gen::<f64>()).sum::<f64>() / 1000.0;
        assert!((0.45..0.55).contains(&mean), "uniform mean off: {mean}");
    }
}
