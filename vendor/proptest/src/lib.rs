//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's property
//! tests use: `proptest!`, `prop_assert*!`, `prop_oneof!`, `Just`, `any`,
//! integer/float range strategies, tuple strategies, `prop_map`, and
//! `prop::collection::{vec, btree_set}`. Cases are generated from a
//! deterministic per-test seed (FNV of the test name); there is no
//! shrinking — a failing case panics with the ordinary assert message.

pub mod test_runner {
    /// Per-test configuration (only the case count is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator driving case production (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// FNV-1a — stable per-test seeds from the test name.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<V> {
        gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Uniform choice between alternative strategies.
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; sizes are best-effort (duplicate
    /// draws collapse, like the real crate under a tight value range).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < want && attempts < want * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of the real crate's `prop::` prelude module.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// The main test macro: each `fn` becomes a `#[test]` running `cases`
/// deterministic iterations with fresh strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::test_runner::TestRng::new(
                $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(x in 3u64..10, pair in (0u8..4, 1i32..5), f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4 && (1..5).contains(&pair.1));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn collections_and_oneof(
            v in prop::collection::vec(prop_oneof![(0u8..9).prop_map(Pick::A), Just(Pick::B)], 2..6),
            s in prop::collection::btree_set(any::<u64>(), 0..5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 5);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::new(crate::test_runner::fnv1a("t"));
        let mut b = crate::test_runner::TestRng::new(crate::test_runner::fnv1a("t"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
