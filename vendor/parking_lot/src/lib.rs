//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives with poisoning unwrapped away, which is
//! exactly the parking_lot API contract this workspace relies on.

use std::sync::{self, TryLockError};

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
