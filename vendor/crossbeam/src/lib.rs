//! Minimal offline stand-in for the `crossbeam` crate: [`scope`] backed by
//! `std::thread::scope`. Only the scoped-spawn API this workspace uses is
//! provided. One behavioural difference from real crossbeam: a panicking
//! child thread propagates its panic out of [`scope`] instead of being
//! returned in the `Err` variant — callers here `.expect()` the result, so
//! both surface the same way.

use std::any::Any;
use std::thread;

/// A handle for spawning scoped threads; mirrors `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (crossbeam
    /// convention) so it could spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

pub mod thread_mod {
    //! Namespace parity shim (real crate exposes `crossbeam::thread`).
    pub use super::{scope, Scope};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let counter_ref = &counter;
        let out = scope(|s| {
            for i in 0..8u64 {
                s.spawn(move |_| {
                    counter_ref.fetch_add(i + 1, Ordering::SeqCst);
                });
            }
            "done"
        })
        .expect("scope");
        assert_eq!(out, "done");
        assert_eq!(counter.load(Ordering::SeqCst), 36);
    }
}
