//! Two-phase (collective-buffering) MPI-IO correctness over the full
//! stack: interleaved writers shuffle through aggregators, and the result
//! must be byte-identical to what independent I/O would have produced.

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_dfs::{Dfs, DfsConfig};
use daos_dfuse::{DfuseConfig, DfuseMount, OpenFlags};
use daos_mpi::MpiWorld;
use daos_mpiio::{assemble, CbMode, Hints, MpiFile, RankFile};
use daos_placement::ObjectClass;
use daos_sim::executor::join_all;
use daos_sim::units::KIB;
use daos_sim::Sim;
use daos_vos::Payload;

const RANKS: usize = 8;
const PIECE: u64 = 64 * KIB;

/// Run an SPMD collective-write + collective-read cycle with the given CB
/// mode and an interleaved (strided) access pattern; verify every byte.
fn run_collective(cb: CbMode, rounds: u64) {
    let mut sim = Sim::new(0xCB0 ^ rounds);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(2));
        let mut mounts = Vec::new();
        for i in 0..2 {
            let client = DaosClient::new(Rc::clone(&cluster), i);
            let pool = client.connect(&sim).await.unwrap();
            let dfs = Dfs::mount(&sim, &pool, 1, DfsConfig::default(), i as u64)
                .await
                .unwrap();
            mounts.push(DfuseMount::new(dfs, DfuseConfig::default()));
        }
        mounts[0]
            .open(&sim, "/coll.dat", OpenFlags::create_with(ObjectClass::SX))
            .await
            .unwrap();
        let world = MpiWorld::new(
            Rc::clone(&cluster.fabric),
            (0..RANKS)
                .map(|r| cluster.client_node((r / 4) as u32))
                .collect(),
        );
        let hints = Hints {
            cb_write: cb,
            cb_read: cb,
            cb_buffer: 256 * KIB,
        };
        let futs: Vec<_> = (0..RANKS)
            .map(|r| {
                let mount = Rc::clone(&mounts[r / 4]);
                let world = Rc::clone(&world);
                let sim = sim.clone();
                async move {
                    let f = mount
                        .open(&sim, "/coll.dat", OpenFlags::read())
                        .await
                        .unwrap();
                    let mf = MpiFile::open(&sim, world.rank(r), RankFile::Posix(f), hints).await;
                    // interleaved pattern: round k, rank r owns
                    // offset (k*RANKS + r) * PIECE — this is what trips
                    // ROMIO's interleave detector and engages aggregation
                    for k in 0..rounds {
                        let off = (k * RANKS as u64 + r as u64) * PIECE;
                        mf.write_at_all(&sim, off, Payload::pattern(r as u64 * 100 + k, PIECE))
                            .await
                            .unwrap();
                    }
                    // read back a *different* rank's stripe collectively
                    let peer = (r + 3) % RANKS;
                    for k in 0..rounds {
                        let off = (k * RANKS as u64 + peer as u64) * PIECE;
                        let segs = mf.read_at_all(&sim, off, PIECE).await.unwrap();
                        let got = assemble(&segs, off, PIECE).materialize();
                        let want = Payload::pattern(peer as u64 * 100 + k, PIECE).materialize();
                        assert_eq!(got, want, "rank {r} round {k}: corrupt collective data");
                    }
                    mf.close(&sim).await;
                }
            })
            .collect();
        join_all(&sim, futs).await;
    });
}

#[test]
fn collective_buffering_auto_engages_on_interleave_and_is_correct() {
    run_collective(CbMode::Auto, 3);
}

#[test]
fn collective_buffering_forced_on_is_correct() {
    run_collective(CbMode::Enable, 2);
}

#[test]
fn collective_buffering_disabled_is_correct() {
    run_collective(CbMode::Disable, 2);
}

#[test]
fn collective_and_independent_results_agree() {
    // write the same interleaved pattern with CB on and off into two
    // files; both must read back identically
    for cb in [CbMode::Enable, CbMode::Disable] {
        run_collective(cb, 2);
    }
}
