//! Determinism regression: the invariant every reproduced claim rests
//! on — a given seed produces a *byte-identical* `BENCH` report, run to
//! run — checked end to end through the serialized JSON.
//!
//! The existing chaos proptest asserts determinism of fault timelines;
//! these tests cover what it does not: the figure-cell bandwidth path
//! (client → fabric → engine → VOS → media with checksums charged) and
//! the scrub/targeted-repair path added with the integrity model. They
//! intentionally share machinery (`run_point_with`, `rot_timeline`) and
//! seeds with the `regress` gate, so a nondeterminism bug that would
//! make CI flaky fails here first, with a readable diff.

use daos_bench::figures::{record_rot_timeline, rot_timeline, REDUCED_REPEATS};
use daos_bench::report::{config_hash, BenchReport};
use daos_bench::{paper_cluster, paper_params, run_point_with, ExperimentPoint};
use daos_ior::Api;
use daos_placement::ObjectClass;

/// The reduced sweep's 1-node Figure-1 cell (DFS-S2, file-per-process),
/// at a CI-friendly volume: same testbed, seed salting and repeat
/// averaging as `regress`, smaller per-rank block.
fn figure_cell_json() -> String {
    let point = ExperimentPoint {
        api: Api::Dfs,
        oclass: ObjectClass::S2,
        client_nodes: 1,
    };
    let mut params = paper_params(point.api, point.oclass, true, 16);
    params.block_size = 4 << 20;
    let m = run_point_with(point, params, 0xF161, REDUCED_REPEATS);
    let mut report = BenchReport::new("determinism_cell", 0xF161);
    report.config_hash = config_hash(&paper_cluster(1));
    report.record(&m.series(), 1, "write_gib_s", m.report.write_gib_s());
    report.record(&m.series(), 1, "read_gib_s", m.report.read_gib_s());
    report.to_json()
}

/// The `regress` scrub-mode rot cell: bit-rot injected on the busiest
/// target, detected by the background scrubber, healed by targeted
/// repair — the PR 2 paths the chaos determinism proptest never drives.
fn scrub_repair_json() -> (String, u64) {
    let mut report = BenchReport::new("determinism_rot", 0x5C2B ^ 1);
    let t = rot_timeline(ObjectClass::RP_2GX, true, 0x5C2B ^ 1);
    let repairs = t.repairs_ok;
    record_rot_timeline(&mut report, &t);
    (report.to_json(), repairs)
}

#[test]
fn figure_cell_reports_are_byte_identical() {
    let a = figure_cell_json();
    let b = figure_cell_json();
    assert!(
        a.contains("write_gib_s") && a.contains("DFS-S2"),
        "report looks empty:\n{a}"
    );
    assert_eq!(a, b, "same seed must serialize to identical bytes");
}

#[test]
fn scrub_repair_reports_are_byte_identical() {
    let (a, repairs_a) = scrub_repair_json();
    let (b, repairs_b) = scrub_repair_json();
    assert!(
        repairs_a > 0,
        "cell must actually exercise targeted repair:\n{a}"
    );
    assert_eq!(repairs_a, repairs_b);
    assert_eq!(a, b, "same seed must serialize to identical bytes");
}
