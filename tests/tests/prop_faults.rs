//! Property-based determinism tests for the fault-injection subsystem:
//! the same seed and the same `FaultPlan` must replay a faulted cluster
//! byte-identically — the property the whole chaos-testing story rests on.

use std::rc::Rc;

use proptest::prelude::*;

use daos_core::{Cluster, ClusterConfig, DaosClient, RetryPolicy};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::fault::FaultPlan;
use daos_sim::time::SimDuration;
use daos_sim::units::KIB;
use daos_sim::Sim;
use daos_vos::Payload;

/// Everything observable a faulted run produces.
#[derive(PartialEq, Debug)]
struct Trace {
    fired: Vec<String>,
    final_time_ns: u64,
    map_version: u32,
    excluded: Vec<u32>,
    read_back: Result<Vec<u8>, String>,
    chunks_repaired: u64,
    chunks_skipped: u64,
}

/// One full simulated run: build a small cluster, arm the plan, write and
/// read a replicated object while the plan fires, and snapshot every
/// observable output.
fn run_once(seed: u64, plan: &FaultPlan) -> Trace {
    let mut sim = Sim::new(seed);
    let plan = plan.clone();
    sim.block_on(move |sim| async move {
        let cfg = ClusterConfig {
            server_nodes: 4,
            engines_per_node: 1,
            targets_per_engine: 2,
            ..ClusterConfig::tiny(1)
        };
        let cluster = Cluster::build(&sim, cfg);
        let injector = cluster.install_fault_plan(&sim, plan);
        let client = DaosClient::new(Rc::clone(&cluster), 0).with_retry(RetryPolicy {
            rpc_timeout: SimDuration::from_ms(2),
            base_backoff: SimDuration::from_us(200),
            max_backoff: SimDuration::from_ms(4),
            max_attempts: 25,
            ..RetryPolicy::default()
        });
        let data = Payload::pattern(3, 256 * KIB);
        // the whole run is best-effort: under an adversarial plan (e.g.
        // the pool-service engine dies early) any step may fail — the
        // property is that it fails *identically* across runs
        let read_back: Result<Vec<u8>, String> = async {
            let pool = client.connect(&sim).await.map_err(|e| e.to_string())?;
            let cont = pool
                .create_container(&sim, 1)
                .await
                .map_err(|e| e.to_string())?;
            let arr = cont
                .object(ObjectId::new(5, 5), ObjectClass::RP_2GX)
                .array(32 * KIB);
            arr.write(&sim, 0, data.clone())
                .await
                .map_err(|e| e.to_string())?;
            arr.read_bytes(&sim, 0, 256 * KIB)
                .await
                .map_err(|e| e.to_string())
        }
        .await;
        // let any in-flight rebuild settle (bounded: plans heal at their
        // horizon, so this terminates)
        cluster.quiesce_rebuild(&sim).await;
        let stats = cluster.rebuild_stats();
        let (map_version, excluded) = {
            let map = cluster.pool_map();
            (map.version(), map.excluded_targets())
        };
        Trace {
            fired: injector
                .fired()
                .iter()
                .map(|(t, a)| format!("{}:{a:?}", t.as_ns()))
                .collect(),
            final_time_ns: sim.now().as_ns(),
            map_version,
            excluded,
            read_back,
            chunks_repaired: stats.chunks_repaired,
            chunks_skipped: stats.chunks_skipped,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `FaultPlan::random` is itself a pure function of its seed.
    #[test]
    fn random_plan_is_reproducible(seed in any::<u64>()) {
        let a = FaultPlan::random(seed, 4, 6, SimDuration::from_ms(50));
        let b = FaultPlan::random(seed, 4, 6, SimDuration::from_ms(50));
        prop_assert_eq!(a.events(), b.events());
    }

    /// Same sim seed + same plan → byte-identical traces, including the
    /// exact virtual time the run finishes at.
    #[test]
    fn faulted_run_is_deterministic(sim_seed in any::<u64>(), plan_seed in any::<u64>()) {
        let plan = FaultPlan::random(plan_seed, 4, 5, SimDuration::from_ms(40));
        let a = run_once(sim_seed, &plan);
        let b = run_once(sim_seed, &plan);
        prop_assert_eq!(a, b);
    }
}
