//! End-to-end IOR runs through every access API on a small cluster, with
//! full data verification — the whole stack (client → fabric → engine →
//! VOS → media, plus DFS/DFuse/MPI-IO/HDF5 on top) in one test file.

use daos_core::ClusterConfig;
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed, IorParams};
use daos_placement::ObjectClass;
use daos_sim::units::{KIB, MIB};
use daos_sim::Sim;

fn small_params(api: Api, fpp: bool) -> IorParams {
    IorParams {
        api,
        transfer_size: 256 * KIB,
        block_size: MIB,
        segments: 2,
        file_per_process: fpp,
        ppn: 2,
        oclass: ObjectClass::S2,
        chunk_size: MIB,
        verify: true,
        do_write: true,
        do_read: true,
        random_offsets: false,
        reorder_read: false,
        stonewall: None,
    }
}

fn run_one(api: Api, fpp: bool) -> daos_ior::IorReport {
    let mut sim = Sim::new(0x10D);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            ClusterConfig::tiny(2),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        run(&sim, &env, small_params(api, fpp))
            .await
            .expect("ior run")
    })
}

#[test]
fn ior_dfs_fpp_and_shared_verify() {
    for fpp in [true, false] {
        let r = run_one(Api::Dfs, fpp);
        assert_eq!(r.ranks, 4);
        assert_eq!(r.total_bytes, 4 * 2 * MIB);
        assert!(r.write_gib_s() > 0.0 && r.read_gib_s() > 0.0);
    }
}

#[test]
fn ior_posix_fpp_and_shared_verify() {
    for fpp in [true, false] {
        let r = run_one(Api::Posix { il: false }, fpp);
        assert!(r.write_gib_s() > 0.0 && r.read_gib_s() > 0.0, "{r:?}");
    }
}

#[test]
fn ior_posix_interception_verify() {
    let r = run_one(Api::Posix { il: true }, true);
    assert!(r.write_gib_s() > 0.0);
}

#[test]
fn ior_mpiio_independent_and_collective_verify() {
    for (collective, fpp) in [(false, true), (false, false), (true, false)] {
        let r = run_one(Api::Mpiio { collective }, fpp);
        assert!(
            r.write_gib_s() > 0.0 && r.read_gib_s() > 0.0,
            "collective={collective} fpp={fpp}: {r:?}"
        );
    }
}

#[test]
fn ior_hdf5_fpp_and_shared_verify() {
    for fpp in [true, false] {
        let r = run_one(Api::Hdf5, fpp);
        assert!(
            r.write_gib_s() > 0.0 && r.read_gib_s() > 0.0,
            "fpp={fpp}: {r:?}"
        );
    }
}

#[test]
fn ior_daos_array_fpp_and_shared_verify() {
    for fpp in [true, false] {
        let r = run_one(Api::DaosArray, fpp);
        assert!(r.write_gib_s() > 0.0 && r.read_gib_s() > 0.0);
    }
}

#[test]
fn ior_is_deterministic_across_runs() {
    let a = run_one(Api::Dfs, true);
    let b = run_one(Api::Dfs, true);
    assert_eq!(a.write_time, b.write_time);
    assert_eq!(a.read_time, b.read_time);
}

#[test]
fn dfuse_overhead_is_modest_for_aligned_io() {
    // MPI-IO over DFuse should be close to native DFS for aligned 1 MiB
    // transfers (paper: "very similar performance") — within 25% here.
    let dfs = run_one(Api::Dfs, true);
    let mpiio = run_one(Api::Mpiio { collective: false }, true);
    let ratio = mpiio.write_gib_s() / dfs.write_gib_s();
    assert!(
        ratio > 0.75 && ratio < 1.1,
        "MPIIO/DFS write ratio {ratio} out of range ({} vs {})",
        mpiio.write_gib_s(),
        dfs.write_gib_s()
    );
}

#[test]
fn object_class_changes_layout_but_not_contents() {
    for class in [ObjectClass::S1, ObjectClass::SX] {
        let mut sim = Sim::new(0x0C1A55);
        sim.block_on(move |sim| async move {
            let env = DaosTestbed::setup(
                &sim,
                ClusterConfig::tiny(1),
                DfsConfig::default(),
                DfuseConfig::default(),
            )
            .await
            .unwrap();
            let mut p = small_params(Api::Dfs, false);
            p.oclass = class;
            p.ppn = 4;
            let r = run(&sim, &env, p).await.unwrap();
            assert!(r.read_gib_s() > 0.0);
        });
    }
}
