//! Property-based tests of the RAFT implementation under randomised
//! fault schedules: elections, message loss, delays and partitions must
//! never violate election safety or state-machine safety, and the cluster
//! must converge once conditions improve.

use proptest::prelude::*;

use daos_core::pool::{PoolOp, PoolState};
use daos_raft::testing::Cluster;

#[derive(Clone, Debug)]
enum Fault {
    /// Set the drop rate for a while.
    Lossy(u8),
    /// Partition a random prefix of nodes away.
    Partition(u8),
    /// Heal all partitions.
    Heal,
    /// Propose a command on the current leader.
    Propose(u32),
    /// Let time pass.
    Run(u8),
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u8..40).prop_map(Fault::Lossy),
        (1u8..3).prop_map(Fault::Partition),
        Just(Fault::Heal),
        any::<u32>().prop_map(Fault::Propose),
        (5u8..40).prop_map(Fault::Run),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn raft_safety_under_random_faults(
        seed in any::<u64>(),
        script in prop::collection::vec(fault_strategy(), 4..24),
    ) {
        let mut c: Cluster<u32> = Cluster::new(5, seed);
        c.run(40);
        let mut proposed: Vec<u32> = Vec::new();
        for fault in &script {
            match fault {
                Fault::Lossy(pct) => c.drop_rate = *pct as f64 / 100.0,
                Fault::Partition(k) => {
                    let group: Vec<u64> = (1..=*k as u64).collect();
                    c.partition(&group);
                }
                Fault::Heal => c.heal(),
                Fault::Propose(v) => {
                    if c.propose(*v).is_some() {
                        proposed.push(*v);
                    }
                }
                Fault::Run(n) => c.run(*n as u64),
            }
            // SAFETY invariants hold at every step, faults or not
            c.assert_election_safety();
            c.assert_applied_prefix_consistency();
        }
        // LIVENESS: once healed and lossless, the cluster converges
        c.heal();
        c.drop_rate = 0.0;
        c.run(400);
        c.assert_election_safety();
        c.assert_applied_prefix_consistency();
        let lens: std::collections::BTreeSet<usize> =
            c.applied.values().map(|v| v.len()).collect();
        prop_assert_eq!(lens.len(), 1, "replicas did not converge: {:?}", lens);
        // everything applied was actually proposed (no invented entries)
        for log in c.applied.values() {
            for e in log {
                prop_assert!(proposed.contains(&e.cmd), "phantom entry {:?}", e.cmd);
            }
        }
    }

    #[test]
    fn pool_state_snapshot_roundtrip(
        conts in prop::collection::btree_set(any::<u64>(), 0..50),
        connects in 0u64..100,
    ) {
        let mut st = PoolState::default();
        for _ in 0..connects {
            st.apply(&PoolOp::Connect, 4, 8);
        }
        for &c in &conts {
            st.apply(&PoolOp::ContCreate(c), 4, 8);
        }
        let back = PoolState::from_bytes(&st.to_bytes());
        prop_assert_eq!(st, back);
    }

    #[test]
    fn pool_state_apply_is_deterministic(ops in prop::collection::vec((0u8..4, any::<u64>()), 0..60)) {
        let run = |ops: &[(u8, u64)]| {
            let mut st = PoolState::default();
            for (k, c) in ops {
                let op = match k {
                    0 => PoolOp::Connect,
                    1 => PoolOp::ContCreate(*c),
                    2 => PoolOp::ContOpen(*c),
                    _ => PoolOp::ContDestroy(*c),
                };
                st.apply(&op, 2, 2);
            }
            st
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
