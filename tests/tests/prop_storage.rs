//! Property-based tests over the storage data path: the VOS extent tree
//! against a naive byte-map model, payload slicing laws, placement
//! invariants, and the request-splitting rules of the FUSE and array
//! layers.

use proptest::prelude::*;

use daos_placement::{place, place_width, ObjectClass, ObjectId, PoolMap};
use daos_vos::tree::ExtentTree;
use daos_vos::Payload;

// ------------------------------------------------------------ extent tree

#[derive(Clone, Debug)]
enum Op {
    Write { off: u64, len: u64, tag: u64 },
    Punch { off: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..400, 1u64..120, 0u64..u64::MAX).prop_map(|(off, len, tag)| Op::Write {
            off,
            len,
            tag
        }),
        (0u64..400, 1u64..120).prop_map(|(off, len)| Op::Punch { off, len }),
    ]
}

/// Replay ops into both the real tree and a byte-level model; compare the
/// visible image at several epochs.
fn check_against_model(ops: &[Op], aggregate_at: Option<u64>) {
    let mut tree = ExtentTree::new();
    // model[epoch] not needed: rebuild per query epoch from the op log
    for (i, op) in ops.iter().enumerate() {
        let epoch = i as u64 + 1;
        match op {
            Op::Write { off, len, tag } => tree.insert(*off, epoch, Payload::pattern(*tag, *len)),
            Op::Punch { off, len } => tree.punch(*off, *len, epoch),
        }
    }
    if let Some(upto) = aggregate_at {
        tree.aggregate(upto);
    }
    let span = 600u64;
    for &query_epoch in &[0u64, ops.len() as u64 / 2, ops.len() as u64] {
        // model
        let mut model: Vec<Option<u8>> = vec![None; span as usize];
        for (i, op) in ops.iter().enumerate() {
            let epoch = i as u64 + 1;
            if epoch > query_epoch {
                break;
            }
            match op {
                Op::Write { off, len, tag } => {
                    let p = Payload::pattern(*tag, *len).materialize();
                    for k in 0..*len {
                        if off + k < span {
                            model[(off + k) as usize] = Some(p[k as usize]);
                        }
                    }
                }
                Op::Punch { off, len } => {
                    for k in 0..*len {
                        if off + k < span {
                            model[(off + k) as usize] = None;
                        }
                    }
                }
            }
        }
        // aggregation below the query epoch must not change visibility
        if aggregate_at.map(|a| a > query_epoch).unwrap_or(false) {
            continue; // image at lower epochs may legally be flattened away
        }
        let mut got: Vec<Option<u8>> = vec![None; span as usize];
        for seg in tree.read(0, span, query_epoch) {
            if let Some(d) = seg.data {
                let m = d.materialize();
                for k in 0..seg.len {
                    got[(seg.offset + k) as usize] = Some(m[k as usize]);
                }
            }
        }
        assert_eq!(got, model, "divergence at epoch {query_epoch}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extent_tree_matches_byte_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        check_against_model(&ops, None);
    }

    #[test]
    fn extent_tree_aggregation_preserves_latest_image(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        // aggregate everything: the image at the final epoch must survive
        check_against_model(&ops, Some(ops.len() as u64));
    }

    #[test]
    fn read_segments_are_sorted_disjoint_and_cover(
        ops in prop::collection::vec(op_strategy(), 1..30),
        qoff in 0u64..300,
        qlen in 1u64..300,
    ) {
        let mut tree = ExtentTree::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Write { off, len, tag } =>
                    tree.insert(*off, i as u64 + 1, Payload::pattern(*tag, *len)),
                Op::Punch { off, len } => tree.punch(*off, *len, i as u64 + 1),
            }
        }
        let segs = tree.read(qoff, qlen, u64::MAX);
        let mut cur = qoff;
        for s in &segs {
            prop_assert_eq!(s.offset, cur, "segments must tile in order");
            prop_assert!(s.len > 0);
            if let Some(d) = &s.data {
                prop_assert_eq!(d.len(), s.len);
            }
            cur += s.len;
        }
        prop_assert_eq!(cur, qoff + qlen, "segments must cover the query");
    }
}

// --------------------------------------------------------------- payload

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn payload_slice_composes(seed in any::<u64>(), a in 0u64..200, b in 0u64..200, c in 0u64..100) {
        let p = Payload::pattern(seed, 1000);
        let a_end = (a + 300).min(1000);
        let s1 = p.slice(a, a_end - a);
        let b2 = b.min(s1.len().saturating_sub(1));
        let l2 = (s1.len() - b2).min(c + 1);
        let s2 = s1.slice(b2, l2);
        prop_assert_eq!(
            s2.materialize(),
            p.materialize().slice((a + b2) as usize..(a + b2 + l2) as usize)
        );
    }

    #[test]
    fn pattern_byte_at_agrees_with_materialize(seed in any::<u64>(), len in 1u64..500) {
        let p = Payload::pattern(seed, len);
        let m = p.materialize();
        for i in (0..len).step_by(17) {
            prop_assert_eq!(p.byte_at(i), m[i as usize]);
        }
    }
}

// -------------------------------------------------------------- placement

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_deterministic_and_valid(
        hi in any::<u64>(), lo in any::<u64>(),
        engines in 1u32..20, tpe in 1u32..10,
        class_pick in 0usize..5,
        excluded in prop::collection::btree_set(0u32..200, 0..4),
    ) {
        let classes = [ObjectClass::S1, ObjectClass::S2, ObjectClass::S8,
                       ObjectClass::SX, ObjectClass::RP_2GX];
        let mut map = PoolMap::new(engines, tpe);
        let total = map.target_count();
        for &t in excluded.iter().filter(|&&t| t < total) {
            if map.active_target_count() > 1 {
                map.exclude(t);
            }
        }
        let class = classes[class_pick];
        let oid = ObjectId::new(hi, lo);
        let a = place(oid, class, &map);
        let b = place(oid, class, &map);
        prop_assert_eq!(&a, &b, "placement must be deterministic");
        prop_assert_eq!(a.width(), place_width(class, &map));
        for &t in &a.shards {
            prop_assert!(t < map.target_count());
            prop_assert!(!map.is_excluded(t), "shard on excluded target");
        }
        match class {
            ObjectClass::Replicated { .. } | ObjectClass::ErasureCoded { .. } => {
                // the protected-class invariant is fault-domain spread: each
                // group's cells sit on distinct engines while enough engines
                // have active targets
                let live = (0..map.engine_count())
                    .filter(|&e| map.active_targets_on_engine(e) > 0)
                    .count();
                let w = class.group_width() as usize;
                for group in a.shards.chunks(w) {
                    let engines: std::collections::BTreeSet<_> =
                        group.iter().map(|&t| map.engine_of(t)).collect();
                    prop_assert_eq!(engines.len(), w.min(live), "group {:?}", group);
                }
            }
            _ => {
                // sharded classes: distinct targets when there is room
                if a.width() <= map.active_target_count() {
                    let set: std::collections::BTreeSet<_> = a.shards.iter().collect();
                    prop_assert_eq!(set.len(), a.shards.len());
                }
            }
        }
    }
}

// ---------------------------------------------------- splitting invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fuse_split_tiles_exactly(max_req in 1u64..(4<<20), off in 0u64..(8<<20), len in 1u64..(8<<20)) {
        let pieces = daos_dfuse::split_aligned(max_req, off, len);
        let mut cur = off;
        for (poff, plen) in &pieces {
            prop_assert_eq!(*poff, cur);
            prop_assert!(*plen > 0 && *plen <= max_req);
            // a piece may only end early at an aligned boundary
            if poff + plen != off + len {
                prop_assert_eq!((poff + plen) % max_req, 0);
            }
            cur += plen;
        }
        prop_assert_eq!(cur, off + len);
    }

    #[test]
    fn interleave_check_matches_naive(ranges in prop::collection::vec((0u64..1000, 1u64..200), 0..8)) {
        let naive = {
            let mut bad = false;
            let mut prev_end = 0u64;
            for (off, len) in &ranges {
                if *off < prev_end { bad = true; }
                prev_end = prev_end.max(off + len);
            }
            bad
        };
        prop_assert_eq!(daos_mpiio::is_interleaved(&ranges), naive);
    }

    #[test]
    fn assemble_covers_exactly(off in 0u64..1000, len in 1u64..500, tag in any::<u64>()) {
        let segs = vec![daos_vos::tree::ReadSeg {
            offset: off,
            len,
            data: Some(Payload::pattern(tag, len)),
        }];
        let p = daos_mpiio::assemble(&segs, off, len);
        prop_assert_eq!(p.len(), len);
        prop_assert_eq!(p.materialize(), Payload::pattern(tag, len).materialize());
    }
}
