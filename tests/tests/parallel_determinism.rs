//! Schedule-independence of the parallel bench executor: the same slate
//! run at 1, 2 and 8 host threads must serialize to *byte-identical*
//! output. Seeds are confined to individual jobs and the reduction is
//! keyed by submission order, so thread count and OS scheduling must be
//! invisible in every artifact the gate compares.
//!
//! This file deliberately contains no `std::thread` / `crossbeam` usage
//! of its own (simlint D04) — all threading happens inside `daos-bench`'s
//! sanctioned executor.

use daos_bench::figures::{rot_timeline, run_pfs_contrast_sized, RotTimeline};
use daos_bench::report::BenchReport;
use daos_bench::slate::{run_regress_slate, smoke};
use daos_placement::ObjectClass;

const MIB: u64 = 1 << 20;

/// Every observable field of a rot timeline, as one comparable string.
fn rot_key(t: &RotTimeline) -> String {
    format!(
        "{:?}/{}/{}/{:.6}/{}/{}/{}/{}",
        t.class, t.mode, t.rot_extents, t.detect_ms, t.reported, t.repairs_ok, t.equal, t.clean
    )
}

/// The whole reduced-smoke regress slate: seven reports, each byte-identical
/// across thread counts, plus identical timeline rows.
#[test]
fn regress_slate_is_byte_identical_across_thread_counts() {
    let scale = smoke();
    let base = run_regress_slate(&scale, 1);
    let base_json: Vec<String> = base.reports().iter().map(|r| r.to_json()).collect();
    let base_rot: Vec<String> = base.rot_rows.iter().map(rot_key).collect();
    let fault_key = |t: &daos_bench::figures::FaultTimeline| {
        format!(
            "{:?}/{}/{:.6}/{:.6}/{:.6}/{:.6}/{:.6}/{}/{}",
            t.class,
            t.client_nodes,
            t.write,
            t.healthy,
            t.during,
            t.rebuilt,
            t.reintegrated,
            t.map_version,
            t.chunks_repaired
        )
    };
    let base_fault: Vec<String> = base.fault_rows.iter().map(fault_key).collect();

    for threads in [2usize, 8] {
        let run = run_regress_slate(&scale, threads);
        let json: Vec<String> = run.reports().iter().map(|r| r.to_json()).collect();
        assert_eq!(
            base_json, json,
            "report JSON diverged between 1 and {threads} threads"
        );
        let rot: Vec<String> = run.rot_rows.iter().map(rot_key).collect();
        assert_eq!(base_rot, rot, "rot rows diverged at {threads} threads");
        let fault: Vec<String> = run.fault_rows.iter().map(fault_key).collect();
        assert_eq!(
            base_fault, fault,
            "fault rows diverged at {threads} threads"
        );
        assert_eq!(run.threads, threads);
        // timings are schedule-dependent by design, but the labels (the
        // submission order) must not be
        let base_labels: Vec<&String> = base.timings.iter().map(|(l, _)| l).collect();
        let labels: Vec<&String> = run.timings.iter().map(|(l, _)| l).collect();
        assert_eq!(
            base_labels, labels,
            "job order diverged at {threads} threads"
        );
    }
}

/// The PFS-contrast rows and the report they record into are identical
/// at every thread count.
#[test]
fn pfs_contrast_rows_are_thread_count_invariant() {
    let nodes = [1u32, 2];
    let mut reports = Vec::new();
    let mut rows_flat = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut report = BenchReport::new("pfs_contrast", 0x1F5);
        let rows = run_pfs_contrast_sized(&mut report, &nodes, threads, MIB, 4);
        reports.push(report.to_json());
        rows_flat.push(
            rows.iter()
                .map(|r| {
                    format!(
                        "{}:{:.9}/{:.9}/{:.9}/{:.9}/{}",
                        r.nodes,
                        r.pfs_fpp.write_gib_s(),
                        r.pfs_shared.write_gib_s(),
                        r.daos_fpp.write_gib_s(),
                        r.daos_shared.write_gib_s(),
                        r.revokes
                    )
                })
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
    assert_eq!(rows_flat[0], rows_flat[1]);
    assert_eq!(rows_flat[0], rows_flat[2]);
}

/// A rot timeline produced inside a slate job equals the directly-run
/// one: jobs get their own seeded sims, so where they run cannot matter.
#[test]
fn rot_timeline_matches_direct_run() {
    let direct = rot_timeline(ObjectClass::RP_2GX, true, 0x5C2B ^ 1);

    let mut slate = daos_bench::exec::Slate::new();
    slate.push("rot/RP_2GX/scrub", || {
        rot_timeline(ObjectClass::RP_2GX, true, 0x5C2B ^ 1)
    });
    let out = slate.run(4).expect("rot job");
    assert_eq!(out.len(), 1);
    assert_eq!(rot_key(&direct), rot_key(&out[0].value));
}
