//! Workspace-level integration tests live in `tests/tests/`; this crate
//! has no library code of its own.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]
