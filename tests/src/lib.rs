//! Workspace-level integration tests live in `tests/tests/`; this crate
//! has no library code of its own.
