//! A deterministic in-memory cluster harness for exercising RAFT under
//! message loss, delay and partitions. Used by this crate's tests and
//! reusable from integration tests.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::node::{Apply, Config, Envelope, Message, Raft, Role};
use crate::{Entry, Index, NodeId, Term};

struct InFlight<C> {
    deliver_at: u64,
    from: NodeId,
    to: NodeId,
    msg: Message<C>,
}

/// A simulated cluster of RAFT replicas with a lossy, reordering network.
pub struct Cluster<C: Clone> {
    pub nodes: BTreeMap<NodeId, Raft<C>>,
    net: VecDeque<InFlight<C>>,
    rng: ChaCha8Rng,
    round: u64,
    /// Probability in 0..=1 that any message is dropped.
    pub drop_rate: f64,
    /// Maximum extra delivery delay in rounds.
    pub max_delay: u64,
    blocked: BTreeSet<(NodeId, NodeId)>,
    /// Everything each node has applied, in order.
    pub applied: BTreeMap<NodeId, Vec<Entry<C>>>,
    /// All (term, leader) observations, for the election-safety invariant.
    leaders_by_term: BTreeMap<Term, BTreeSet<NodeId>>,
}

impl<C: Clone> Cluster<C> {
    /// Build an `n`-replica cluster (ids `1..=n`).
    pub fn new(n: u64, seed: u64) -> Self {
        let peers: Vec<NodeId> = (1..=n).collect();
        let nodes = peers
            .iter()
            .map(|&id| (id, Raft::new(Config::new(id, peers.clone()), seed)))
            .collect();
        Cluster {
            nodes,
            net: VecDeque::new(),
            rng: ChaCha8Rng::seed_from_u64(seed.wrapping_add(0xC1u64)),
            round: 0,
            drop_rate: 0.0,
            max_delay: 2,
            blocked: BTreeSet::new(),
            applied: peers.iter().map(|&id| (id, Vec::new())).collect(),
            leaders_by_term: BTreeMap::new(),
        }
    }

    fn enqueue(&mut self, from: NodeId, envs: Vec<Envelope<C>>) {
        for env in envs {
            if self.rng.gen_bool(self.drop_rate) {
                continue;
            }
            if self.blocked.contains(&(from, env.to)) || self.blocked.contains(&(env.to, from)) {
                continue;
            }
            let delay = self.rng.gen_range(0..=self.max_delay);
            self.net.push_back(InFlight {
                deliver_at: self.round + delay,
                from,
                to: env.to,
                msg: env.msg,
            });
        }
    }

    fn harvest(&mut self, id: NodeId) {
        let node = self.nodes.get_mut(&id).unwrap();
        if node.role() == Role::Leader {
            self.leaders_by_term
                .entry(node.term())
                .or_default()
                .insert(id);
        }
        for ev in node.take_applies() {
            match ev {
                Apply::Committed(e) => self.applied.get_mut(&id).unwrap().push(e),
                Apply::Restore(snap) => {
                    // restored nodes logically have everything to snap index;
                    // truncate-and-mark so prefix checks still work
                    let v = self.applied.get_mut(&id).unwrap();
                    v.retain(|e| e.index <= snap.last_index);
                }
            }
        }
    }

    /// Run one round: tick every node, deliver due messages.
    pub fn step(&mut self) {
        self.round += 1;
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for id in &ids {
            let out = self.nodes.get_mut(id).unwrap().tick();
            self.enqueue(*id, out);
            self.harvest(*id);
        }
        // deliver everything due this round
        let mut pending = VecDeque::new();
        std::mem::swap(&mut pending, &mut self.net);
        while let Some(m) = pending.pop_front() {
            if m.deliver_at > self.round {
                self.net.push_back(m);
                continue;
            }
            let out = self.nodes.get_mut(&m.to).unwrap().step(m.from, m.msg);
            self.enqueue(m.to, out);
            self.harvest(m.to);
        }
    }

    /// Run `n` rounds.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The unique current leader, if exactly one node is leading.
    pub fn leader(&self) -> Option<NodeId> {
        let leaders: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|(_, r)| r.role() == Role::Leader)
            .map(|(&id, _)| id)
            .collect();
        // several leaders can coexist transiently *in different terms*;
        // report the one with the highest term
        leaders.into_iter().max_by_key(|id| self.nodes[id].term())
    }

    /// Run until some node is leader (panics after `max` rounds).
    pub fn run_until_leader(&mut self, max: u64) -> NodeId {
        for _ in 0..max {
            self.step();
            if let Some(l) = self.leader() {
                return l;
            }
        }
        panic!("no leader elected after {max} rounds");
    }

    /// Propose on the current leader; returns the index, or None if no leader.
    pub fn propose(&mut self, cmd: C) -> Option<Index> {
        let l = self.leader()?;
        let node = self.nodes.get_mut(&l).unwrap();
        match node.propose(cmd) {
            Ok((idx, out)) => {
                self.enqueue(l, out);
                Some(idx)
            }
            Err(_) => None,
        }
    }

    /// Cut all links between `group` and the rest.
    pub fn partition(&mut self, group: &[NodeId]) {
        let g: BTreeSet<NodeId> = group.iter().copied().collect();
        let ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        for &a in &ids {
            for &b in &ids {
                if g.contains(&a) != g.contains(&b) {
                    self.blocked.insert((a, b));
                }
            }
        }
    }

    /// Restore full connectivity.
    pub fn heal(&mut self) {
        self.blocked.clear();
    }

    /// Election safety: at most one leader was ever observed per term.
    pub fn assert_election_safety(&self) {
        for (term, set) in &self.leaders_by_term {
            assert!(set.len() <= 1, "term {term} had multiple leaders: {set:?}");
        }
    }

    /// State-machine safety: every pair of nodes applied identical prefixes.
    pub fn assert_applied_prefix_consistency(&self)
    where
        C: PartialEq + std::fmt::Debug,
    {
        let logs: Vec<&Vec<Entry<C>>> = self.applied.values().collect();
        for w in logs.windows(2) {
            for (i, (a, b)) in w[0].iter().zip(w[1].iter()).enumerate() {
                assert_eq!(a, b, "applied logs diverge at position {i}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elects_a_leader_quickly() {
        let mut c: Cluster<u32> = Cluster::new(3, 7);
        let l = c.run_until_leader(200);
        assert!((1..=3).contains(&l));
        c.assert_election_safety();
    }

    #[test]
    fn replicates_and_commits() {
        let mut c: Cluster<u32> = Cluster::new(3, 11);
        c.run_until_leader(200);
        for i in 0..10 {
            c.propose(i).unwrap();
            c.run(5);
        }
        c.run(30);
        for (id, log) in &c.applied {
            assert_eq!(log.len(), 10, "node {id} applied {} entries", log.len());
            let cmds: Vec<u32> = log.iter().map(|e| e.cmd).collect();
            assert_eq!(cmds, (0..10).collect::<Vec<_>>());
        }
        c.assert_election_safety();
        c.assert_applied_prefix_consistency();
    }

    #[test]
    fn survives_leader_partition() {
        let mut c: Cluster<u32> = Cluster::new(5, 13);
        let l1 = c.run_until_leader(300);
        c.propose(1).unwrap();
        c.run(20);
        // isolate the leader; the remaining quorum elects a new one
        c.partition(&[l1]);
        c.run(100);
        let l2 = c.leader().expect("majority side should elect");
        assert_ne!(l1, l2);
        c.propose(2).unwrap();
        c.run(30);
        // heal: old leader catches up, nothing committed is lost
        c.heal();
        c.run(100);
        c.assert_election_safety();
        c.assert_applied_prefix_consistency();
        let log = &c.applied[&l1];
        let cmds: Vec<u32> = log.iter().map(|e| e.cmd).collect();
        assert_eq!(cmds, vec![1, 2]);
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut c: Cluster<u32> = Cluster::new(5, 17);
        let l1 = c.run_until_leader(300);
        // cut the leader plus one follower off (minority of 2)
        let follower = (1..=5).find(|&id| id != l1).unwrap();
        c.partition(&[l1, follower]);
        // the stale leader may still accept proposals but can never commit
        let node = c.nodes.get_mut(&l1).unwrap();
        if let Ok((_, out)) = node.propose(99) {
            c.enqueue(l1, out);
        }
        c.run(100);
        for log in c.applied.values() {
            assert!(
                !log.iter().any(|e| e.cmd == 99),
                "minority-partition entry must never commit"
            );
        }
        c.assert_election_safety();
    }

    #[test]
    fn lossy_network_still_converges() {
        let mut c: Cluster<u32> = Cluster::new(3, 23);
        c.drop_rate = 0.2;
        c.max_delay = 4;
        c.run_until_leader(2000);
        let mut proposed = 0;
        for i in 0..20 {
            if c.propose(i).is_some() {
                proposed += 1;
            }
            c.run(10);
        }
        c.drop_rate = 0.0;
        c.run(300);
        assert!(proposed > 0);
        c.assert_election_safety();
        c.assert_applied_prefix_consistency();
        // all nodes converge to the same count
        let lens: BTreeSet<usize> = c.applied.values().map(|v| v.len()).collect();
        assert_eq!(lens.len(), 1, "lens {lens:?}");
    }

    #[test]
    fn snapshot_compaction_and_install() {
        let mut c: Cluster<u32> = Cluster::new(3, 29);
        let l = c.run_until_leader(300);
        // partition one follower so it falls behind
        let lagger = (1..=3).find(|&id| id != l).unwrap();
        c.partition(&[lagger]);
        for i in 0..50 {
            c.propose(i).unwrap();
            c.run(3);
        }
        c.run(30);
        // force-compact the leader's log
        let leader = c.nodes.get_mut(&l).unwrap();
        leader.compact(vec![0xAB]);
        assert!(leader.log().len_in_memory() < 50);
        // heal: lagger must be brought up via InstallSnapshot + tail
        c.heal();
        c.run(300);
        let lag_node = &c.nodes[&lagger];
        assert_eq!(lag_node.log().last_index(), c.nodes[&l].log().last_index());
        c.assert_election_safety();
    }

    #[test]
    fn single_node_cluster_self_elects_and_commits() {
        let mut c: Cluster<u32> = Cluster::new(1, 31);
        let l = c.run_until_leader(100);
        assert_eq!(l, 1);
        c.propose(7).unwrap();
        c.run(5);
        assert_eq!(c.applied[&1].len(), 1);
    }
}
