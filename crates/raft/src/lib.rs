//! # daos-raft — the consensus substrate of the DAOS pool service
//!
//! DAOS's control plane ("a RAFT-based consensus algorithm for distributed,
//! transactional indexing" — paper §I) replicates pool and container
//! metadata across engine ranks. This crate is a complete, self-contained
//! RAFT implementation:
//!
//! * leader election with randomised timeouts,
//! * log replication with conflict back-off,
//! * commit-index advancement restricted to the current term (figure 8 of
//!   the RAFT paper),
//! * log compaction and snapshot installation for lagging followers.
//!
//! The design follows the tick/step style of production libraries: the node
//! is a *pure state machine*. [`Raft::tick`] advances logical time,
//! [`Raft::step`] consumes one message; both return the messages to send.
//! Nothing here does I/O, which makes the implementation deterministic and
//! property-testable ([`testing`] provides a simulated lossy network), and
//! lets `daos-core` drive replicas inside the discrete-event simulation.
//!
//! Membership is fixed at construction (the DAOS pool-service replica set
//! is chosen at pool format time; reconfiguration is an administrative
//! operation outside our scope).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

mod log;
mod node;
pub mod testing;

pub use crate::log::{Entry, Log, Snapshot};
pub use node::{Apply, Config, Envelope, Message, NotLeader, Raft, Role};

/// Identifier of a RAFT replica (an engine rank in DAOS).
pub type NodeId = u64;
/// Election term.
pub type Term = u64;
/// Log position (1-based; 0 means "nothing").
pub type Index = u64;
