//! The RAFT replica state machine (tick/step style).

use std::collections::BTreeMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::log::{Entry, Log, Snapshot};
use crate::{Index, NodeId, Term};

/// Replica role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Static configuration of one replica.
#[derive(Clone, Debug)]
pub struct Config {
    /// This replica's id. Must appear in `peers`.
    pub id: NodeId,
    /// The full replica set (including `id`).
    pub peers: Vec<NodeId>,
    /// Election timeout range in ticks (randomised per election).
    pub election_ticks: (u64, u64),
    /// Leader heartbeat interval in ticks.
    pub heartbeat_ticks: u64,
    /// Max entries per AppendEntries message.
    pub max_batch: usize,
    /// Compact the log once it exceeds this many in-memory entries.
    pub snapshot_threshold: usize,
}

impl Config {
    /// Sensible defaults for a replica set.
    pub fn new(id: NodeId, peers: Vec<NodeId>) -> Self {
        assert!(peers.contains(&id), "id must be a member of peers");
        Config {
            id,
            peers,
            election_ticks: (10, 20),
            heartbeat_ticks: 3,
            max_batch: 64,
            snapshot_threshold: 1024,
        }
    }
}

/// What actually sits in the replicated log: application commands plus the
/// no-op barrier a fresh leader appends to commit prior-term entries
/// (RAFT §5.4.2 / figure 8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogCmd<C> {
    /// Leader-change barrier; applied silently.
    Noop,
    /// An application command.
    Cmd(C),
}

/// RAFT wire messages.
#[derive(Clone, Debug)]
pub enum Message<C> {
    RequestVote {
        term: Term,
        last_log_index: Index,
        last_log_term: Term,
    },
    RequestVoteResp {
        term: Term,
        granted: bool,
    },
    AppendEntries {
        term: Term,
        prev_index: Index,
        prev_term: Term,
        entries: Vec<Entry<LogCmd<C>>>,
        leader_commit: Index,
    },
    AppendResp {
        term: Term,
        success: bool,
        /// On success: last index now matched. On failure: a hint for the
        /// leader's next probe (first index of the conflicting region).
        match_hint: Index,
    },
    InstallSnapshot {
        term: Term,
        snapshot: Snapshot,
    },
    SnapshotResp {
        term: Term,
        last_index: Index,
    },
}

/// A message addressed to a peer.
#[derive(Clone, Debug)]
pub struct Envelope<C> {
    pub to: NodeId,
    pub msg: Message<C>,
}

/// Events the application must apply, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Apply<C> {
    /// A committed log entry.
    Committed(Entry<C>),
    /// The state machine must be reset from this snapshot.
    Restore(Snapshot),
}

/// Error returned by [`Raft::propose`] on a non-leader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotLeader {
    /// Best guess at the current leader, if any.
    pub hint: Option<NodeId>,
}

/// One RAFT replica.
pub struct Raft<C> {
    cfg: Config,
    rng: ChaCha8Rng,

    // persistent state (the embedder persists term/voted_for/log)
    term: Term,
    voted_for: Option<NodeId>,
    log: Log<LogCmd<C>>,

    // volatile
    role: Role,
    leader_hint: Option<NodeId>,
    commit_index: Index,
    applied_index: Index,
    elapsed: u64,
    election_deadline: u64,
    votes: BTreeMap<NodeId, bool>,

    // leader state
    next_index: BTreeMap<NodeId, Index>,
    match_index: BTreeMap<NodeId, Index>,

    // outbox of apply events for the embedder
    applies: Vec<Apply<C>>,
}

impl<C: Clone> Raft<C> {
    /// Create a follower with an empty log.
    pub fn new(cfg: Config, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ cfg.id);
        let deadline = rng.gen_range(cfg.election_ticks.0..=cfg.election_ticks.1);
        Raft {
            cfg,
            rng,
            term: 0,
            voted_for: None,
            log: Log::new(),
            role: Role::Follower,
            leader_hint: None,
            commit_index: 0,
            applied_index: 0,
            elapsed: 0,
            election_deadline: deadline,
            votes: BTreeMap::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            applies: Vec::new(),
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }
    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }
    /// Who this node believes is leader (itself when leading).
    pub fn leader_hint(&self) -> Option<NodeId> {
        if self.role == Role::Leader {
            Some(self.cfg.id)
        } else {
            self.leader_hint
        }
    }
    /// Highest committed index.
    pub fn commit_index(&self) -> Index {
        self.commit_index
    }
    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }
    /// Read access to the log (tests, snapshots).
    pub fn log(&self) -> &Log<LogCmd<C>> {
        &self.log
    }

    fn quorum(&self) -> usize {
        self.cfg.peers.len() / 2 + 1
    }

    fn others(&self) -> impl Iterator<Item = NodeId> + '_ {
        let me = self.cfg.id;
        self.cfg.peers.iter().copied().filter(move |&p| p != me)
    }

    /// Advance logical time by one tick; returns messages to send.
    pub fn tick(&mut self) -> Vec<Envelope<C>> {
        self.elapsed += 1;
        match self.role {
            Role::Leader => {
                if self.elapsed >= self.cfg.heartbeat_ticks {
                    self.elapsed = 0;
                    return self.broadcast_append();
                }
                Vec::new()
            }
            Role::Follower | Role::Candidate => {
                if self.elapsed >= self.election_deadline {
                    return self.start_election();
                }
                Vec::new()
            }
        }
    }

    fn reset_election_timer(&mut self) {
        self.elapsed = 0;
        self.election_deadline = self
            .rng
            .gen_range(self.cfg.election_ticks.0..=self.cfg.election_ticks.1);
    }

    fn start_election(&mut self) -> Vec<Envelope<C>> {
        self.role = Role::Candidate;
        self.term += 1;
        self.voted_for = Some(self.cfg.id);
        self.votes.clear();
        self.votes.insert(self.cfg.id, true);
        self.reset_election_timer();
        if self.votes.len() >= self.quorum() {
            // single-node cluster
            return self.become_leader();
        }
        let msg = Message::RequestVote {
            term: self.term,
            last_log_index: self.log.last_index(),
            last_log_term: self.log.last_term(),
        };
        self.others()
            .map(|to| Envelope {
                to,
                msg: msg.clone(),
            })
            .collect()
    }

    fn become_follower(&mut self, term: Term, leader: Option<NodeId>) {
        self.role = Role::Follower;
        if term > self.term {
            self.term = term;
            self.voted_for = None;
        }
        if leader.is_some() {
            self.leader_hint = leader;
        }
        self.reset_election_timer();
    }

    fn become_leader(&mut self) -> Vec<Envelope<C>> {
        self.role = Role::Leader;
        self.elapsed = 0;
        self.next_index.clear();
        self.match_index.clear();
        let next = self.log.last_index() + 1;
        for p in self.cfg.peers.clone() {
            self.next_index.insert(p, next);
            self.match_index.insert(p, 0);
        }
        // The no-op barrier (RAFT §5.4.2 / figure 8): commit-index rules
        // forbid committing prior-term entries by counting; appending an
        // entry in the new term lets the whole prefix commit as soon as it
        // replicates, even if the application never proposes again.
        let idx = self.log.append(self.term, LogCmd::Noop);
        self.match_index.insert(self.cfg.id, idx);
        if self.cfg.peers.len() == 1 {
            self.maybe_advance_commit();
        }
        self.broadcast_append()
    }

    fn append_for(&mut self, to: NodeId) -> Envelope<C> {
        let next = *self.next_index.get(&to).unwrap_or(&1);
        if next < self.log.first_index() {
            // peer is behind the compaction base: ship the snapshot
            return Envelope {
                to,
                msg: Message::InstallSnapshot {
                    term: self.term,
                    snapshot: self.log.snapshot().clone(),
                },
            };
        }
        let prev_index = next - 1;
        let prev_term = self.log.term_at(prev_index).unwrap_or(0);
        let entries = self.log.entries_from(prev_index, self.cfg.max_batch);
        Envelope {
            to,
            msg: Message::AppendEntries {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                leader_commit: self.commit_index,
            },
        }
    }

    fn broadcast_append(&mut self) -> Vec<Envelope<C>> {
        let peers: Vec<NodeId> = self.others().collect();
        peers.into_iter().map(|p| self.append_for(p)).collect()
    }

    /// Propose a command (leader only). Returns its log index.
    pub fn propose(&mut self, cmd: C) -> Result<(Index, Vec<Envelope<C>>), NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader {
                hint: self.leader_hint(),
            });
        }
        let idx = self.log.append(self.term, LogCmd::Cmd(cmd));
        self.match_index.insert(self.cfg.id, idx);
        if self.cfg.peers.len() == 1 {
            self.maybe_advance_commit();
        }
        Ok((idx, self.broadcast_append()))
    }

    /// Process one incoming message; returns messages to send.
    pub fn step(&mut self, from: NodeId, msg: Message<C>) -> Vec<Envelope<C>> {
        // term bookkeeping common to all messages
        let msg_term = match &msg {
            Message::RequestVote { term, .. }
            | Message::RequestVoteResp { term, .. }
            | Message::AppendEntries { term, .. }
            | Message::AppendResp { term, .. }
            | Message::InstallSnapshot { term, .. }
            | Message::SnapshotResp { term, .. } => *term,
        };
        if msg_term > self.term {
            let leader = match &msg {
                Message::AppendEntries { .. } | Message::InstallSnapshot { .. } => Some(from),
                _ => None,
            };
            self.become_follower(msg_term, leader);
        }

        match msg {
            Message::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => {
                let up_to_date = (last_log_term, last_log_index)
                    >= (self.log.last_term(), self.log.last_index());
                let grant = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(from));
                if grant {
                    self.voted_for = Some(from);
                    self.reset_election_timer();
                }
                vec![Envelope {
                    to: from,
                    msg: Message::RequestVoteResp {
                        term: self.term,
                        granted: grant,
                    },
                }]
            }
            Message::RequestVoteResp { term, granted } => {
                if self.role == Role::Candidate && term == self.term {
                    self.votes.insert(from, granted);
                    let yes = self.votes.values().filter(|&&g| g).count();
                    if yes >= self.quorum() {
                        return self.become_leader();
                    }
                }
                Vec::new()
            }
            Message::AppendEntries {
                term,
                prev_index,
                prev_term,
                entries,
                leader_commit,
            } => {
                if term < self.term {
                    return vec![Envelope {
                        to: from,
                        msg: Message::AppendResp {
                            term: self.term,
                            success: false,
                            match_hint: 0,
                        },
                    }];
                }
                // valid leader for this term
                self.become_follower(term, Some(from));
                match self.log.term_at(prev_index) {
                    Some(t) if t == prev_term => {
                        let last_new = entries.last().map(|e| e.index).unwrap_or(prev_index);
                        self.log.splice(entries);
                        if leader_commit > self.commit_index {
                            self.commit_index = leader_commit.min(last_new);
                            self.drain_commits();
                        }
                        vec![Envelope {
                            to: from,
                            msg: Message::AppendResp {
                                term: self.term,
                                success: true,
                                match_hint: last_new,
                            },
                        }]
                    }
                    _ => {
                        // conflict: hint the leader to back off to our tail
                        // (or the compaction base if prev fell inside it)
                        let hint = self
                            .log
                            .last_index()
                            .min(prev_index.saturating_sub(1))
                            .max(self.log.snapshot().last_index);
                        vec![Envelope {
                            to: from,
                            msg: Message::AppendResp {
                                term: self.term,
                                success: false,
                                match_hint: hint,
                            },
                        }]
                    }
                }
            }
            Message::AppendResp {
                term,
                success,
                match_hint,
            } => {
                if self.role != Role::Leader || term != self.term {
                    return Vec::new();
                }
                if success {
                    self.match_index.insert(from, match_hint);
                    self.next_index.insert(from, match_hint + 1);
                    self.maybe_advance_commit();
                    // keep streaming if the peer is still behind
                    if match_hint < self.log.last_index() {
                        return vec![self.append_for(from)];
                    }
                    Vec::new()
                } else {
                    let next = self.next_index.entry(from).or_insert(1);
                    *next = (*next - 1).max(1).min(match_hint + 1);
                    vec![self.append_for(from)]
                }
            }
            Message::InstallSnapshot { term, snapshot } => {
                if term < self.term {
                    return Vec::new();
                }
                self.become_follower(term, Some(from));
                let last = snapshot.last_index;
                if last > self.log.last_index() {
                    self.log.restore(snapshot.clone());
                    self.commit_index = self.commit_index.max(last);
                    self.applied_index = last;
                    self.applies.push(Apply::Restore(snapshot));
                }
                vec![Envelope {
                    to: from,
                    msg: Message::SnapshotResp {
                        term: self.term,
                        last_index: self.log.last_index(),
                    },
                }]
            }
            Message::SnapshotResp { term, last_index } => {
                if self.role == Role::Leader && term == self.term {
                    self.match_index.insert(from, last_index);
                    self.next_index.insert(from, last_index + 1);
                    if last_index < self.log.last_index() {
                        return vec![self.append_for(from)];
                    }
                }
                Vec::new()
            }
        }
    }

    fn maybe_advance_commit(&mut self) {
        // highest N replicated on a quorum with term == current
        let mut candidates: Vec<Index> = self.match_index.values().copied().collect();
        candidates.sort_unstable();
        let quorum_idx = candidates[candidates.len() - self.quorum()];
        if quorum_idx > self.commit_index && self.log.term_at(quorum_idx) == Some(self.term) {
            self.commit_index = quorum_idx;
            self.drain_commits();
        }
    }

    fn drain_commits(&mut self) {
        while self.applied_index < self.commit_index {
            let idx = self.applied_index + 1;
            match self.log.get(idx) {
                Some(e) => {
                    if let LogCmd::Cmd(c) = &e.cmd {
                        self.applies.push(Apply::Committed(Entry {
                            term: e.term,
                            index: e.index,
                            cmd: c.clone(),
                        }));
                    }
                    // no-ops advance applied_index silently
                }
                None => break, // compacted; a Restore covered it
            }
            self.applied_index = idx;
        }
    }

    /// Take the pending apply events (committed entries / restores), in order.
    pub fn take_applies(&mut self) -> Vec<Apply<C>> {
        std::mem::take(&mut self.applies)
    }

    /// True once the in-memory log is large enough to warrant compaction.
    pub fn wants_snapshot(&self) -> bool {
        self.log.len_in_memory() > self.cfg.snapshot_threshold
            && self.applied_index > self.log.snapshot().last_index
    }

    /// Compact the log with an application-provided snapshot of the state
    /// machine at `applied_index`.
    pub fn compact(&mut self, data: Vec<u8>) {
        let idx = self.applied_index;
        if idx == 0 {
            return;
        }
        let term = self.log.term_at(idx).unwrap_or(self.log.last_term());
        self.log.compact(Snapshot {
            last_index: idx,
            last_term: term,
            data,
        });
    }
}
