//! The replicated log, with a compaction base.
//!
//! Indices are global and 1-based. After compaction the log keeps entries
//! `(base_index, last_index]` in memory plus a [`Snapshot`] summarising
//! everything up to `base_index`.

use crate::{Index, Term};

/// One replicated log entry carrying an application command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<C> {
    pub term: Term,
    pub index: Index,
    pub cmd: C,
}

/// An opaque snapshot of the application state machine up to `last_index`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    pub last_index: Index,
    pub last_term: Term,
    /// Serialized application state (opaque to RAFT).
    pub data: Vec<u8>,
}

impl Snapshot {
    /// The empty snapshot at index 0.
    pub fn empty() -> Self {
        Snapshot {
            last_index: 0,
            last_term: 0,
            data: Vec::new(),
        }
    }
}

/// In-memory log with a snapshot base.
#[derive(Clone, Debug)]
pub struct Log<C> {
    entries: Vec<Entry<C>>,
    snapshot: Snapshot,
}

impl<C: Clone> Log<C> {
    /// An empty log.
    pub fn new() -> Self {
        Log {
            entries: Vec::new(),
            snapshot: Snapshot::empty(),
        }
    }

    /// Index of the last entry (or snapshot base if empty).
    pub fn last_index(&self) -> Index {
        self.entries
            .last()
            .map(|e| e.index)
            .unwrap_or(self.snapshot.last_index)
    }

    /// Term of the last entry (or snapshot base term).
    pub fn last_term(&self) -> Term {
        self.entries
            .last()
            .map(|e| e.term)
            .unwrap_or(self.snapshot.last_term)
    }

    /// First index still present in memory (base + 1).
    pub fn first_index(&self) -> Index {
        self.snapshot.last_index + 1
    }

    /// Term of entry at `idx`, if known (snapshot base counts).
    pub fn term_at(&self, idx: Index) -> Option<Term> {
        if idx == 0 {
            return Some(0);
        }
        if idx == self.snapshot.last_index {
            return Some(self.snapshot.last_term);
        }
        self.get(idx).map(|e| e.term)
    }

    /// Entry at global index `idx`, if in memory.
    pub fn get(&self, idx: Index) -> Option<&Entry<C>> {
        if idx < self.first_index() || idx > self.last_index() {
            return None;
        }
        let off = (idx - self.first_index()) as usize;
        self.entries.get(off)
    }

    /// Append one entry at the tail (leader path). Returns its index.
    pub fn append(&mut self, term: Term, cmd: C) -> Index {
        let index = self.last_index() + 1;
        self.entries.push(Entry { term, index, cmd });
        index
    }

    /// Entries in `(after, last]` up to `max` of them (replication batch).
    pub fn entries_from(&self, after: Index, max: usize) -> Vec<Entry<C>> {
        let mut out = Vec::new();
        let mut idx = after + 1;
        while idx <= self.last_index() && out.len() < max {
            match self.get(idx) {
                Some(e) => out.push(e.clone()),
                None => break, // compacted away; caller falls back to snapshot
            }
            idx += 1;
        }
        out
    }

    /// Follower-side append: verify continuity at `prev`, truncate any
    /// conflicting suffix, then splice `new` in. Caller has already checked
    /// `prev` consistency via `term_at`.
    pub fn splice(&mut self, new: Vec<Entry<C>>) {
        for e in new {
            match self.term_at(e.index) {
                Some(t) if t == e.term => continue, // already have it
                Some(_) => {
                    // conflict: drop this entry and everything after
                    let keep = (e.index - self.first_index()) as usize;
                    self.entries.truncate(keep);
                    self.entries.push(e);
                }
                None => {
                    debug_assert_eq!(e.index, self.last_index() + 1, "log gap");
                    self.entries.push(e);
                }
            }
        }
    }

    /// Drop entries `<= upto`, recording `snap` as the new base.
    pub fn compact(&mut self, snap: Snapshot) {
        let upto = snap.last_index;
        if upto <= self.snapshot.last_index {
            return;
        }
        let first = self.first_index();
        let drop_n = ((upto + 1).saturating_sub(first) as usize).min(self.entries.len());
        self.entries.drain(..drop_n);
        self.snapshot = snap;
    }

    /// Replace the whole log with an installed snapshot (follower far behind).
    pub fn restore(&mut self, snap: Snapshot) {
        self.entries.clear();
        self.snapshot = snap;
    }

    /// The current snapshot base.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Number of entries held in memory.
    pub fn len_in_memory(&self) -> usize {
        self.entries.len()
    }
}

impl<C: Clone> Default for Log<C> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> Log<u32> {
        let mut l = Log::new();
        for i in 0..5u32 {
            l.append(1, i);
        }
        l
    }

    #[test]
    fn append_and_get() {
        let l = filled();
        assert_eq!(l.last_index(), 5);
        assert_eq!(l.last_term(), 1);
        assert_eq!(l.get(3).unwrap().cmd, 2);
        assert_eq!(l.get(0), None);
        assert_eq!(l.get(6), None);
    }

    #[test]
    fn splice_appends_new() {
        let mut l = filled();
        l.splice(vec![Entry {
            term: 2,
            index: 6,
            cmd: 99,
        }]);
        assert_eq!(l.last_index(), 6);
        assert_eq!(l.last_term(), 2);
    }

    #[test]
    fn splice_truncates_conflicts() {
        let mut l = filled();
        // entry 4 conflicts (different term): 4 and 5 must be replaced
        l.splice(vec![
            Entry {
                term: 2,
                index: 4,
                cmd: 77,
            },
            Entry {
                term: 2,
                index: 5,
                cmd: 78,
            },
        ]);
        assert_eq!(l.get(4).unwrap().cmd, 77);
        assert_eq!(l.get(5).unwrap().cmd, 78);
        assert_eq!(l.last_index(), 5);
    }

    #[test]
    fn splice_idempotent_for_duplicates() {
        let mut l = filled();
        l.splice(vec![Entry {
            term: 1,
            index: 3,
            cmd: 2,
        }]);
        assert_eq!(l.last_index(), 5, "duplicate must not truncate tail");
    }

    #[test]
    fn compact_drops_prefix() {
        let mut l = filled();
        l.compact(Snapshot {
            last_index: 3,
            last_term: 1,
            data: vec![1],
        });
        assert_eq!(l.first_index(), 4);
        assert_eq!(l.last_index(), 5);
        assert_eq!(l.get(3), None);
        assert_eq!(l.term_at(3), Some(1)); // base term still answerable
        assert_eq!(l.get(4).unwrap().cmd, 3);
        // compacting backwards is a no-op
        l.compact(Snapshot {
            last_index: 1,
            last_term: 1,
            data: vec![],
        });
        assert_eq!(l.first_index(), 4);
    }

    #[test]
    fn restore_replaces_everything() {
        let mut l = filled();
        l.restore(Snapshot {
            last_index: 10,
            last_term: 3,
            data: vec![9],
        });
        assert_eq!(l.last_index(), 10);
        assert_eq!(l.last_term(), 3);
        assert_eq!(l.len_in_memory(), 0);
        let idx = l.append(4, 1);
        assert_eq!(idx, 11);
    }

    #[test]
    fn entries_from_respects_bounds() {
        let l = filled();
        let es = l.entries_from(2, 2);
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].index, 3);
        assert_eq!(es[1].index, 4);
        assert!(l.entries_from(5, 10).is_empty());
    }
}
