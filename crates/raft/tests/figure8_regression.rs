//! Regression test for the RAFT figure-8 liveness scenario, found by the
//! workspace property suite (`tests/tests/prop_consensus.rs`):
//!
//! An entry replicated under term 1 commits on a majority; a partition then
//! lets a *different* majority member that also holds the entry win term 2.
//! The new leader may not commit prior-term entries by counting replicas
//! (§5.4.2), so without a new-term entry the cluster wedges: part of the
//! cluster has applied the entry, the leader never learns it committed.
//! The fix is the standard no-op barrier appended on election.

use daos_raft::testing::Cluster;

#[test]
fn new_leader_commits_prior_term_entries_via_noop() {
    let mut c: Cluster<u32> = Cluster::new(5, 7176434468569780011);
    c.run(40);
    assert!(c.leader().is_some());
    assert!(c.propose(3220).is_some());
    // partition two nodes away mid-replication, run, heal
    c.partition(&[1, 2]);
    c.run(16);
    c.heal();
    c.run(400);
    // every replica must have applied exactly the one proposed command
    for (id, log) in &c.applied {
        assert_eq!(log.len(), 1, "node {id} applied {} entries", log.len());
        assert_eq!(log[0].cmd, 3220);
    }
    c.assert_election_safety();
    c.assert_applied_prefix_consistency();
}

#[test]
fn leaderless_cluster_with_stale_entry_still_converges() {
    // variant: the old leader itself is partitioned before commit
    let mut c: Cluster<u32> = Cluster::new(5, 0xF1688);
    let l = c.run_until_leader(300);
    assert!(c.propose(77).is_some());
    c.partition(&[l]);
    c.run(120);
    c.heal();
    c.run(600);
    c.assert_election_safety();
    c.assert_applied_prefix_consistency();
    let lens: std::collections::BTreeSet<usize> = c.applied.values().map(|v| v.len()).collect();
    assert_eq!(lens.len(), 1, "replicas diverged: {lens:?}");
}
