//! # daos-media — storage device models
//!
//! Flow-level models of the storage hardware DAOS runs on:
//!
//! * [`Dcpmm`] — an Intel Optane DCPMM *interleave set* (AppDirect mode):
//!   byte-addressable, strongly asymmetric read/write bandwidth, 256 B
//!   access granularity, and a per-extent metadata-update cost that models
//!   VOS index maintenance in persistent memory.
//! * [`Nvme`] — a block SSD: 4 KiB granularity, bounded queue depth,
//!   microsecond-scale latency.
//! * [`Dram`] — volatile memory for page caches and staging buffers.
//!
//! All devices expose the same [`Device`] surface: `read`, `write` and
//! `meta_op`, each charging time on internal [`Pipe`]s. The numbers are
//! calibrated from public gen-1 Optane / datacentre-NVMe measurements (see
//! `DESIGN.md` §4); what matters for the reproduced figures is the *ratio*
//! structure (write ≪ read on SCM, per-extent costs, queue depths).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::rc::Rc;

use daos_sim::time::{SimDuration, SimTime};
use daos_sim::units::{Bandwidth, Gibps, KIB};
use daos_sim::{Pipe, Semaphore, SharedPipe, Sim};

/// Which class of hardware a device models (used in reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MediaKind {
    /// Storage-class memory (Optane DCPMM interleave set).
    Scm,
    /// NVMe SSD.
    Nvme,
    /// Volatile DRAM.
    Dram,
}

/// Cumulative traffic counters for one device.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceStats {
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub read_ops: u64,
    pub write_ops: u64,
    pub meta_ops: u64,
}

/// Common device interface used by VOS and the PFS baseline.
pub trait Device {
    /// Read `bytes`, waiting for queueing + transfer + latency.
    #[allow(async_fn_in_trait)]
    async fn read(&self, sim: &Sim, bytes: u64);
    /// Write `bytes` durably.
    #[allow(async_fn_in_trait)]
    async fn write(&self, sim: &Sim, bytes: u64);
    /// Perform `n` small metadata/index updates (tree nodes, headers).
    #[allow(async_fn_in_trait)]
    async fn meta_op(&self, sim: &Sim, n: u64);
    /// Traffic counters so far.
    fn stats(&self) -> DeviceStats;
    /// What the device models.
    fn kind(&self) -> MediaKind;
}

// ------------------------------------------------------------------ DCPMM

/// Configuration for an Optane DCPMM interleave set.
#[derive(Clone, Copy, Debug)]
pub struct DcpmmConfig {
    /// Sequential read bandwidth of the set.
    pub read_bw: Bandwidth,
    /// Sequential write bandwidth of the set (gen-1: ~3-4x lower).
    pub write_bw: Bandwidth,
    /// Load-to-use latency for reads.
    pub read_latency: SimDuration,
    /// Store + ADR flush latency for writes.
    pub write_latency: SimDuration,
    /// Access granularity (XPLine = 256 B): I/O is rounded up to this.
    pub granularity: u64,
    /// CPU+media cost of one persistent index update (VOS tree node).
    pub meta_op_cost: SimDuration,
}

impl Default for DcpmmConfig {
    /// A gen-1, 6-DIMM interleave set as on NEXTGenIO (per socket).
    fn default() -> Self {
        DcpmmConfig {
            read_bw: Bandwidth::gib_per_sec(30.0),
            write_bw: Bandwidth::gib_per_sec(9.0),
            read_latency: SimDuration::from_ns(350),
            write_latency: SimDuration::from_ns(150),
            granularity: 256,
            meta_op_cost: SimDuration::from_us(1),
        }
    }
}

/// An Optane DCPMM interleave set.
///
/// Reads and writes ride separate pipes (the media services them from
/// different internal queues and the asymmetry is the defining feature);
/// metadata updates contend with writes, as VOS index updates are stores.
pub struct Dcpmm {
    cfg: DcpmmConfig,
    read_pipe: SharedPipe,
    write_pipe: SharedPipe,
}

impl Dcpmm {
    /// Build an interleave set from `cfg`.
    pub fn new(name: &str, cfg: DcpmmConfig) -> Rc<Self> {
        Rc::new(Dcpmm {
            read_pipe: Pipe::new(format!("{name}.rd"), cfg.read_bw, cfg.read_latency),
            write_pipe: Pipe::new(format!("{name}.wr"), cfg.write_bw, cfg.write_latency),
            cfg,
        })
    }

    fn round(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.cfg.granularity) * self.cfg.granularity
    }

    /// Utilisation of the write path over `[0, now]`.
    pub fn write_utilization(&self, now: SimTime) -> f64 {
        self.write_pipe.utilization(now)
    }
}

impl Device for Dcpmm {
    async fn read(&self, sim: &Sim, bytes: u64) {
        self.read_pipe.transfer(sim, self.round(bytes)).await;
    }
    async fn write(&self, sim: &Sim, bytes: u64) {
        self.write_pipe.transfer(sim, self.round(bytes)).await;
    }
    async fn meta_op(&self, sim: &Sim, n: u64) {
        if n > 0 {
            self.write_pipe.occupy(sim, self.cfg.meta_op_cost * n).await;
        }
    }
    fn stats(&self) -> DeviceStats {
        DeviceStats {
            bytes_read: self.read_pipe.bytes_total(),
            bytes_written: self.write_pipe.bytes_total(),
            read_ops: self.read_pipe.ops_total(),
            write_ops: self.write_pipe.ops_total(),
            meta_ops: 0,
        }
    }
    fn kind(&self) -> MediaKind {
        MediaKind::Scm
    }
}

// ------------------------------------------------------------------- NVMe

/// Configuration for an NVMe SSD.
#[derive(Clone, Copy, Debug)]
pub struct NvmeConfig {
    pub read_bw: Bandwidth,
    pub write_bw: Bandwidth,
    pub read_latency: SimDuration,
    pub write_latency: SimDuration,
    /// Block granularity; I/O rounds up to this.
    pub block: u64,
    /// Hardware queue depth (concurrent commands).
    pub queue_depth: usize,
}

impl Default for NvmeConfig {
    /// A datacentre TLC NVMe drive.
    fn default() -> Self {
        NvmeConfig {
            read_bw: Bandwidth::gib_per_sec(3.2),
            write_bw: Bandwidth::gib_per_sec(2.0),
            read_latency: SimDuration::from_us(85),
            write_latency: SimDuration::from_us(25),
            block: 4 * KIB,
            queue_depth: 128,
        }
    }
}

/// An NVMe SSD with bounded queue depth.
pub struct Nvme {
    cfg: NvmeConfig,
    read_pipe: SharedPipe,
    write_pipe: SharedPipe,
    queue: Semaphore,
}

impl Nvme {
    /// Build an SSD from `cfg`.
    pub fn new(name: &str, cfg: NvmeConfig) -> Rc<Self> {
        Rc::new(Nvme {
            read_pipe: Pipe::new(format!("{name}.rd"), cfg.read_bw, cfg.read_latency),
            write_pipe: Pipe::new(format!("{name}.wr"), cfg.write_bw, cfg.write_latency),
            queue: Semaphore::new(cfg.queue_depth),
            cfg,
        })
    }

    fn round(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.cfg.block) * self.cfg.block
    }
}

impl Device for Nvme {
    async fn read(&self, sim: &Sim, bytes: u64) {
        let _slot = self.queue.acquire().await;
        self.read_pipe.transfer(sim, self.round(bytes)).await;
    }
    async fn write(&self, sim: &Sim, bytes: u64) {
        let _slot = self.queue.acquire().await;
        self.write_pipe.transfer(sim, self.round(bytes)).await;
    }
    async fn meta_op(&self, sim: &Sim, n: u64) {
        // block-device metadata (e.g. WAL records) are 4K writes
        for _ in 0..n {
            self.write(sim, self.cfg.block).await;
        }
    }
    fn stats(&self) -> DeviceStats {
        DeviceStats {
            bytes_read: self.read_pipe.bytes_total(),
            bytes_written: self.write_pipe.bytes_total(),
            read_ops: self.read_pipe.ops_total(),
            write_ops: self.write_pipe.ops_total(),
            meta_ops: 0,
        }
    }
    fn kind(&self) -> MediaKind {
        MediaKind::Nvme
    }
}

// ------------------------------------------------------------------- DRAM

/// Volatile memory (page cache / staging buffers).
pub struct Dram {
    pipe: SharedPipe,
}

impl Dram {
    /// A DRAM channel set with the given copy bandwidth.
    pub fn new(name: &str, bw: Bandwidth) -> Rc<Self> {
        Rc::new(Dram {
            pipe: Pipe::new(name, bw, SimDuration::from_ns(90)),
        })
    }
    /// Typical dual-socket copy bandwidth.
    pub fn default_node(name: &str) -> Rc<Self> {
        Self::new(name, Gibps(80.0).bandwidth())
    }
}

impl Device for Dram {
    async fn read(&self, sim: &Sim, bytes: u64) {
        self.pipe.transfer(sim, bytes).await;
    }
    async fn write(&self, sim: &Sim, bytes: u64) {
        self.pipe.transfer(sim, bytes).await;
    }
    async fn meta_op(&self, sim: &Sim, n: u64) {
        self.pipe.occupy(sim, SimDuration::from_ns(200 * n)).await;
    }
    fn stats(&self) -> DeviceStats {
        DeviceStats {
            bytes_read: 0,
            bytes_written: self.pipe.bytes_total(),
            read_ops: 0,
            write_ops: self.pipe.ops_total(),
            meta_ops: 0,
        }
    }
    fn kind(&self) -> MediaKind {
        MediaKind::Dram
    }
}

// -------------------------------------------------------------- MediaSet

/// The media behind one VOS target: SCM for metadata and small values,
/// optionally NVMe for bulk data beyond a size threshold (DAOS's
/// `vos_media_select` policy).
pub struct MediaSet {
    scm: Rc<Dcpmm>,
    nvme: Option<Rc<Nvme>>,
    /// Values >= this many bytes go to NVMe when present.
    pub nvme_threshold: u64,
}

impl MediaSet {
    /// SCM-only target (NEXTGenIO configuration, used by the paper).
    pub fn scm_only(scm: Rc<Dcpmm>) -> Rc<Self> {
        Rc::new(MediaSet {
            scm,
            nvme: None,
            nvme_threshold: u64::MAX,
        })
    }

    /// SCM + NVMe target with the standard 4 KiB spill threshold.
    pub fn with_nvme(scm: Rc<Dcpmm>, nvme: Rc<Nvme>) -> Rc<Self> {
        Rc::new(MediaSet {
            scm,
            nvme: Some(nvme),
            nvme_threshold: 4 * KIB,
        })
    }

    /// The SCM device (always present; holds all indices).
    pub fn scm(&self) -> &Rc<Dcpmm> {
        &self.scm
    }

    /// True if `bytes` of payload goes to NVMe rather than SCM.
    pub fn spills(&self, bytes: u64) -> bool {
        self.nvme.is_some() && bytes >= self.nvme_threshold
    }

    /// Write a value payload to the right medium.
    pub async fn write_payload(&self, sim: &Sim, bytes: u64) {
        match &self.nvme {
            Some(nvme) if bytes >= self.nvme_threshold => nvme.write(sim, bytes).await,
            _ => self.scm.write(sim, bytes).await,
        }
    }

    /// Read a value payload from the right medium.
    pub async fn read_payload(&self, sim: &Sim, bytes: u64) {
        match &self.nvme {
            Some(nvme) if bytes >= self.nvme_threshold => nvme.read(sim, bytes).await,
            _ => self.scm.read(sim, bytes).await,
        }
    }

    /// Persist `n` index updates (always SCM).
    pub async fn index_update(&self, sim: &Sim, n: u64) {
        self.scm.meta_op(sim, n).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_sim::executor::join_all;
    use daos_sim::units::MIB;

    #[test]
    fn dcpmm_write_slower_than_read() {
        let mut sim = Sim::new(1);
        let (tr, tw) = sim.block_on(|sim| async move {
            let dev = Dcpmm::new("pm0", DcpmmConfig::default());
            let t0 = sim.now();
            dev.read(&sim, 64 * MIB).await;
            let t1 = sim.now();
            dev.write(&sim, 64 * MIB).await;
            let t2 = sim.now();
            ((t1 - t0).as_ns(), (t2 - t1).as_ns())
        });
        assert!(tw > 2 * tr, "write {tw} should be >2x read {tr}");
    }

    #[test]
    fn dcpmm_granularity_rounds_up() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            let dev = Dcpmm::new("pm0", DcpmmConfig::default());
            dev.write(&sim, 1).await; // 1 byte costs one 256B line
            assert_eq!(dev.stats().bytes_written, 256);
        });
    }

    #[test]
    fn nvme_queue_depth_bounds_concurrency() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(|sim| async move {
            let cfg = NvmeConfig {
                queue_depth: 2,
                read_latency: SimDuration::from_us(100),
                ..Default::default()
            };
            let dev = Nvme::new("nv0", cfg);
            // 4 tiny reads: transfer time ~0, latency 100us each; but the
            // guard is held across latency, so queue depth 2 gives 2 waves.
            let futs: Vec<_> = (0..4)
                .map(|_| {
                    let d = Rc::clone(&dev);
                    let s = sim.clone();
                    async move { d.read(&s, 1).await }
                })
                .collect();
            join_all(&sim, futs).await;
            sim.now()
        });
        // two waves of ~100us
        assert!(
            t >= SimTime::from_us(200) && t < SimTime::from_us(220),
            "{t}"
        );
    }

    #[test]
    fn media_set_routes_by_threshold() {
        let mut sim = Sim::new(1);
        sim.block_on(|sim| async move {
            let scm = Dcpmm::new("pm", DcpmmConfig::default());
            let nvme = Nvme::new("nv", NvmeConfig::default());
            let set = MediaSet::with_nvme(Rc::clone(&scm), Rc::clone(&nvme));
            assert!(!set.spills(KIB));
            assert!(set.spills(4 * KIB));
            set.write_payload(&sim, KIB).await;
            set.write_payload(&sim, MIB).await;
            assert_eq!(scm.stats().bytes_written, KIB);
            assert_eq!(nvme.stats().bytes_written, MIB);
        });
    }

    #[test]
    fn scm_only_never_spills() {
        let scm = Dcpmm::new("pm", DcpmmConfig::default());
        let set = MediaSet::scm_only(scm);
        assert!(!set.spills(u64::MAX / 2));
    }

    #[test]
    fn meta_ops_charge_write_path() {
        let mut sim = Sim::new(1);
        let t = sim.block_on(|sim| async move {
            let dev = Dcpmm::new("pm0", DcpmmConfig::default());
            dev.meta_op(&sim, 10).await;
            sim.now()
        });
        // 10 x 1us occupancy + 150ns write latency
        assert_eq!(t.as_ns(), 10_000 + 150);
    }
}
