//! One VOS target: container/object/dkey/akey trees plus media-cost
//! accounting.
//!
//! The data structures are mutated for real; the *time* each operation
//! takes is charged against the target's [`MediaSet`] — payload bytes on
//! the data path, index updates on the SCM write path. The index-cost model
//! distinguishes hot (append-adjacent) from cold inserts: this is where
//! wide object classes (`SX`) lose the write-combining that single-target
//! classes enjoy, one of the mechanisms behind the paper's Figure 1(b).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use daos_media::{Device, MediaSet};
use daos_sim::Sim;

use crate::tree::{CsumViolation, ExtentTree, ReadSeg, SingleValue};
use crate::{Epoch, Key, Payload};

/// Container id (DAOS uses UUIDs; dense u64 here).
pub type ContId = u64;
/// Object id as seen by VOS (opaque 128-bit).
pub type ObjKey = u128;

/// Index-maintenance cost model (counts of SCM index updates).
#[derive(Clone, Copy, Debug)]
pub struct VosConfig {
    /// First write to an object shard on this target: allocate + format the
    /// per-object tree root durably.
    pub obj_create_ops: u64,
    /// Insert of a dkey that is not adjacent to the previous insert
    /// (full tree descent + possible node split).
    pub dkey_cold_ops: u64,
    /// Insert of the dkey immediately following the last one (append path,
    /// cached rightmost leaf).
    pub dkey_hot_ops: u64,
    /// New akey under a dkey.
    pub akey_ops: u64,
    /// Extent-tree record insert, appending at the array tail.
    pub extent_append_ops: u64,
    /// Extent-tree record insert anywhere else.
    pub extent_cold_ops: u64,
    /// Bytes of index read charged per fetch descent.
    pub fetch_index_bytes: u64,
    /// Verify stored extent checksums on every array fetch (and let the
    /// engine verify frames on the wire). Mirrors the DAOS per-container
    /// checksum property; on by default.
    pub csum_enabled: bool,
}

impl Default for VosConfig {
    fn default() -> Self {
        VosConfig {
            obj_create_ops: 6,
            dkey_cold_ops: 3,
            dkey_hot_ops: 1,
            akey_ops: 1,
            extent_append_ops: 1,
            extent_cold_ops: 3,
            fetch_index_bytes: 512,
            csum_enabled: true,
        }
    }
}

/// Operation counters for one target.
#[derive(Clone, Copy, Debug, Default)]
pub struct VosCounters {
    pub updates: u64,
    pub fetches: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub obj_creates: u64,
    pub hot_dkey_inserts: u64,
    pub cold_dkey_inserts: u64,
    pub index_ops: u64,
    /// Array chunks walked by the background scrubber.
    pub scrub_chunks: u64,
    /// Payload bytes hashed by the background scrubber.
    pub scrub_bytes: u64,
    /// Checksum violations detected (fetch-path and scrub-path combined).
    pub csum_mismatches: u64,
    /// Extents corrupted by fault injection (ground truth for tests).
    pub extents_rotted: u64,
}

/// One corrupt chunk found by [`VosTarget::scrub_step`].
#[derive(Clone, Debug)]
pub struct ScrubFinding {
    pub cid: ContId,
    pub oid: ObjKey,
    pub dkey: Key,
    pub akey: Key,
    /// Offset/len of the bad extent within the akey.
    pub offset: u64,
    pub len: u64,
}

/// Result of one scrub step: how much was verified and what was found.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Array akeys (chunks) verified this step.
    pub chunks: u64,
    /// Payload bytes hashed this step.
    pub bytes: u64,
    /// True when the cursor reached the end of the namespace and reset —
    /// one full scrub pass completed.
    pub wrapped: bool,
    pub findings: Vec<ScrubFinding>,
}

/// Typed VOS-level failure, surfaced to the RPC layer as an error reply
/// instead of aborting the engine on a malformed data-plane op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VosError {
    /// The addressed akey exists but stores the other value shape than the
    /// op expects (`expected` is `"array"` or `"single"`). A client-side
    /// protocol violation; not retryable — the key's shape won't change.
    AkeyKind {
        /// Shape the op required.
        expected: &'static str,
    },
    /// Stored extent bytes disagree with their stored checksum: silent
    /// media corruption detected on the fetch path.
    Csum(CsumViolation),
}

impl std::fmt::Display for VosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VosError::AkeyKind { expected } => {
                write!(f, "akey type mismatch: op requires a {expected} akey")
            }
            VosError::Csum(v) => write!(
                f,
                "checksum violation at [{}, {})",
                v.offset,
                v.offset + v.len
            ),
        }
    }
}
impl std::error::Error for VosError {}

enum AkeyStore {
    Array { tree: ExtentTree, last_end: u64 },
    Single(SingleValue),
}

#[derive(Default)]
struct DkeyStore {
    akeys: BTreeMap<Key, AkeyStore>,
}

#[derive(Default)]
struct ObjStore {
    dkeys: BTreeMap<Key, DkeyStore>,
    last_dkey: Option<Key>,
    punched_at: Option<Epoch>,
}

#[derive(Default)]
struct ContStore {
    objects: BTreeMap<ObjKey, ObjStore>,
}

/// One VOS target (a media slice served by one engine xstream).
pub struct VosTarget {
    media: Rc<MediaSet>,
    cfg: VosConfig,
    containers: RefCell<BTreeMap<ContId, ContStore>>,
    epoch: Cell<Epoch>,
    counters: RefCell<VosCounters>,
    /// Scrubber position: the last `(cont, obj, dkey, akey)` verified.
    /// `None` = start of namespace.
    scrub_cursor: RefCell<Option<(ContId, ObjKey, Key, Key)>>,
}

impl VosTarget {
    /// Create a target over `media`.
    pub fn new(media: Rc<MediaSet>, cfg: VosConfig) -> Rc<Self> {
        Rc::new(VosTarget {
            media,
            cfg,
            containers: RefCell::new(BTreeMap::new()),
            epoch: Cell::new(0),
            counters: RefCell::new(VosCounters::default()),
            scrub_cursor: RefCell::new(None),
        })
    }

    /// The media set behind this target.
    pub fn media(&self) -> &Rc<MediaSet> {
        &self.media
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> VosCounters {
        *self.counters.borrow()
    }

    /// Allocate the next local epoch (monotonic per target).
    pub fn next_epoch(&self) -> Epoch {
        let e = self.epoch.get() + 1;
        self.epoch.set(e);
        e
    }

    /// Allocate an HLC-style epoch: max(physical time, last + 1). DAOS
    /// epochs are hybrid logical clocks, which makes them comparable
    /// *across* targets — required for container snapshots.
    pub fn next_epoch_at(&self, now_ns: u64) -> Epoch {
        let e = now_ns.max(self.epoch.get() + 1);
        self.epoch.set(e);
        e
    }

    /// Highest epoch issued so far.
    pub fn current_epoch(&self) -> Epoch {
        self.epoch.get()
    }

    /// Ensure a container exists (idempotent).
    pub fn open_container(&self, cid: ContId) {
        self.containers.borrow_mut().entry(cid).or_default();
    }

    /// Whether the container holds any objects.
    pub fn container_is_empty(&self, cid: ContId) -> bool {
        self.containers
            .borrow()
            .get(&cid)
            .map(|c| c.objects.is_empty())
            .unwrap_or(true)
    }

    /// Write `data` into an array akey at `offset` with epoch `epoch`.
    ///
    /// Returns the number of index ops charged (for tests/ablation), or
    /// [`VosError::AkeyKind`] if the akey holds a single value.
    #[allow(clippy::too_many_arguments)]
    pub async fn update_array(
        &self,
        sim: &Sim,
        cid: ContId,
        oid: ObjKey,
        dkey: &Key,
        akey: &Key,
        offset: u64,
        epoch: Epoch,
        data: Payload,
    ) -> Result<u64, VosError> {
        let len = data.len();
        let ops = {
            let mut conts = self.containers.borrow_mut();
            let cont = conts.entry(cid).or_default();
            let mut ops = 0u64;
            let obj = cont.objects.entry(oid).or_insert_with(|| {
                ops += self.cfg.obj_create_ops;
                ObjStore::default()
            });
            let hot_dkey = match (&obj.last_dkey, obj.dkeys.contains_key(dkey)) {
                (_, true) => None, // existing dkey: no insert
                (Some(last), false) => Some(last < dkey),
                (None, false) => Some(true), // first dkey: append path
            };
            match hot_dkey {
                Some(true) => ops += self.cfg.dkey_hot_ops,
                Some(false) => ops += self.cfg.dkey_cold_ops,
                None => {}
            }
            let mut c = self.counters.borrow_mut();
            match hot_dkey {
                Some(true) => c.hot_dkey_inserts += 1,
                Some(false) => c.cold_dkey_inserts += 1,
                None => {}
            }
            // clone keys only on first touch: the steady state (same dkey
            // as last op, existing akey) allocates nothing
            if obj.last_dkey.as_ref() != Some(dkey) {
                obj.last_dkey = Some(dkey.clone());
            }
            let dk = match hot_dkey {
                // INVARIANT: hot_dkey is None exactly when contains_key was true.
                None => obj.dkeys.get_mut(dkey).expect("existing dkey"),
                Some(_) => obj.dkeys.entry(dkey.clone()).or_default(),
            };
            let ak = if dk.akeys.contains_key(akey) {
                // INVARIANT: guarded by contains_key on the same map.
                dk.akeys.get_mut(akey).expect("existing akey")
            } else {
                ops += self.cfg.akey_ops;
                dk.akeys
                    .entry(akey.clone())
                    .or_insert_with(|| AkeyStore::Array {
                        tree: ExtentTree::new(),
                        last_end: 0,
                    })
            };
            match ak {
                AkeyStore::Array { tree, last_end } => {
                    ops += if offset == *last_end {
                        self.cfg.extent_append_ops
                    } else {
                        self.cfg.extent_cold_ops
                    };
                    tree.insert(offset, epoch, data);
                    *last_end = offset + len;
                }
                AkeyStore::Single(_) => return Err(VosError::AkeyKind { expected: "array" }),
            }
            if c.obj_creates < u64::MAX {
                // count object creation via ops delta marker below
            }
            c.updates += 1;
            c.bytes_written += len;
            c.index_ops += ops;
            ops
        };
        self.media.write_payload(sim, len).await;
        self.media.index_update(sim, ops).await;
        Ok(ops)
    }

    /// Read `[offset, offset+len)` from an array akey as of `epoch`,
    /// verifying the checksum of every stored extent the read touches
    /// (when `csum_enabled`). A violation still charges the media time the
    /// failed read consumed — the bytes were read before the hash disagreed.
    #[allow(clippy::too_many_arguments)]
    pub async fn fetch_array(
        &self,
        sim: &Sim,
        cid: ContId,
        oid: ObjKey,
        dkey: &Key,
        akey: &Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    ) -> Result<Vec<ReadSeg>, VosError> {
        let (segs, violation) = {
            let conts = self.containers.borrow();
            let tree = match conts
                .get(&cid)
                .and_then(|c| c.objects.get(&oid))
                .filter(|o| o.punched_at.map(|p| epoch < p).unwrap_or(true))
                .and_then(|o| o.dkeys.get(dkey))
                .and_then(|d| d.akeys.get(akey))
            {
                Some(AkeyStore::Array { tree, .. }) => Some(tree),
                Some(AkeyStore::Single(_)) => return Err(VosError::AkeyKind { expected: "array" }),
                None => None,
            };
            match tree {
                Some(tree) => {
                    let violation = if self.cfg.csum_enabled {
                        tree.verify_range(offset, len, epoch).err()
                    } else {
                        None
                    };
                    (tree.read(offset, len, epoch), violation)
                }
                None => (
                    vec![ReadSeg {
                        offset,
                        len,
                        data: None,
                    }],
                    None,
                ),
            }
        };
        let data_bytes: u64 = segs
            .iter()
            .filter(|s| s.data.is_some())
            .map(|s| s.len)
            .sum();
        {
            let mut c = self.counters.borrow_mut();
            c.fetches += 1;
            c.bytes_read += data_bytes;
            if violation.is_some() {
                c.csum_mismatches += 1;
            }
        }
        self.media.scm().read(sim, self.cfg.fetch_index_bytes).await;
        self.media.read_payload(sim, data_bytes).await;
        match violation {
            Some(v) => Err(VosError::Csum(v)),
            None => Ok(segs),
        }
    }

    /// Upsert a single-value akey.
    #[allow(clippy::too_many_arguments)]
    pub async fn update_single(
        &self,
        sim: &Sim,
        cid: ContId,
        oid: ObjKey,
        dkey: &Key,
        akey: &Key,
        epoch: Epoch,
        value: Payload,
    ) -> Result<(), VosError> {
        let len = value.len();
        let ops = {
            let mut conts = self.containers.borrow_mut();
            let cont = conts.entry(cid).or_default();
            let mut ops = 0u64;
            let obj = cont.objects.entry(oid).or_insert_with(|| {
                ops += self.cfg.obj_create_ops;
                ObjStore::default()
            });
            let new_dkey = !obj.dkeys.contains_key(dkey);
            if new_dkey {
                ops += self.cfg.dkey_cold_ops;
            }
            let dk = if new_dkey {
                obj.dkeys.entry(dkey.clone()).or_default()
            } else {
                // INVARIANT: !new_dkey means contains_key was true just above.
                obj.dkeys.get_mut(dkey).expect("existing dkey")
            };
            let ak = if dk.akeys.contains_key(akey) {
                // INVARIANT: guarded by contains_key on the same map.
                dk.akeys.get_mut(akey).expect("existing akey")
            } else {
                ops += self.cfg.akey_ops;
                dk.akeys
                    .entry(akey.clone())
                    .or_insert_with(|| AkeyStore::Single(SingleValue::new()))
            };
            match ak {
                AkeyStore::Single(sv) => sv.update(epoch, value),
                AkeyStore::Array { .. } => return Err(VosError::AkeyKind { expected: "single" }),
            }
            let mut c = self.counters.borrow_mut();
            c.updates += 1;
            c.bytes_written += len;
            c.index_ops += ops + 1;
            ops + 1
        };
        self.media.write_payload(sim, len).await;
        self.media.index_update(sim, ops).await;
        Ok(())
    }

    /// Read a single-value akey as of `epoch`.
    pub async fn fetch_single(
        &self,
        sim: &Sim,
        cid: ContId,
        oid: ObjKey,
        dkey: &Key,
        akey: &Key,
        epoch: Epoch,
    ) -> Result<Option<Payload>, VosError> {
        let val = {
            let conts = self.containers.borrow();
            match conts
                .get(&cid)
                .and_then(|c| c.objects.get(&oid))
                .filter(|o| o.punched_at.map(|p| epoch < p).unwrap_or(true))
                .and_then(|o| o.dkeys.get(dkey))
                .and_then(|d| d.akeys.get(akey))
            {
                Some(AkeyStore::Single(sv)) => sv.fetch(epoch).cloned(),
                Some(AkeyStore::Array { .. }) => {
                    return Err(VosError::AkeyKind { expected: "single" })
                }
                None => None,
            }
        };
        let bytes = val.as_ref().map(|v| v.len()).unwrap_or(0);
        {
            let mut c = self.counters.borrow_mut();
            c.fetches += 1;
            c.bytes_read += bytes;
        }
        self.media.scm().read(sim, self.cfg.fetch_index_bytes).await;
        if bytes > 0 {
            self.media.read_payload(sim, bytes).await;
        }
        Ok(val)
    }

    /// Punch (logically zero) a byte range of an array akey at `epoch`.
    #[allow(clippy::too_many_arguments)]
    pub async fn punch_array(
        &self,
        sim: &Sim,
        cid: ContId,
        oid: ObjKey,
        dkey: &Key,
        akey: &Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    ) -> Result<(), VosError> {
        {
            let mut conts = self.containers.borrow_mut();
            if let Some(ak) = conts
                .get_mut(&cid)
                .and_then(|c| c.objects.get_mut(&oid))
                .and_then(|o| o.dkeys.get_mut(dkey))
                .and_then(|d| d.akeys.get_mut(akey))
            {
                match ak {
                    AkeyStore::Array { tree, .. } => tree.punch(offset, len, epoch),
                    AkeyStore::Single(_) => return Err(VosError::AkeyKind { expected: "array" }),
                }
            }
        }
        self.media.index_update(sim, self.cfg.extent_cold_ops).await;
        Ok(())
    }

    /// Punch a whole object at `epoch` (unlink).
    pub async fn punch_object(&self, sim: &Sim, cid: ContId, oid: ObjKey, epoch: Epoch) {
        {
            let mut conts = self.containers.borrow_mut();
            if let Some(obj) = conts.entry(cid).or_default().objects.get_mut(&oid) {
                obj.punched_at = Some(epoch);
            }
        }
        self.media.index_update(sim, 2).await;
    }

    /// List dkeys of an object (readdir). Charges one index read per key
    /// batch of 64.
    pub async fn list_dkeys(&self, sim: &Sim, cid: ContId, oid: ObjKey, epoch: Epoch) -> Vec<Key> {
        let keys = {
            let conts = self.containers.borrow();
            conts
                .get(&cid)
                .and_then(|c| c.objects.get(&oid))
                .filter(|o| o.punched_at.map(|p| epoch < p).unwrap_or(true))
                .map(|o| o.dkeys.keys().cloned().collect::<Vec<_>>())
                .unwrap_or_default()
        };
        let batches = (keys.len() as u64).div_ceil(64).max(1);
        self.media
            .scm()
            .read(sim, batches * self.cfg.fetch_index_bytes)
            .await;
        keys
    }

    /// For array objects: the highest dkey on this target and the visible
    /// byte size within it (array-size queries; the client combines across
    /// shards knowing the chunk size). Charges one index read.
    pub async fn array_max_chunk(
        &self,
        sim: &Sim,
        cid: ContId,
        oid: ObjKey,
        akey: &Key,
        epoch: Epoch,
    ) -> Option<(Key, u64)> {
        let out = {
            let conts = self.containers.borrow();
            conts
                .get(&cid)
                .and_then(|c| c.objects.get(&oid))
                .filter(|o| o.punched_at.map(|p| epoch < p).unwrap_or(true))
                .and_then(|o| {
                    o.dkeys.iter().rev().find_map(|(dk, d)| {
                        d.akeys.get(akey).and_then(|a| match a {
                            AkeyStore::Array { tree, .. } => {
                                let sz = tree.size_at(epoch);
                                (sz > 0).then(|| (dk.clone(), sz))
                            }
                            AkeyStore::Single(_) => None,
                        })
                    })
                })
        };
        self.media.scm().read(sim, self.cfg.fetch_index_bytes).await;
        out
    }

    /// Containers present on this target.
    pub fn container_ids(&self) -> Vec<ContId> {
        self.containers.borrow().keys().copied().collect()
    }

    /// Run aggregation over every array akey in `cid` up to `epoch`;
    /// returns reclaimed extent count. (Background service; instantaneous
    /// in sim time — the paper's runs do not overlap aggregation windows.)
    pub fn aggregate(&self, cid: ContId, epoch: Epoch) -> usize {
        let mut reclaimed = 0;
        if let Some(cont) = self.containers.borrow_mut().get_mut(&cid) {
            for obj in cont.objects.values_mut() {
                for dk in obj.dkeys.values_mut() {
                    for ak in dk.akeys.values_mut() {
                        match ak {
                            AkeyStore::Array { tree, .. } => reclaimed += tree.aggregate(epoch),
                            AkeyStore::Single(sv) => sv.aggregate(epoch),
                        }
                    }
                }
            }
        }
        reclaimed
    }

    /// One incremental scrub step: resume from the persistent cursor, walk
    /// up to `budget` array akeys (chunks) verifying every visible extent's
    /// checksum, and charge media read time for the bytes hashed — the
    /// scrubber competes with foreground I/O for media bandwidth, which is
    /// the cost the scrub-rate knob trades against detection latency.
    ///
    /// Punched objects are skipped (their data is no longer visible);
    /// single-value akeys are covered by wire checksums at the engine
    /// boundary, not stored ones, so the scrubber skips them too.
    pub async fn scrub_step(&self, sim: &Sim, budget: usize) -> ScrubReport {
        // Snapshot the akey coordinates after the cursor (borrow must not
        // be held across awaits).
        let cursor = self.scrub_cursor.borrow().clone();
        let mut items: Vec<(ContId, ObjKey, Key, Key)> = Vec::with_capacity(budget);
        let mut wrapped = true;
        {
            let conts = self.containers.borrow();
            'walk: for (cid, cont) in conts.iter() {
                for (oid, obj) in cont.objects.iter() {
                    if obj.punched_at.is_some() {
                        continue;
                    }
                    for (dkey, dk) in obj.dkeys.iter() {
                        for (akey, ak) in dk.akeys.iter() {
                            if !matches!(ak, AkeyStore::Array { .. }) {
                                continue;
                            }
                            let coord = (*cid, *oid, dkey.clone(), akey.clone());
                            if let Some(c) = &cursor {
                                if coord <= *c {
                                    continue;
                                }
                            }
                            if items.len() == budget {
                                // more work remains past this batch
                                wrapped = false;
                                break 'walk;
                            }
                            items.push(coord);
                        }
                    }
                }
            }
        }
        let mut report = ScrubReport::default();
        for (cid, oid, dkey, akey) in &items {
            // Re-resolve each chunk: it may have been punched or dropped
            // while an earlier iteration awaited media time.
            let outcome = {
                let conts = self.containers.borrow();
                conts
                    .get(cid)
                    .and_then(|c| c.objects.get(oid))
                    .filter(|o| o.punched_at.is_none())
                    .and_then(|o| o.dkeys.get(dkey))
                    .and_then(|d| d.akeys.get(akey))
                    .and_then(|a| match a {
                        AkeyStore::Array { tree, .. } => {
                            let span = tree.span(Epoch::MAX);
                            Some((tree.verify_range(0, span, Epoch::MAX), span))
                        }
                        AkeyStore::Single(_) => None,
                    })
            };
            let Some((result, span)) = outcome else {
                continue;
            };
            self.media.scm().read(sim, self.cfg.fetch_index_bytes).await;
            report.chunks += 1;
            match result {
                Ok(bytes) => {
                    self.media.read_payload(sim, bytes).await;
                    report.bytes += bytes;
                }
                Err(v) => {
                    // a failed pass still read the chunk before disagreeing
                    self.media.read_payload(sim, span).await;
                    report.bytes += span;
                    report.findings.push(ScrubFinding {
                        cid: *cid,
                        oid: *oid,
                        dkey: dkey.clone(),
                        akey: akey.clone(),
                        offset: v.offset,
                        len: v.len,
                    });
                }
            }
        }
        {
            let mut c = self.counters.borrow_mut();
            c.scrub_chunks += report.chunks;
            c.scrub_bytes += report.bytes;
            c.csum_mismatches += report.findings.len() as u64;
        }
        *self.scrub_cursor.borrow_mut() = if wrapped { None } else { items.last().cloned() };
        report.wrapped = wrapped;
        report
    }

    /// Fault injection: silently corrupt stored array extents across the
    /// whole target. Each data extent rots independently with probability
    /// `fraction_ppm` parts-per-million (deterministic in `seed`). Stored
    /// checksums are left stale — that is the definition of silent
    /// corruption. Returns the number of extents corrupted.
    pub fn inject_bit_rot(&self, fraction_ppm: u32, seed: u64) -> u64 {
        fn mix(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let mut rotted = 0u64;
        let mut conts = self.containers.borrow_mut();
        for (cid, cont) in conts.iter_mut() {
            for (oid, obj) in cont.objects.iter_mut() {
                for (dkey, dk) in obj.dkeys.iter_mut() {
                    for (akey, ak) in dk.akeys.iter_mut() {
                        if let AkeyStore::Array { tree, .. } = ak {
                            let mut s = seed ^ cid ^ (*oid as u64) ^ ((*oid >> 64) as u64);
                            s = mix(s, dkey);
                            s = mix(s, akey);
                            rotted += tree.inject_rot(s, fraction_ppm);
                        }
                    }
                }
            }
        }
        self.counters.borrow_mut().extents_rotted += rotted;
        rotted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_media::{Dcpmm, DcpmmConfig};

    fn mk_target() -> (Sim, Rc<VosTarget>) {
        let sim = Sim::new(5);
        let scm = Dcpmm::new("pm", DcpmmConfig::default());
        let t = VosTarget::new(MediaSet::scm_only(scm), VosConfig::default());
        (sim, t)
    }

    #[test]
    fn array_round_trip_with_costs() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                let e = t.next_epoch();
                let p = Payload::pattern(1, 4096);
                t.update_array(
                    &sim,
                    1,
                    42,
                    &crate::key("d0"),
                    &crate::key("a"),
                    0,
                    e,
                    p.clone(),
                )
                .await
                .unwrap();
                let segs = t
                    .fetch_array(&sim, 1, 42, &crate::key("d0"), &crate::key("a"), 0, 4096, e)
                    .await
                    .expect("clean data verifies");
                assert_eq!(segs.len(), 1);
                assert_eq!(
                    segs[0].data.as_ref().unwrap().materialize(),
                    p.materialize()
                );
                assert!(sim.now().as_ns() > 0, "ops must cost simulated time");
            }
        });
        let c = t.counters();
        assert_eq!(c.updates, 1);
        assert_eq!(c.fetches, 1);
        assert_eq!(c.bytes_written, 4096);
        assert_eq!(c.bytes_read, 4096);
    }

    #[test]
    fn append_path_is_cheaper_than_scatter() {
        let (mut sim, t) = mk_target();
        let (seq_ops, scat_ops) = sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                let a = crate::key("a");
                // sequential dkeys, contiguous offsets
                let mut seq_ops = 0;
                for i in 0..16u64 {
                    let e = t.next_epoch();
                    let dk = format!("{:08}", i).into_bytes();
                    seq_ops += t
                        .update_array(&sim, 1, 1, &dk, &a, 0, e, Payload::pattern(i, 1024))
                        .await
                        .unwrap();
                }
                // scattered dkeys on a second object (reverse order)
                let mut scat_ops = 0;
                for i in (0..16u64).rev() {
                    let e = t.next_epoch();
                    let dk = format!("{:08}", i).into_bytes();
                    scat_ops += t
                        .update_array(&sim, 1, 2, &dk, &a, 512, e, Payload::pattern(i, 1024))
                        .await
                        .unwrap();
                }
                (seq_ops, scat_ops)
            }
        });
        assert!(
            seq_ops < scat_ops,
            "append path {seq_ops} must beat scatter {scat_ops}"
        );
    }

    #[test]
    fn single_value_round_trip() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                let e1 = t.next_epoch();
                t.update_single(
                    &sim,
                    1,
                    9,
                    &crate::key("d"),
                    &crate::key("attr"),
                    e1,
                    Payload::bytes(vec![1, 2, 3]),
                )
                .await
                .unwrap();
                let e2 = t.next_epoch();
                t.update_single(
                    &sim,
                    1,
                    9,
                    &crate::key("d"),
                    &crate::key("attr"),
                    e2,
                    Payload::bytes(vec![9]),
                )
                .await
                .unwrap();
                let v1 = t
                    .fetch_single(&sim, 1, 9, &crate::key("d"), &crate::key("attr"), e1)
                    .await
                    .unwrap()
                    .unwrap();
                assert_eq!(&v1.materialize()[..], &[1, 2, 3]);
                let v2 = t
                    .fetch_single(&sim, 1, 9, &crate::key("d"), &crate::key("attr"), e2)
                    .await
                    .unwrap()
                    .unwrap();
                assert_eq!(&v2.materialize()[..], &[9]);
            }
        });
    }

    #[test]
    fn fetch_missing_yields_hole() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                let segs = t
                    .fetch_array(
                        &sim,
                        1,
                        7,
                        &crate::key("nope"),
                        &crate::key("a"),
                        0,
                        128,
                        10,
                    )
                    .await
                    .expect("missing akey is a clean hole");
                assert_eq!(segs.len(), 1);
                assert!(segs[0].data.is_none());
            }
        });
    }

    #[test]
    fn punched_object_is_invisible_after_epoch() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                let e1 = t.next_epoch();
                t.update_array(
                    &sim,
                    1,
                    5,
                    &crate::key("d"),
                    &crate::key("a"),
                    0,
                    e1,
                    Payload::pattern(1, 64),
                )
                .await
                .unwrap();
                let e2 = t.next_epoch();
                t.punch_object(&sim, 1, 5, e2).await;
                let e3 = t.next_epoch();
                let segs = t
                    .fetch_array(&sim, 1, 5, &crate::key("d"), &crate::key("a"), 0, 64, e3)
                    .await
                    .unwrap();
                assert!(segs[0].data.is_none(), "punched object must read as hole");
                // reads as-of e1 still see it
                let old = t
                    .fetch_array(&sim, 1, 5, &crate::key("d"), &crate::key("a"), 0, 64, e1)
                    .await
                    .unwrap();
                assert!(old[0].data.is_some());
            }
        });
    }

    #[test]
    fn list_dkeys_returns_sorted() {
        let (mut sim, t) = mk_target();
        let keys = sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                for name in ["zeta", "alpha", "mid"] {
                    let e = t.next_epoch();
                    t.update_single(
                        &sim,
                        1,
                        3,
                        &crate::key(name),
                        &crate::key("v"),
                        e,
                        Payload::bytes(vec![0]),
                    )
                    .await
                    .unwrap();
                }
                t.list_dkeys(&sim, 1, 3, t.current_epoch()).await
            }
        });
        assert_eq!(
            keys,
            vec![crate::key("alpha"), crate::key("mid"), crate::key("zeta")]
        );
    }

    #[test]
    fn bit_rot_fails_fetch_and_scrubber_finds_it() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                // two chunks on one object, one on another
                for (oid, dk) in [(1u128, "c0"), (1, "c1"), (2, "c0")] {
                    let e = t.next_epoch();
                    t.update_array(
                        &sim,
                        1,
                        oid,
                        &crate::key(dk),
                        &crate::key("0"),
                        0,
                        e,
                        Payload::pattern(e, 2048),
                    )
                    .await
                    .unwrap();
                }
                // clean scrub pass first: everything verifies, time charged
                let before = sim.now();
                let rep = t.scrub_step(&sim, 16).await;
                assert!(rep.wrapped);
                assert_eq!(rep.chunks, 3);
                assert_eq!(rep.bytes, 3 * 2048);
                assert!(rep.findings.is_empty());
                assert!(sim.now() > before, "scrub must charge media time");

                // rot everything; fetch fails, scrub locates all three
                let n = t.inject_bit_rot(1_000_000, 0x1207);
                assert_eq!(n, 3);
                let err = t
                    .fetch_array(
                        &sim,
                        1,
                        1,
                        &crate::key("c0"),
                        &crate::key("0"),
                        0,
                        2048,
                        t.current_epoch(),
                    )
                    .await;
                assert!(err.is_err(), "fetch of rotten chunk must fail verify");
                let rep = t.scrub_step(&sim, 16).await;
                assert_eq!(rep.findings.len(), 3);
                assert!(t.counters().csum_mismatches >= 4);
            }
        });
    }

    #[test]
    fn scrub_cursor_walks_incrementally() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                for i in 0..5u64 {
                    let e = t.next_epoch();
                    t.update_array(
                        &sim,
                        1,
                        7,
                        &format!("{i:08}").into_bytes(),
                        &crate::key("0"),
                        0,
                        e,
                        Payload::pattern(i, 256),
                    )
                    .await
                    .unwrap();
                }
                let r1 = t.scrub_step(&sim, 2).await;
                assert_eq!(r1.chunks, 2);
                assert!(!r1.wrapped);
                let r2 = t.scrub_step(&sim, 2).await;
                assert_eq!(r2.chunks, 2);
                assert!(!r2.wrapped);
                let r3 = t.scrub_step(&sim, 2).await;
                assert_eq!(r3.chunks, 1);
                assert!(r3.wrapped, "cursor must wrap at end of namespace");
                // next pass starts over
                let r4 = t.scrub_step(&sim, 16).await;
                assert_eq!(r4.chunks, 5);
                assert!(r4.wrapped);
            }
        });
    }

    #[test]
    fn csum_disabled_serves_rotten_bytes_silently() {
        let sim = Sim::new(5);
        let scm = Dcpmm::new("pm", DcpmmConfig::default());
        let cfg = VosConfig {
            csum_enabled: false,
            ..VosConfig::default()
        };
        let t = VosTarget::new(MediaSet::scm_only(scm), cfg);
        let mut sim = sim;
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                let e = t.next_epoch();
                t.update_array(
                    &sim,
                    1,
                    1,
                    &crate::key("d"),
                    &crate::key("0"),
                    0,
                    e,
                    Payload::pattern(1, 512),
                )
                .await
                .unwrap();
                t.inject_bit_rot(1_000_000, 99);
                let segs = t
                    .fetch_array(&sim, 1, 1, &crate::key("d"), &crate::key("0"), 0, 512, e)
                    .await
                    .expect("verification disabled: rot goes unnoticed");
                assert_ne!(
                    segs[0].data.as_ref().unwrap().materialize(),
                    Payload::pattern(1, 512).materialize()
                );
            }
        });
    }

    #[test]
    fn aggregate_reclaims_overwrite_history() {
        let (mut sim, t) = mk_target();
        sim.block_on(|sim| {
            let t = Rc::clone(&t);
            async move {
                for _ in 0..10 {
                    let e = t.next_epoch();
                    t.update_array(
                        &sim,
                        1,
                        8,
                        &crate::key("d"),
                        &crate::key("a"),
                        0,
                        e,
                        Payload::pattern(e, 1024),
                    )
                    .await
                    .unwrap();
                }
                let reclaimed = t.aggregate(1, t.current_epoch());
                assert!(
                    reclaimed >= 8,
                    "should reclaim shadowed extents: {reclaimed}"
                );
                let segs = t
                    .fetch_array(
                        &sim,
                        1,
                        8,
                        &crate::key("d"),
                        &crate::key("a"),
                        0,
                        1024,
                        t.current_epoch(),
                    )
                    .await
                    .expect("aggregated data verifies clean");
                assert_eq!(
                    segs.iter()
                        .filter(|s| s.data.is_some())
                        .map(|s| s.len)
                        .sum::<u64>(),
                    1024
                );
            }
        });
    }
}
