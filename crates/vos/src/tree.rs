//! Epoch-versioned value trees: the array extent tree and the single-value
//! log.
//!
//! Reads are *as-of-epoch* overlays: an extent written at epoch `e` is
//! visible to reads at `e' >= e` unless shadowed by a newer overlapping
//! extent with epoch `<= e'`, or hidden by a punch.

use std::cell::RefCell;

use crate::{csum64, Epoch, Payload, CSUM_SEED};

/// One recorded write (or punch, when `data` is `None`) into an array akey.
#[derive(Clone, Debug)]
pub struct Extent {
    pub offset: u64,
    pub len: u64,
    pub epoch: Epoch,
    /// Tie-break for writes in the same epoch (later insert wins).
    pub minor: u64,
    /// `None` models a punched hole.
    pub data: Option<Payload>,
    /// Seeded 64-bit checksum over `data`'s bytes, computed at insert time
    /// and carried through aggregation; `0` for punches. Stored alongside
    /// the extent exactly like real VOS keeps checksums in the evtree.
    pub csum: u64,
}

impl Extent {
    fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Does the stored checksum still match the stored bytes?
    fn csum_ok(&self) -> bool {
        match &self.data {
            Some(p) => csum64(CSUM_SEED, p) == self.csum,
            None => true,
        }
    }
}

/// A detected checksum mismatch: the stored extent whose bytes no longer
/// hash to the stored checksum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsumViolation {
    /// Offset of the bad extent within the akey's address space.
    pub offset: u64,
    /// Length of the bad extent.
    pub len: u64,
}

/// A segment of a read result: either data or a hole.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadSeg {
    pub offset: u64,
    pub len: u64,
    /// `None` = never written (or punched): reads as zeroes.
    pub data: Option<Payload>,
}

/// Intermediate paint segment: `src` points into the visible-extent list of
/// the overlay it came from (`None` = hole).
#[derive(Clone)]
struct Seg {
    start: u64,
    end: u64,
    src: Option<(usize, u64)>, // (index into vis, offset within extent)
}

/// The epoch-versioned extent tree backing one array akey.
///
/// Kept as an insert-ordered vec; visibility queries overlay extents in
/// `(epoch, minor)` order. Real VOS uses an R-tree in persistent memory;
/// the semantics here are identical and the simulator charges index-update
/// costs separately via [`crate::VosTarget`].
#[derive(Clone, Debug, Default)]
pub struct ExtentTree {
    extents: Vec<Extent>,
    next_minor: u64,
    /// Interval index over `extents`, rebuilt lazily after mutations so
    /// write bursts don't pay per-insert maintenance.
    index: RefCell<ExtentIndex>,
}

/// Dense-id interval index: extent ids (indices into `extents`) sorted by
/// `(offset, id)`, plus `prefix_max_end[i]` = max `end()` over
/// `by_start[0..=i]`. A range query `[offset, qend)` then reduces to two
/// binary searches: ids at positions `< lo` all end at or before `offset`
/// (prefix max is non-decreasing), ids at positions `>= hi` all start at
/// or beyond `qend` — only `by_start[lo..hi]` need be tested.
#[derive(Clone, Debug, Default)]
struct ExtentIndex {
    by_start: Vec<u32>,
    prefix_max_end: Vec<u64>,
    dirty: bool,
}

impl ExtentTree {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a write of `data` at `offset` at `epoch`.
    pub fn insert(&mut self, offset: u64, epoch: Epoch, data: Payload) {
        let minor = self.next_minor;
        self.next_minor += 1;
        let csum = csum64(CSUM_SEED, &data);
        self.extents.push(Extent {
            offset,
            len: data.len(),
            epoch,
            minor,
            data: Some(data),
            csum,
        });
        self.index.borrow_mut().dirty = true;
    }

    /// Punch (logically zero) `[offset, offset+len)` at `epoch`.
    pub fn punch(&mut self, offset: u64, len: u64, epoch: Epoch) {
        let minor = self.next_minor;
        self.next_minor += 1;
        self.extents.push(Extent {
            offset,
            len,
            epoch,
            minor,
            data: None,
            csum: 0,
        });
        self.index.borrow_mut().dirty = true;
    }

    /// Number of stored extents (index size; drives media index cost).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Highest offset visible *as data* at `epoch` (array size). Punches
    /// count: truncating the tail shrinks the size.
    pub fn size_at(&self, epoch: Epoch) -> u64 {
        let span = self
            .extents
            .iter()
            .filter(|e| e.epoch <= epoch)
            .map(|e| e.end())
            .max()
            .unwrap_or(0);
        if span == 0 {
            return 0;
        }
        self.read(0, span, epoch)
            .iter()
            .rev()
            .find(|s| s.data.is_some())
            .map(|s| s.offset + s.len)
            .unwrap_or(0)
    }

    /// Maximum end offset over all stored extents visible at `epoch` — the
    /// address-space span a full scrub must cover (punches included: a
    /// punched region still has index entries to walk).
    pub fn span(&self, epoch: Epoch) -> u64 {
        self.extents
            .iter()
            .filter(|e| e.epoch <= epoch)
            .map(|e| e.end())
            .max()
            .unwrap_or(0)
    }

    /// Read `[offset, offset+len)` as of `epoch`, returning maximal
    /// contiguous segments in order. Holes appear as `data: None`.
    pub fn read(&self, offset: u64, len: u64, epoch: Epoch) -> Vec<ReadSeg> {
        let (merged, vis) = self.overlay(offset, len, epoch);
        merged
            .into_iter()
            .map(|s| {
                let data = s.src.and_then(|(i, off)| {
                    vis[i].data.as_ref().map(|p| p.slice(off, s.end - s.start))
                });
                ReadSeg {
                    offset: s.start,
                    len: s.end - s.start,
                    data,
                }
            })
            .collect()
    }

    /// Verify the checksum of every stored extent that contributes at least
    /// one visible byte to `[offset, offset+len)` at `epoch`. Each
    /// contributing extent is hashed over its *full* stored payload (the
    /// checksum covers the whole extent, not the visible slice). Returns the
    /// total number of payload bytes hashed, or the first violation found.
    pub fn verify_range(&self, offset: u64, len: u64, epoch: Epoch) -> Result<u64, CsumViolation> {
        let (merged, vis) = self.overlay(offset, len, epoch);
        let mut seen = vec![false; vis.len()];
        let mut bytes = 0u64;
        for s in &merged {
            if let Some((i, _)) = s.src {
                if !seen[i] {
                    seen[i] = true;
                    let e = vis[i];
                    if !e.csum_ok() {
                        return Err(CsumViolation {
                            offset: e.offset,
                            len: e.len,
                        });
                    }
                    bytes += e.len;
                }
            }
        }
        Ok(bytes)
    }

    /// Fault injection: deterministically corrupt stored data extents,
    /// leaving their recorded checksums stale (that is the point — the rot
    /// is silent until a verify looks). Each data extent rots independently
    /// with probability `fraction_ppm` parts-per-million, decided by a hash
    /// of `seed` and the extent's identity. Returns the number of extents
    /// corrupted.
    pub fn inject_rot(&mut self, seed: u64, fraction_ppm: u32) -> u64 {
        let mut rotted = 0u64;
        for e in self.extents.iter_mut().filter(|e| e.data.is_some()) {
            let roll = crate::daos_splitmix(
                seed ^ e.minor.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (e.offset << 1) ^ e.epoch,
            ) % 1_000_000;
            if roll < fraction_ppm as u64 {
                e.data = e.data.as_ref().map(|p| p.corrupted());
                rotted += 1;
            }
        }
        rotted
    }

    /// Run `f` against an up-to-date interval index, rebuilding it first
    /// if mutations invalidated it. Rebuild is `O(n log n)` but amortized:
    /// a burst of inserts marks the index dirty once and the next query
    /// pays a single rebuild (and appends arrive nearly sorted, which
    /// `sort_unstable` handles in near-linear time).
    fn with_index<R>(&self, f: impl FnOnce(&ExtentIndex) -> R) -> R {
        let mut ix = self.index.borrow_mut();
        let ix = &mut *ix;
        if ix.dirty || ix.by_start.len() != self.extents.len() {
            ix.by_start.clear();
            ix.by_start.extend(0..self.extents.len() as u32);
            ix.by_start
                .sort_unstable_by_key(|&id| (self.extents[id as usize].offset, id));
            ix.prefix_max_end.clear();
            let mut m = 0u64;
            for i in 0..ix.by_start.len() {
                m = m.max(self.extents[ix.by_start[i] as usize].end());
                ix.prefix_max_end.push(m);
            }
            ix.dirty = false;
        }
        f(ix)
    }

    /// The paint algorithm shared by [`read`](Self::read) and
    /// [`verify_range`](Self::verify_range): overlay visible extents in
    /// `(epoch, minor)` order over the query range, returning coalesced
    /// segments plus the visible-extent list their `src` indices refer to.
    fn overlay(&self, offset: u64, len: u64, epoch: Epoch) -> (Vec<Seg>, Vec<&Extent>) {
        let qend = offset + len;
        // visible extents in overlay order (older first, same epoch by
        // minor) — candidates come from the interval index, then the
        // epoch/end filters. The candidate *set* is identical to a full
        // scan, and (epoch, minor) keys are unique, so the sorted order —
        // all downstream behavior depends only on it — is too.
        let mut vis: Vec<&Extent> = self.with_index(|ix| {
            let hi = ix
                .by_start
                .partition_point(|&id| self.extents[id as usize].offset < qend);
            let lo = ix.prefix_max_end[..hi].partition_point(|&m| m <= offset);
            ix.by_start[lo..hi]
                .iter()
                .map(|&id| &self.extents[id as usize])
                .filter(|e| e.epoch <= epoch && e.end() > offset)
                .collect()
        });
        vis.sort_by_key(|e| (e.epoch, e.minor));

        // paint: segment list covering the query range
        let mut segs = vec![Seg {
            start: offset,
            end: qend,
            src: None,
        }];
        for (i, e) in vis.iter().enumerate() {
            let (es, ee) = (e.offset.max(offset), e.end().min(qend));
            let mut out = Vec::with_capacity(segs.len() + 2);
            for s in segs.drain(..) {
                if s.end <= es || s.start >= ee {
                    out.push(s);
                    continue;
                }
                if s.start < es {
                    out.push(Seg {
                        start: s.start,
                        end: es,
                        src: s.src,
                    });
                }
                out.push(Seg {
                    start: s.start.max(es),
                    end: s.end.min(ee),
                    src: Some((i, s.start.max(es) - e.offset)),
                });
                if s.end > ee {
                    let adj = s.src.map(|(idx, off)| (idx, off + (ee - s.start)));
                    out.push(Seg {
                        start: ee,
                        end: s.end,
                        src: adj,
                    });
                }
            }
            segs = out;
            segs.sort_by_key(|s| s.start);
        }

        // coalesce fragments the paint loop split: adjacent pieces of the
        // same extent (continuous source offset) and adjacent holes
        let mut merged: Vec<Seg> = Vec::with_capacity(segs.len());
        for s in segs.into_iter().filter(|s| s.end > s.start) {
            if let Some(prev) = merged.last_mut() {
                let contiguous = prev.end == s.start
                    && match (&prev.src, &s.src) {
                        (None, None) => true,
                        (Some((pi, po)), Some((si, so))) => {
                            pi == si && po + (prev.end - prev.start) == *so
                        }
                        _ => false,
                    };
                if contiguous {
                    prev.end = s.end;
                    continue;
                }
            }
            merged.push(s);
        }

        (merged, vis)
    }

    /// Flatten history at or below `upto`: replace all extents with epoch
    /// `<= upto` by the visible overlay at `upto` (epoch-tagged `upto`).
    /// Returns the number of extents reclaimed. This is VOS aggregation.
    ///
    /// Safety rule borrowed from real VOS: if any extent in the aggregation
    /// window fails its checksum, the pass aborts (returns 0) rather than
    /// re-hashing rotten bytes under a fresh checksum — aggregation must
    /// never launder silent corruption into "valid" data. The scrubber (or
    /// the next verified read) will find and repair it first.
    pub fn aggregate(&mut self, upto: Epoch) -> usize {
        let old: Vec<Extent> = self
            .extents
            .iter()
            .filter(|e| e.epoch <= upto)
            .cloned()
            .collect();
        if old.len() <= 1 {
            return 0;
        }
        if old.iter().any(|e| !e.csum_ok()) {
            return 0;
        }
        // the visible image over the old extents' full span
        // INVARIANT: old.len() > 1 was checked above, so min() is Some.
        let lo = old.iter().map(|e| e.offset).min().unwrap();
        // INVARIANT: same non-empty check covers max().
        let hi = old.iter().map(|e| e.end()).max().unwrap();
        let image = self.read(lo, hi - lo, upto);
        let newer: Vec<Extent> = self.extents.drain(..).filter(|e| e.epoch > upto).collect();
        let reclaimed = old.len();
        let mut added = 0usize;
        for seg in image {
            if let Some(d) = seg.data {
                let minor = self.next_minor;
                self.next_minor += 1;
                let csum = csum64(CSUM_SEED, &d);
                self.extents.push(Extent {
                    offset: seg.offset,
                    len: seg.len,
                    epoch: upto,
                    minor,
                    data: Some(d),
                    csum,
                });
                added += 1;
            }
        }
        self.extents.extend(newer);
        self.index.borrow_mut().dirty = true;
        reclaimed.saturating_sub(added)
    }
}

/// Epoch log of whole-value updates for a single-value akey.
#[derive(Clone, Debug, Default)]
pub struct SingleValue {
    /// (epoch, value); `None` is a punch. Sorted by insertion (epochs
    /// monotone in practice; we search for the max `<=` query epoch).
    versions: Vec<(Epoch, Option<Payload>)>,
}

impl SingleValue {
    /// Empty value.
    pub fn new() -> Self {
        Self::default()
    }
    /// Record an update at `epoch`.
    pub fn update(&mut self, epoch: Epoch, value: Payload) {
        self.versions.push((epoch, Some(value)));
    }
    /// Punch at `epoch`.
    pub fn punch(&mut self, epoch: Epoch) {
        self.versions.push((epoch, None));
    }
    /// The value visible at `epoch`.
    pub fn fetch(&self, epoch: Epoch) -> Option<&Payload> {
        self.versions
            .iter()
            .filter(|(e, _)| *e <= epoch)
            .max_by_key(|(e, _)| *e)
            .and_then(|(_, v)| v.as_ref())
    }
    /// Number of retained versions.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }
    /// Drop superseded versions at or below `upto`.
    pub fn aggregate(&mut self, upto: Epoch) {
        let keep_latest = self
            .versions
            .iter()
            .enumerate()
            .filter(|(_, (e, _))| *e <= upto)
            .max_by_key(|(_, (e, _))| *e)
            .map(|(i, _)| i);
        if let Some(latest) = keep_latest {
            let mut i = 0;
            self.versions.retain(|(e, _)| {
                let keep = *e > upto || i == latest;
                i += 1;
                keep
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: u64, len: u64) -> Payload {
        Payload::pattern(tag, len)
    }

    /// Naive model: a byte map, for differential testing.
    fn model_read(
        writes: &[(u64, Epoch, Vec<u8>)],
        off: u64,
        len: u64,
        epoch: Epoch,
    ) -> Vec<Option<u8>> {
        let mut img: Vec<Option<u8>> = vec![None; (off + len) as usize];
        for (woff, wep, data) in writes {
            if *wep > epoch {
                continue;
            }
            for (i, b) in data.iter().enumerate() {
                let pos = *woff as usize + i;
                if pos < img.len() {
                    img[pos] = Some(*b);
                }
            }
        }
        img[off as usize..].to_vec()
    }

    fn tree_read_bytes(t: &ExtentTree, off: u64, len: u64, epoch: Epoch) -> Vec<Option<u8>> {
        let mut out = vec![None; len as usize];
        for seg in t.read(off, len, epoch) {
            if let Some(d) = seg.data {
                let m = d.materialize();
                for i in 0..seg.len {
                    out[(seg.offset - off + i) as usize] = Some(m[i as usize]);
                }
            }
        }
        out
    }

    #[test]
    fn simple_write_read_round_trip() {
        let mut t = ExtentTree::new();
        let p = payload(1, 100);
        t.insert(50, 1, p.clone());
        let segs = t.read(50, 100, 1);
        assert_eq!(segs.len(), 1);
        assert_eq!(
            segs[0].data.as_ref().unwrap().materialize(),
            p.materialize()
        );
        assert_eq!(t.size_at(1), 150);
        assert_eq!(t.size_at(0), 0);
    }

    #[test]
    fn read_before_epoch_sees_nothing() {
        let mut t = ExtentTree::new();
        t.insert(0, 5, payload(1, 10));
        let segs = t.read(0, 10, 4);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].data.is_none());
    }

    #[test]
    fn newer_extent_shadows_older() {
        let mut t = ExtentTree::new();
        t.insert(0, 1, payload(1, 100));
        t.insert(25, 2, payload(2, 50));
        let img = tree_read_bytes(&t, 0, 100, 2);
        let old = payload(1, 100).materialize();
        let new = payload(2, 50).materialize();
        for i in 0..25 {
            assert_eq!(img[i], Some(old[i]));
        }
        for i in 25..75 {
            assert_eq!(img[i], Some(new[i - 25]));
        }
        for i in 75..100 {
            assert_eq!(img[i], Some(old[i]));
        }
        // as-of epoch 1 still sees the old data intact
        let img1 = tree_read_bytes(&t, 0, 100, 1);
        for i in 0..100 {
            assert_eq!(img1[i], Some(old[i]));
        }
    }

    #[test]
    fn same_epoch_later_minor_wins() {
        let mut t = ExtentTree::new();
        t.insert(0, 3, payload(1, 10));
        t.insert(0, 3, payload(2, 10));
        let img = tree_read_bytes(&t, 0, 10, 3);
        let want = payload(2, 10).materialize();
        for i in 0..10 {
            assert_eq!(img[i], Some(want[i]));
        }
    }

    #[test]
    fn punch_hides_then_overwrite_restores() {
        let mut t = ExtentTree::new();
        t.insert(0, 1, payload(1, 100));
        t.punch(20, 30, 2);
        let img = tree_read_bytes(&t, 0, 100, 2);
        for b in &img[20..50] {
            assert_eq!(*b, None);
        }
        assert_eq!(img[19], Some(payload(1, 100).materialize()[19]));
        t.insert(30, 3, payload(3, 10));
        let img3 = tree_read_bytes(&t, 25, 20, 3);
        assert_eq!(img3[0], None); // 25..30 still hole
        assert_eq!(img3[5], Some(payload(3, 10).materialize()[0]));
    }

    #[test]
    fn differential_random_overlay() {
        // hand-rolled xorshift for reproducibility
        let mut s = 0x12345u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = ExtentTree::new();
        let mut writes: Vec<(u64, Epoch, Vec<u8>)> = Vec::new();
        for ep in 1..=40u64 {
            let off = rnd() % 200;
            let len = 1 + rnd() % 60;
            let p = Payload::pattern(ep, len);
            writes.push((off, ep, p.materialize().to_vec()));
            t.insert(off, ep, p);
        }
        for q in [0u64, 10, 20, 40] {
            let img = tree_read_bytes(&t, 0, 260, q);
            let want = model_read(&writes, 0, 260, q);
            assert_eq!(img, want, "mismatch at epoch {q}");
        }
    }

    #[test]
    fn aggregation_preserves_visible_image_and_reclaims() {
        let mut t = ExtentTree::new();
        // growing rewrites of the same region: the last one shadows all
        for ep in 1..=20u64 {
            t.insert(0, ep, payload(ep, 30 + ep));
        }
        let before = tree_read_bytes(&t, 0, 100, 20);
        let n_before = t.extent_count();
        let reclaimed = t.aggregate(20);
        let after = tree_read_bytes(&t, 0, 100, 20);
        assert_eq!(before, after);
        assert!(t.extent_count() < n_before);
        assert!(reclaimed > 0);
    }

    #[test]
    fn aggregation_keeps_newer_epochs_untouched() {
        let mut t = ExtentTree::new();
        t.insert(0, 1, payload(1, 50));
        t.insert(10, 2, payload(2, 20));
        t.insert(0, 10, payload(10, 5));
        t.aggregate(2);
        let img10 = tree_read_bytes(&t, 0, 50, 10);
        let want10 = {
            let mut v = payload(1, 50).materialize().to_vec();
            let p2 = payload(2, 20).materialize();
            v[10..30].copy_from_slice(&p2);
            let p10 = payload(10, 5).materialize();
            v[0..5].copy_from_slice(&p10);
            v
        };
        for i in 0..50 {
            assert_eq!(img10[i], Some(want10[i]));
        }
    }

    #[test]
    fn verify_range_clean_after_interleaved_ops() {
        let mut t = ExtentTree::new();
        t.insert(0, 1, payload(1, 100));
        t.punch(20, 30, 2);
        t.insert(30, 3, payload(3, 10));
        t.aggregate(2);
        t.insert(90, 4, payload(4, 40));
        for q in [1u64, 2, 3, 4] {
            let span = t.span(q);
            if span > 0 {
                assert!(t.verify_range(0, span, q).is_ok(), "epoch {q}");
            }
        }
        // bytes hashed counts full extents, not just visible slices
        let n = t.verify_range(0, t.span(4), 4).unwrap();
        assert!(n > 0);
    }

    #[test]
    fn inject_rot_is_detected_and_locatable() {
        let mut t = ExtentTree::new();
        t.insert(0, 1, payload(1, 64));
        t.insert(64, 1, payload(2, 64));
        // 100% rot corrupts every data extent
        let n = t.inject_rot(0xDEAD, 1_000_000);
        assert_eq!(n, 2);
        let v = t.verify_range(0, 128, 1).unwrap_err();
        assert!(v.len == 64);
        // reads still "succeed" (rot is silent at the tree level); the
        // returned bytes differ from the originals
        let segs = t.read(0, 64, 1);
        assert_ne!(
            segs[0].data.as_ref().unwrap().materialize(),
            payload(1, 64).materialize()
        );
    }

    #[test]
    fn rot_only_hits_requested_fraction_deterministically() {
        let mk = || {
            let mut t = ExtentTree::new();
            for i in 0..100u64 {
                t.insert(i * 10, 1, payload(i, 10));
            }
            t
        };
        let mut a = mk();
        let mut b = mk();
        let na = a.inject_rot(42, 100_000); // ~10%
        let nb = b.inject_rot(42, 100_000);
        assert_eq!(na, nb, "injection must be deterministic");
        assert!(na > 0 && na < 100, "fraction should be partial, got {na}");
    }

    #[test]
    fn aggregation_refuses_to_launder_rot() {
        let mut t = ExtentTree::new();
        for ep in 1..=5u64 {
            t.insert(0, ep, payload(ep, 40));
        }
        t.inject_rot(7, 1_000_000);
        let n = t.extent_count();
        assert_eq!(t.aggregate(5), 0, "aggregation must abort on bad csum");
        assert_eq!(t.extent_count(), n, "tree untouched after abort");
        assert!(t.verify_range(0, 40, 5).is_err(), "rot stays detectable");
    }

    #[test]
    fn aggregated_extents_carry_fresh_valid_csums() {
        let mut t = ExtentTree::new();
        for ep in 1..=10u64 {
            t.insert(0, ep, payload(ep, 50 + ep));
        }
        assert!(t.aggregate(10) > 0);
        let span = t.span(10);
        assert!(t.verify_range(0, span, 10).is_ok());
    }

    #[test]
    fn single_value_epochs() {
        let mut sv = SingleValue::new();
        sv.update(5, payload(1, 8));
        sv.update(9, payload(2, 8));
        assert!(sv.fetch(4).is_none());
        assert_eq!(
            sv.fetch(5).unwrap().materialize(),
            payload(1, 8).materialize()
        );
        assert_eq!(
            sv.fetch(100).unwrap().materialize(),
            payload(2, 8).materialize()
        );
        sv.punch(12);
        assert!(sv.fetch(12).is_none());
        assert!(sv.fetch(11).is_some());
    }

    #[test]
    fn single_value_aggregate() {
        let mut sv = SingleValue::new();
        for e in 1..=10 {
            sv.update(e, payload(e, 4));
        }
        sv.aggregate(8);
        assert_eq!(
            sv.fetch(8).unwrap().materialize(),
            payload(8, 4).materialize()
        );
        assert_eq!(
            sv.fetch(10).unwrap().materialize(),
            payload(10, 4).materialize()
        );
        assert!(sv.version_count() <= 3);
    }
}
