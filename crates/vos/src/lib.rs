//! # daos-vos — the Versioned Object Store
//!
//! VOS is the per-target storage engine of DAOS: every target keeps a tree
//! of containers → objects → distribution keys (dkey) → attribute keys
//! (akey) → values, where a value is either a *single value* (replaced
//! wholesale per epoch) or a *byte array* maintained as an epoch-versioned
//! extent tree. All updates are tagged with an epoch; reads are served "as
//! of" an epoch, which is how DAOS gives writers isolation without locks —
//! the property behind the paper's observation that shared-file I/O costs
//! the same as file-per-process (§IV).
//!
//! This crate implements the data structures *for real* (bytes in, bytes
//! out, punch semantics, aggregation) while charging simulated time against
//! a [`daos_media::MediaSet`]. Payloads can be literal bytes or a
//! deterministic [`Payload::Pattern`] so benchmarks can push terabytes
//! through the data path without allocating them.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

pub mod target;
pub mod tree;

pub use target::{ScrubFinding, ScrubReport, VosConfig, VosCounters, VosTarget};
pub use tree::{CsumViolation, Extent, ExtentTree, ReadSeg};

use bytes::Bytes;

/// An update epoch (DAOS uses HLC timestamps; monotonic u64 here).
pub type Epoch = u64;

/// A dkey or akey: arbitrary bytes, ordered.
pub type Key = Vec<u8>;

/// Helper: a key from anything byte-like.
pub fn key(k: impl AsRef<[u8]>) -> Key {
    k.as_ref().to_vec()
}

/// Value payload: literal bytes, or a deterministic pattern standing in for
/// `len` bytes of synthetic benchmark data (no allocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Actual data.
    Bytes(Bytes),
    /// `len` synthetic bytes from a seeded stream starting at `skew`.
    Pattern { seed: u64, skew: u64, len: u64 },
}

impl Payload {
    /// A payload from literal bytes.
    pub fn bytes(data: impl Into<Bytes>) -> Self {
        Payload::Bytes(data.into())
    }

    /// A synthetic payload of `len` bytes.
    pub fn pattern(seed: u64, len: u64) -> Self {
        Payload::Pattern { seed, skew: 0, len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Pattern { len, .. } => *len,
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range `[off, off+len)`; both payload kinds slice consistently
    /// (a pattern's slice yields the same bytes as slicing its
    /// materialisation).
    pub fn slice(&self, off: u64, len: u64) -> Payload {
        debug_assert!(off + len <= self.len(), "slice out of range");
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(off as usize..(off + len) as usize)),
            Payload::Pattern { seed, skew, .. } => Payload::Pattern {
                seed: *seed,
                skew: *skew + off,
                len,
            },
        }
    }

    /// The byte at stream position `i`.
    pub fn byte_at(&self, i: u64) -> u8 {
        match self {
            Payload::Bytes(b) => b[i as usize],
            Payload::Pattern { seed, skew, .. } => pattern_byte(*seed, *skew + i),
        }
    }

    /// Materialise to owned bytes (tests / verification — O(len) memory).
    pub fn materialize(&self) -> Bytes {
        match self {
            Payload::Bytes(b) => b.clone(),
            Payload::Pattern { seed, skew, len } => {
                let mut v = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    v.push(pattern_byte(*seed, *skew + i));
                }
                Bytes::from(v)
            }
        }
    }

    /// A deterministically *corrupted* copy of this payload — the
    /// fault-injection primitive behind bit rot and torn frames. The result
    /// has the same length but different bytes, so a checksum computed over
    /// the original no longer matches.
    pub fn corrupted(&self) -> Payload {
        match self {
            Payload::Bytes(b) => {
                if b.is_empty() {
                    return self.clone();
                }
                let mut v = b.to_vec();
                let mid = v.len() / 2;
                v[mid] ^= 0x80;
                Payload::Bytes(Bytes::from(v))
            }
            Payload::Pattern { seed, skew, len } => Payload::Pattern {
                seed: seed ^ 0xB17_2077_DEAD_BEEF,
                skew: *skew,
                len: *len,
            },
        }
    }
}

/// Seed for every stored / on-wire checksum in the stack (a deployment-wide
/// constant in real DAOS; the seed keeps the hash from being forgeable by
/// all-zero data).
pub const CSUM_SEED: u64 = 0xC5C5_5EED_DA05_0001;

/// Seeded 64-bit checksum over a payload's *real bytes*. `Payload::Bytes`
/// hashes the slice directly; `Payload::Pattern` streams through a
/// fixed-size stack buffer so terabyte-scale synthetic payloads stay
/// allocation-free. Both kinds of payload with identical bytes produce the
/// identical checksum.
pub fn csum64(seed: u64, p: &Payload) -> u64 {
    match p {
        Payload::Bytes(b) => csum64_bytes(seed, b),
        Payload::Pattern {
            seed: pseed,
            skew,
            len,
        } => {
            // Fill the buffer a whole splitmix block (8 bytes) at a
            // time instead of calling `byte_at` per byte — `byte_at`
            // rederives the block for every byte, which made checksum
            // verification the dominant host cost of every simulated
            // bulk write. The byte stream (and therefore the checksum
            // value) is identical to the per-byte path; the equivalence
            // test below pins that at every skew alignment.
            let (pseed, skew, len) = (*pseed, *skew, *len);
            let mut h = seed ^ len;
            let mut buf = [0u8; 256];
            let mut pos = 0u64;
            while pos < len {
                let n = (len - pos).min(256) as usize;
                let mut i = 0usize;
                while i < n {
                    let q = skew + pos + i as u64;
                    let block = daos_splitmix(pseed ^ (q >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let bytes = block.to_le_bytes();
                    let start = (q & 7) as usize;
                    let take = (8 - start).min(n - i);
                    buf[i..i + take].copy_from_slice(&bytes[start..start + take]);
                    i += take;
                }
                h = csum_fold(h, &buf[..n]);
                pos += n as u64;
            }
            daos_splitmix(h)
        }
    }
}

/// Seeded 64-bit checksum over literal bytes (same function as
/// [`csum64`] on a `Payload::Bytes`).
pub fn csum64_bytes(seed: u64, bytes: &[u8]) -> u64 {
    daos_splitmix(csum_fold(seed ^ bytes.len() as u64, bytes))
}

/// Fold a byte chunk into the running hash, 8 bytes at a time. Chunk
/// boundaries must fall on multiples of 8 (except the final chunk) so
/// chunked and one-shot hashing agree; [`csum64`] uses 256-byte chunks.
fn csum_fold(mut h: u64, chunk: &[u8]) -> u64 {
    let mut words = chunk.chunks_exact(8);
    for w in &mut words {
        let v = u64::from_le_bytes(w.try_into().unwrap());
        h = (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(23);
    }
    for &b in words.remainder() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic byte `pos` of the synthetic stream for `seed`.
#[inline]
pub fn pattern_byte(seed: u64, pos: u64) -> u8 {
    let block = daos_splitmix(seed ^ (pos >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (block >> (8 * (pos & 7))) as u8
}

#[inline]
pub(crate) fn daos_splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_slice_matches_materialized_slice() {
        let p = Payload::pattern(42, 1000);
        let full = p.materialize();
        let s = p.slice(100, 50);
        assert_eq!(s.len(), 50);
        assert_eq!(&s.materialize()[..], &full[100..150]);
    }

    #[test]
    fn bytes_slice_matches() {
        let p = Payload::bytes(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(&p.slice(1, 3).materialize()[..], &[2, 3, 4]);
        assert_eq!(p.byte_at(4), 5);
    }

    #[test]
    fn pattern_is_deterministic_and_varied() {
        let a = Payload::pattern(7, 256).materialize();
        let b = Payload::pattern(7, 256).materialize();
        let c = Payload::pattern(8, 256).materialize();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // not all-identical bytes
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 16);
    }

    #[test]
    fn nested_pattern_slices_compose() {
        let p = Payload::pattern(3, 1000);
        let s1 = p.slice(200, 400);
        let s2 = s1.slice(100, 50);
        assert_eq!(&s2.materialize()[..], &p.materialize()[300..350]);
    }

    /// The blockwise pattern fast path in [`csum64`] must produce the
    /// same value as hashing the materialized bytes, at every block
    /// alignment of `skew` and for lengths straddling the internal
    /// buffer boundary.
    #[test]
    fn pattern_csum_matches_bytes_csum_at_all_alignments() {
        for skew in 0..9u64 {
            for len in [0u64, 1, 7, 8, 9, 255, 256, 257, 1000, 4096] {
                let p = Payload::pattern(42, skew + len).slice(skew, len);
                let direct = csum64(CSUM_SEED, &p);
                let via_bytes = csum64_bytes(CSUM_SEED, &p.materialize());
                assert_eq!(direct, via_bytes, "skew {skew} len {len}");
            }
        }
    }
}
