//! # daos-vos — the Versioned Object Store
//!
//! VOS is the per-target storage engine of DAOS: every target keeps a tree
//! of containers → objects → distribution keys (dkey) → attribute keys
//! (akey) → values, where a value is either a *single value* (replaced
//! wholesale per epoch) or a *byte array* maintained as an epoch-versioned
//! extent tree. All updates are tagged with an epoch; reads are served "as
//! of" an epoch, which is how DAOS gives writers isolation without locks —
//! the property behind the paper's observation that shared-file I/O costs
//! the same as file-per-process (§IV).
//!
//! This crate implements the data structures *for real* (bytes in, bytes
//! out, punch semantics, aggregation) while charging simulated time against
//! a [`daos_media::MediaSet`]. Payloads can be literal bytes or a
//! deterministic [`Payload::Pattern`] so benchmarks can push terabytes
//! through the data path without allocating them.

pub mod target;
pub mod tree;

pub use target::{VosConfig, VosCounters, VosTarget};
pub use tree::{Extent, ExtentTree, ReadSeg};

use bytes::Bytes;

/// An update epoch (DAOS uses HLC timestamps; monotonic u64 here).
pub type Epoch = u64;

/// A dkey or akey: arbitrary bytes, ordered.
pub type Key = Vec<u8>;

/// Helper: a key from anything byte-like.
pub fn key(k: impl AsRef<[u8]>) -> Key {
    k.as_ref().to_vec()
}

/// Value payload: literal bytes, or a deterministic pattern standing in for
/// `len` bytes of synthetic benchmark data (no allocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Actual data.
    Bytes(Bytes),
    /// `len` synthetic bytes from a seeded stream starting at `skew`.
    Pattern { seed: u64, skew: u64, len: u64 },
}

impl Payload {
    /// A payload from literal bytes.
    pub fn bytes(data: impl Into<Bytes>) -> Self {
        Payload::Bytes(data.into())
    }

    /// A synthetic payload of `len` bytes.
    pub fn pattern(seed: u64, len: u64) -> Self {
        Payload::Pattern { seed, skew: 0, len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Pattern { len, .. } => *len,
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range `[off, off+len)`; both payload kinds slice consistently
    /// (a pattern's slice yields the same bytes as slicing its
    /// materialisation).
    pub fn slice(&self, off: u64, len: u64) -> Payload {
        debug_assert!(off + len <= self.len(), "slice out of range");
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(off as usize..(off + len) as usize)),
            Payload::Pattern { seed, skew, .. } => Payload::Pattern {
                seed: *seed,
                skew: *skew + off,
                len,
            },
        }
    }

    /// The byte at stream position `i`.
    pub fn byte_at(&self, i: u64) -> u8 {
        match self {
            Payload::Bytes(b) => b[i as usize],
            Payload::Pattern { seed, skew, .. } => pattern_byte(*seed, *skew + i),
        }
    }

    /// Materialise to owned bytes (tests / verification — O(len) memory).
    pub fn materialize(&self) -> Bytes {
        match self {
            Payload::Bytes(b) => b.clone(),
            Payload::Pattern { seed, skew, len } => {
                let mut v = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    v.push(pattern_byte(*seed, *skew + i));
                }
                Bytes::from(v)
            }
        }
    }
}

/// Deterministic byte `pos` of the synthetic stream for `seed`.
#[inline]
pub fn pattern_byte(seed: u64, pos: u64) -> u8 {
    let block = daos_splitmix(seed ^ (pos >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (block >> (8 * (pos & 7))) as u8
}

#[inline]
fn daos_splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_slice_matches_materialized_slice() {
        let p = Payload::pattern(42, 1000);
        let full = p.materialize();
        let s = p.slice(100, 50);
        assert_eq!(s.len(), 50);
        assert_eq!(&s.materialize()[..], &full[100..150]);
    }

    #[test]
    fn bytes_slice_matches() {
        let p = Payload::bytes(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(&p.slice(1, 3).materialize()[..], &[2, 3, 4]);
        assert_eq!(p.byte_at(4), 5);
    }

    #[test]
    fn pattern_is_deterministic_and_varied() {
        let a = Payload::pattern(7, 256).materialize();
        let b = Payload::pattern(7, 256).materialize();
        let c = Payload::pattern(8, 256).materialize();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // not all-identical bytes
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 16);
    }

    #[test]
    fn nested_pattern_slices_compose() {
        let p = Payload::pattern(3, 1000);
        let s1 = p.slice(200, 400);
        let s2 = s1.slice(100, 50);
        assert_eq!(&s2.materialize()[..], &p.materialize()[300..350]);
    }
}
