//! # daos-vos — the Versioned Object Store
//!
//! VOS is the per-target storage engine of DAOS: every target keeps a tree
//! of containers → objects → distribution keys (dkey) → attribute keys
//! (akey) → values, where a value is either a *single value* (replaced
//! wholesale per epoch) or a *byte array* maintained as an epoch-versioned
//! extent tree. All updates are tagged with an epoch; reads are served "as
//! of" an epoch, which is how DAOS gives writers isolation without locks —
//! the property behind the paper's observation that shared-file I/O costs
//! the same as file-per-process (§IV).
//!
//! This crate implements the data structures *for real* (bytes in, bytes
//! out, punch semantics, aggregation) while charging simulated time against
//! a [`daos_media::MediaSet`]. Payloads can be literal bytes or a
//! deterministic [`Payload::Pattern`] so benchmarks can push terabytes
//! through the data path without allocating them.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

pub mod target;
pub mod tree;

pub use target::{ScrubFinding, ScrubReport, VosConfig, VosCounters, VosError, VosTarget};
pub use tree::{CsumViolation, Extent, ExtentTree, ReadSeg};

use bytes::Bytes;
use std::cell::RefCell;

/// An update epoch (DAOS uses HLC timestamps; monotonic u64 here).
pub type Epoch = u64;

/// A dkey or akey: arbitrary bytes, ordered.
pub type Key = Vec<u8>;

/// Helper: a key from anything byte-like.
pub fn key(k: impl AsRef<[u8]>) -> Key {
    k.as_ref().to_vec()
}

/// Value payload: literal bytes, or a deterministic pattern standing in for
/// `len` bytes of synthetic benchmark data (no allocation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Actual data.
    Bytes(Bytes),
    /// `len` synthetic bytes from a seeded stream starting at `skew`.
    Pattern { seed: u64, skew: u64, len: u64 },
}

impl Payload {
    /// A payload from literal bytes.
    pub fn bytes(data: impl Into<Bytes>) -> Self {
        Payload::Bytes(data.into())
    }

    /// A synthetic payload of `len` bytes.
    pub fn pattern(seed: u64, len: u64) -> Self {
        Payload::Pattern { seed, skew: 0, len }
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Bytes(b) => b.len() as u64,
            Payload::Pattern { len, .. } => *len,
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-range `[off, off+len)`; both payload kinds slice consistently
    /// (a pattern's slice yields the same bytes as slicing its
    /// materialisation).
    pub fn slice(&self, off: u64, len: u64) -> Payload {
        debug_assert!(off + len <= self.len(), "slice out of range");
        match self {
            Payload::Bytes(b) => Payload::Bytes(b.slice(off as usize..(off + len) as usize)),
            Payload::Pattern { seed, skew, .. } => Payload::Pattern {
                seed: *seed,
                skew: *skew + off,
                len,
            },
        }
    }

    /// The byte at stream position `i`.
    pub fn byte_at(&self, i: u64) -> u8 {
        match self {
            Payload::Bytes(b) => b[i as usize],
            Payload::Pattern { seed, skew, .. } => pattern_byte(*seed, *skew + i),
        }
    }

    /// Materialise to owned bytes (tests / verification — O(len) memory).
    pub fn materialize(&self) -> Bytes {
        match self {
            Payload::Bytes(b) => b.clone(),
            Payload::Pattern { seed, skew, len } => {
                let mut v = Vec::with_capacity(*len as usize);
                let mut gen = PatternWords::new(*seed, *skew);
                let words = *len / 8;
                for _ in 0..words {
                    v.extend_from_slice(&gen.next_word().to_le_bytes());
                }
                for i in (words * 8)..*len {
                    v.push(pattern_byte(*seed, *skew + i));
                }
                Bytes::from(v)
            }
        }
    }

    /// A deterministically *corrupted* copy of this payload — the
    /// fault-injection primitive behind bit rot and torn frames. The result
    /// has the same length but different bytes, so a checksum computed over
    /// the original no longer matches.
    pub fn corrupted(&self) -> Payload {
        match self {
            Payload::Bytes(b) => {
                if b.is_empty() {
                    return self.clone();
                }
                let mut v = b.to_vec();
                let mid = v.len() / 2;
                v[mid] ^= 0x80;
                Payload::Bytes(Bytes::from(v))
            }
            Payload::Pattern { seed, skew, len } => Payload::Pattern {
                seed: seed ^ 0xB17_2077_DEAD_BEEF,
                skew: *skew,
                len: *len,
            },
        }
    }
}

/// Seed for every stored / on-wire checksum in the stack (a deployment-wide
/// constant in real DAOS; the seed keeps the hash from being forgeable by
/// all-zero data).
pub const CSUM_SEED: u64 = 0xC5C5_5EED_DA05_0001;

/// Seeded 64-bit checksum over a payload's *real bytes*. `Payload::Bytes`
/// hashes the slice directly; `Payload::Pattern` folds the synthetic
/// stream word-by-word straight out of the generator, so terabyte-scale
/// synthetic payloads stay allocation-free and never touch a byte buffer.
/// Both kinds of payload with identical bytes produce the identical
/// checksum.
///
/// The pattern path is a pure function of `(seed, pseed, skew, len)`, and
/// the data path hashes each chunk several times (client wire checksum,
/// server verify, stored extent checksum, fetch verify, reply checksum,
/// scrubber), so results are memoised in a small per-thread direct-mapped
/// cache. Memoising a pure function has no observable effect beyond host
/// time — simulated time and every simulation outcome are unchanged.
pub fn csum64(seed: u64, p: &Payload) -> u64 {
    match p {
        Payload::Bytes(b) => csum64_bytes(seed, b),
        Payload::Pattern {
            seed: pseed,
            skew,
            len,
        } => csum64_pattern(seed, *pseed, *skew, *len),
    }
}

/// Direct-mapped memo cache for [`csum64`] on pattern payloads. Entries
/// below 1 KiB are not cached — the hash is cheaper than the lookup noise.
/// `len == 0` marks an empty slot (zero-length payloads are never cached).
#[derive(Clone, Copy)]
struct CsumCacheEnt {
    seed: u64,
    pseed: u64,
    skew: u64,
    len: u64,
    val: u64,
}

const CSUM_CACHE_SLOTS: usize = 8192;
const CSUM_CACHE_MIN_LEN: u64 = 1024;

thread_local! {
    static CSUM_CACHE: RefCell<Vec<CsumCacheEnt>> = RefCell::new(vec![
        CsumCacheEnt { seed: 0, pseed: 0, skew: 0, len: 0, val: 0 };
        CSUM_CACHE_SLOTS
    ]);
}

fn csum64_pattern(seed: u64, pseed: u64, skew: u64, len: u64) -> u64 {
    if len < CSUM_CACHE_MIN_LEN {
        return csum64_pattern_uncached(seed, pseed, skew, len);
    }
    let slot = (daos_splitmix(seed ^ pseed.rotate_left(17) ^ skew.rotate_left(34) ^ len) as usize)
        & (CSUM_CACHE_SLOTS - 1);
    CSUM_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let ent = &mut cache[slot];
        if ent.len == len && ent.seed == seed && ent.pseed == pseed && ent.skew == skew {
            return ent.val;
        }
        let val = csum64_pattern_uncached(seed, pseed, skew, len);
        *ent = CsumCacheEnt {
            seed,
            pseed,
            skew,
            len,
            val,
        };
        val
    })
}

/// Fold the synthetic stream directly: one splitmix block per 8 bytes,
/// shifted into place when `skew` is unaligned, with no intermediate
/// buffer. The byte stream (and therefore the checksum value) is identical
/// to hashing the materialised bytes; the equivalence test below pins that
/// at every skew alignment.
fn csum64_pattern_uncached(seed: u64, pseed: u64, skew: u64, len: u64) -> u64 {
    let mut h = seed ^ len;
    let mut gen = PatternWords::new(pseed, skew);
    let words = len / 8;
    for _ in 0..words {
        let v = gen.next_word();
        h = (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(23);
    }
    for i in (words * 8)..len {
        h = (h ^ pattern_byte(pseed, skew + i) as u64).wrapping_mul(0x100_0000_01b3);
    }
    daos_splitmix(h)
}

/// Streaming 64-bit-word view of the synthetic pattern starting at stream
/// position `skew`: each call yields the next 8 bytes as a little-endian
/// word. When `skew` is block-unaligned every output word straddles two
/// splitmix blocks; the high block is carried into the next call so the
/// cost stays at one splitmix per word.
struct PatternWords {
    seed: u64,
    /// Block index the next word starts in.
    q: u64,
    /// Bit shift of the stream position within its block (8 * (skew & 7)).
    shift: u32,
    /// `block(q)` for the upcoming word (valid when `shift != 0`).
    carry: u64,
}

impl PatternWords {
    fn new(seed: u64, skew: u64) -> Self {
        let q = skew >> 3;
        let shift = 8 * (skew & 7) as u32;
        let carry = if shift != 0 {
            pattern_block(seed, q)
        } else {
            0
        };
        PatternWords {
            seed,
            q,
            shift,
            carry,
        }
    }

    #[inline]
    fn next_word(&mut self) -> u64 {
        if self.shift == 0 {
            let w = pattern_block(self.seed, self.q);
            self.q += 1;
            w
        } else {
            let hi = pattern_block(self.seed, self.q + 1);
            let w = (self.carry >> self.shift) | (hi << (64 - self.shift));
            self.carry = hi;
            self.q += 1;
            w
        }
    }
}

/// The 8-byte splitmix block at block index `q` of the stream for `seed`.
#[inline]
fn pattern_block(seed: u64, q: u64) -> u64 {
    daos_splitmix(seed ^ q.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Seeded 64-bit checksum over literal bytes (same function as
/// [`csum64`] on a `Payload::Bytes`).
pub fn csum64_bytes(seed: u64, bytes: &[u8]) -> u64 {
    daos_splitmix(csum_fold(seed ^ bytes.len() as u64, bytes))
}

/// Fold a byte chunk into the running hash, 8 bytes at a time. Chunk
/// boundaries must fall on multiples of 8 (except the final chunk) so
/// chunked and one-shot hashing agree; [`csum64`] uses 256-byte chunks.
fn csum_fold(mut h: u64, chunk: &[u8]) -> u64 {
    let mut words = chunk.chunks_exact(8);
    for w in &mut words {
        // INVARIANT: chunks_exact(8) yields exactly-8-byte slices.
        let v = u64::from_le_bytes(w.try_into().unwrap());
        h = (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(23);
    }
    for &b in words.remainder() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic byte `pos` of the synthetic stream for `seed`.
#[inline]
pub fn pattern_byte(seed: u64, pos: u64) -> u8 {
    let block = daos_splitmix(seed ^ (pos >> 3).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (block >> (8 * (pos & 7))) as u8
}

#[inline]
pub(crate) fn daos_splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_slice_matches_materialized_slice() {
        let p = Payload::pattern(42, 1000);
        let full = p.materialize();
        let s = p.slice(100, 50);
        assert_eq!(s.len(), 50);
        assert_eq!(&s.materialize()[..], &full[100..150]);
    }

    #[test]
    fn bytes_slice_matches() {
        let p = Payload::bytes(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(&p.slice(1, 3).materialize()[..], &[2, 3, 4]);
        assert_eq!(p.byte_at(4), 5);
    }

    #[test]
    fn pattern_is_deterministic_and_varied() {
        let a = Payload::pattern(7, 256).materialize();
        let b = Payload::pattern(7, 256).materialize();
        let c = Payload::pattern(8, 256).materialize();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // not all-identical bytes
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 16);
    }

    #[test]
    fn nested_pattern_slices_compose() {
        let p = Payload::pattern(3, 1000);
        let s1 = p.slice(200, 400);
        let s2 = s1.slice(100, 50);
        assert_eq!(&s2.materialize()[..], &p.materialize()[300..350]);
    }

    /// The blockwise pattern fast path in [`csum64`] must produce the
    /// same value as hashing the materialized bytes, at every block
    /// alignment of `skew` and for lengths straddling the internal
    /// buffer boundary.
    #[test]
    fn pattern_csum_matches_bytes_csum_at_all_alignments() {
        for skew in 0..9u64 {
            for len in [0u64, 1, 7, 8, 9, 255, 256, 257, 1000, 4096] {
                let p = Payload::pattern(42, skew + len).slice(skew, len);
                let direct = csum64(CSUM_SEED, &p);
                let via_bytes = csum64_bytes(CSUM_SEED, &p.materialize());
                assert_eq!(direct, via_bytes, "skew {skew} len {len}");
            }
        }
    }
}
