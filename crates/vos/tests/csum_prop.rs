//! Property test for the integrity layer: no interleaving of writes,
//! punches and aggregation may ever make checksum verification fail, and
//! the visible bytes always match a flat byte-array model. Mismatches must
//! come only from injected rot — never from the bookkeeping itself.

use daos_vos::tree::ExtentTree;
use daos_vos::{Epoch, Payload};
use proptest::prelude::*;

const ARENA: usize = 2048; // > max offset (1500) + max len (400)

#[derive(Clone, Debug)]
enum Op {
    Write {
        offset: u64,
        len: u64,
        seed: u64,
        raw: bool,
    },
    Punch {
        offset: u64,
        len: u64,
    },
    Aggregate,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_ops_never_fail_verification(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..1500, 1u64..300, any::<u64>(), any::<bool>())
                    .prop_map(|(offset, len, seed, raw)| Op::Write { offset, len, seed, raw }),
                (0u64..1500, 1u64..400).prop_map(|(offset, len)| Op::Punch { offset, len }),
                Just(Op::Aggregate),
            ],
            1..40,
        ),
    ) {
        let mut t = ExtentTree::new();
        let mut model = vec![0u8; ARENA];
        let mut written = vec![false; ARENA];
        let mut epoch: Epoch = 0;
        for op in &ops {
            epoch += 1;
            match *op {
                Op::Write { offset, len, seed, raw } => {
                    // `raw` picks the heap-backed payload so both hashing
                    // paths (one-shot bytes, chunked pattern) are exercised
                    let p = if raw {
                        Payload::bytes(Payload::pattern(seed, len).materialize().to_vec())
                    } else {
                        Payload::pattern(seed, len)
                    };
                    let bytes = p.materialize().to_vec();
                    t.insert(offset, epoch, p);
                    for i in 0..len as usize {
                        model[offset as usize + i] = bytes[i];
                        written[offset as usize + i] = true;
                    }
                }
                Op::Punch { offset, len } => {
                    t.punch(offset, len, epoch);
                    for w in &mut written[offset as usize..(offset + len) as usize] {
                        *w = false;
                    }
                }
                Op::Aggregate => {
                    // reclaim everything shadowed as of the current epoch;
                    // visibility at the latest epoch must not change
                    t.aggregate(epoch);
                }
            }
            // every intermediate state verifies clean over its whole span
            let span = t.span(Epoch::MAX).max(1);
            prop_assert!(t.verify_range(0, span, Epoch::MAX).is_ok());
        }
        // the surviving bytes still match the flat model exactly
        let span = t.span(Epoch::MAX).max(1);
        let mut got = vec![0u8; ARENA];
        let mut got_mask = vec![false; ARENA];
        for s in t.read(0, span, Epoch::MAX) {
            if let Some(d) = &s.data {
                let m = d.materialize();
                for i in 0..s.len as usize {
                    got[s.offset as usize + i] = m[i];
                    got_mask[s.offset as usize + i] = true;
                }
            }
        }
        for i in 0..ARENA {
            prop_assert!(got_mask[i] == written[i],
                "visibility diverged from model at byte {}", i);
            if written[i] {
                prop_assert!(got[i] == model[i],
                    "content diverged from model at byte {}", i);
            }
        }
    }
}
