//! # daos-mpi — a simulated MPI layer over the fabric
//!
//! Enough of MPI for IOR and a ROMIO-style MPI-IO implementation: ranks
//! pinned to fabric nodes, matched point-to-point messaging (eager
//! protocol), and tree-based collectives (barrier, bcast, gather,
//! allgather, allreduce) whose cost is real fabric traffic.
//!
//! Collectives are SPMD: every rank of the communicator must call the same
//! collective in the same order (tags are derived from a per-rank
//! collective sequence number, so mismatched calls deadlock loudly in the
//! simulator rather than corrupting state — just like real MPI).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use daos_fabric::{Fabric, NodeId};
use daos_sim::{Mailbox, Sim};
use daos_vos::Payload;

/// Rank index within the world.
pub type Rank = usize;

/// One matched message.
#[derive(Clone, Debug)]
pub struct MpiMsg {
    pub from: Rank,
    pub tag: u64,
    /// Small out-of-band metadata (e.g. a file offset/length pair) that
    /// rides the header — what real MPI would pack into the datatype.
    pub meta: (u64, u64),
    pub data: Payload,
}

struct RankState {
    inbox: Mailbox<MpiMsg>,
    /// Arrived but not yet matched by a recv.
    unexpected: RefCell<VecDeque<MpiMsg>>,
    coll_seq: Cell<u64>,
}

/// The MPI world: ranks pinned to fabric nodes.
pub struct MpiWorld {
    fabric: Rc<Fabric>,
    rank_nodes: Vec<NodeId>,
    ranks: Vec<RankState>,
    /// Header bytes per message on the wire.
    header: u64,
}

impl MpiWorld {
    /// Create a world with rank `r` on fabric node `rank_nodes[r]`.
    pub fn new(fabric: Rc<Fabric>, rank_nodes: Vec<NodeId>) -> Rc<MpiWorld> {
        let ranks = rank_nodes
            .iter()
            .map(|_| RankState {
                inbox: Mailbox::new(),
                unexpected: RefCell::new(VecDeque::new()),
                coll_seq: Cell::new(0),
            })
            .collect();
        Rc::new(MpiWorld {
            fabric,
            rank_nodes,
            ranks,
            header: 64,
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.rank_nodes.len()
    }

    /// Handle for rank `r`.
    pub fn rank(self: &Rc<Self>, r: Rank) -> MpiRank {
        assert!(r < self.size());
        MpiRank {
            world: Rc::clone(self),
            rank: r,
        }
    }

    /// The fabric node hosting rank `r`.
    pub fn node_of(&self, r: Rank) -> NodeId {
        self.rank_nodes[r]
    }
}

/// A process in the world (hold one per simulated rank task).
#[derive(Clone)]
pub struct MpiRank {
    world: Rc<MpiWorld>,
    rank: Rank,
}

impl MpiRank {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }
    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }
    /// The world.
    pub fn world(&self) -> &Rc<MpiWorld> {
        &self.world
    }

    /// Blocking send (eager): completes when the message is on the remote
    /// node.
    pub async fn send(&self, sim: &Sim, to: Rank, tag: u64, data: Payload) {
        self.send_meta(sim, to, tag, (0, 0), data).await
    }

    /// Send with out-of-band metadata (offset/length pairs and the like).
    pub async fn send_meta(&self, sim: &Sim, to: Rank, tag: u64, meta: (u64, u64), data: Payload) {
        let w = &self.world;
        w.fabric
            .message(
                sim,
                w.rank_nodes[self.rank],
                w.rank_nodes[to],
                w.header + data.len(),
            )
            .await;
        w.ranks[to].inbox.send(MpiMsg {
            from: self.rank,
            tag,
            meta,
            data,
        });
    }

    /// Blocking receive matching `(from, tag)`.
    pub async fn recv(&self, sim: &Sim, from: Rank, tag: u64) -> Payload {
        self.recv_msg(sim, from, tag).await.data
    }

    /// Receive the full message (metadata included).
    pub async fn recv_msg(&self, _sim: &Sim, from: Rank, tag: u64) -> MpiMsg {
        let st = &self.world.ranks[self.rank];
        // check earlier arrivals first
        {
            let mut uq = st.unexpected.borrow_mut();
            if let Some(pos) = uq.iter().position(|m| m.from == from && m.tag == tag) {
                return uq.remove(pos).unwrap();
            }
        }
        loop {
            let msg = st
                .inbox
                .recv()
                .await
                .expect("MPI world torn down while receiving");
            if msg.from == from && msg.tag == tag {
                return msg;
            }
            st.unexpected.borrow_mut().push_back(msg);
        }
    }

    fn next_coll_tag(&self) -> u64 {
        let st = &self.world.ranks[self.rank];
        let seq = st.coll_seq.get();
        st.coll_seq.set(seq + 1);
        // high bit namespace for collectives
        (1 << 63) | seq
    }

    fn tree_parent(&self, vrank: usize) -> Option<usize> {
        if vrank == 0 {
            None
        } else {
            Some((vrank - 1) / 2)
        }
    }
    fn tree_children(&self, vrank: usize) -> Vec<usize> {
        let n = self.size();
        [2 * vrank + 1, 2 * vrank + 2]
            .into_iter()
            .filter(|&c| c < n)
            .collect()
    }

    /// Barrier over the whole world (binary tree up + down).
    pub async fn barrier(&self, sim: &Sim) {
        let tag = self.next_coll_tag();
        let me = self.rank;
        for c in self.tree_children(me) {
            self.recv(sim, c, tag).await;
        }
        if let Some(p) = self.tree_parent(me) {
            self.send(sim, p, tag, Payload::bytes(Vec::new())).await;
            self.recv(sim, p, tag + (1 << 62)).await;
        }
        for c in self.tree_children(me) {
            self.send(sim, c, tag + (1 << 62), Payload::bytes(Vec::new()))
                .await;
        }
    }

    /// Broadcast from rank 0: rank 0 passes `Some(data)`, everyone gets it.
    pub async fn bcast(&self, sim: &Sim, data: Option<Payload>) -> Payload {
        let tag = self.next_coll_tag();
        let me = self.rank;
        let payload = if me == 0 {
            data.expect("root must supply bcast data")
        } else {
            let p = self.tree_parent(me).unwrap();
            self.recv(sim, p, tag).await
        };
        for c in self.tree_children(me) {
            self.send(sim, c, tag, payload.clone()).await;
        }
        payload
    }

    /// Gather fixed-size byte blobs to rank 0 (tree combine); rank 0 gets
    /// all contributions ordered by rank, others get an empty vec.
    pub async fn gather(&self, sim: &Sim, mine: Vec<u8>) -> Vec<Vec<u8>> {
        let tag = self.next_coll_tag();
        let me = self.rank;
        let n = self.size();
        // each node combines its subtree into (rank, blob) pairs
        let mut acc: Vec<(usize, Vec<u8>)> = vec![(me, mine)];
        for c in self.tree_children(me) {
            let blob = self.recv(sim, c, tag).await.materialize();
            acc.extend(decode_pairs(&blob));
        }
        if let Some(p) = self.tree_parent(me) {
            self.send(sim, p, tag, Payload::bytes(encode_pairs(&acc)))
                .await;
            return Vec::new();
        }
        let mut out = vec![Vec::new(); n];
        for (r, b) in acc {
            out[r] = b;
        }
        out
    }

    /// Allgather fixed-size blobs: gather to 0 then bcast.
    pub async fn allgather(&self, sim: &Sim, mine: Vec<u8>) -> Vec<Vec<u8>> {
        let gathered = self.gather(sim, mine).await;
        let packed = if self.rank == 0 {
            let pairs: Vec<(usize, Vec<u8>)> = gathered.iter().cloned().enumerate().collect();
            Some(Payload::bytes(encode_pairs(&pairs)))
        } else {
            None
        };
        let all = self.bcast(sim, packed).await.materialize();
        let mut out = vec![Vec::new(); self.size()];
        for (r, b) in decode_pairs(&all) {
            out[r] = b;
        }
        out
    }

    /// Allreduce on a `u64` with max / min / sum.
    pub async fn allreduce_u64(&self, sim: &Sim, mine: u64, op: ReduceOp) -> u64 {
        let all = self.allgather(sim, mine.to_le_bytes().to_vec()).await;
        let vals = all
            .iter()
            .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()));
        match op {
            ReduceOp::Max => vals.max().unwrap(),
            ReduceOp::Min => vals.min().unwrap(),
            ReduceOp::Sum => vals.sum(),
        }
    }
}

/// Reduction operator for [`MpiRank::allreduce_u64`].
#[derive(Clone, Copy, Debug)]
pub enum ReduceOp {
    Max,
    Min,
    Sum,
}

fn encode_pairs(pairs: &[(usize, Vec<u8>)]) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (r, b) in pairs {
        v.extend_from_slice(&(*r as u64).to_le_bytes());
        v.extend_from_slice(&(b.len() as u64).to_le_bytes());
        v.extend_from_slice(b);
    }
    v
}

fn decode_pairs(b: &[u8]) -> Vec<(usize, Vec<u8>)> {
    let rd = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
    let n = rd(0) as usize;
    let mut out = Vec::with_capacity(n);
    let mut i = 8;
    for _ in 0..n {
        let r = rd(i) as usize;
        let len = rd(i + 8) as usize;
        out.push((r, b[i + 16..i + 16 + len].to_vec()));
        i += 16 + len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_fabric::FabricConfig;
    use daos_sim::executor::join_all;
    use daos_sim::SimTime;

    fn world(sim: &Sim, n: usize) -> Rc<MpiWorld> {
        let fabric = Fabric::new(n, FabricConfig::default());
        let _ = sim;
        MpiWorld::new(fabric, (0..n).collect())
    }

    /// Run the same SPMD closure on every rank concurrently.
    fn spmd<T: 'static, F, Fut>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Sim, MpiRank) -> Fut + 'static,
        Fut: std::future::Future<Output = T> + 'static,
    {
        let mut sim = Sim::new(42);
        sim.block_on(move |sim| async move {
            let w = world(&sim, n);
            let futs: Vec<_> = (0..n).map(|r| f(sim.clone(), w.rank(r))).collect();
            join_all(&sim, futs).await
        })
    }

    #[test]
    fn send_recv_matches_by_tag() {
        let out = spmd(2, |sim, rank| async move {
            if rank.rank() == 0 {
                // send tags out of order; receiver matches correctly
                rank.send(&sim, 1, 7, Payload::bytes(vec![7])).await;
                rank.send(&sim, 1, 5, Payload::bytes(vec![5])).await;
                0
            } else {
                let five = rank.recv(&sim, 0, 5).await;
                let seven = rank.recv(&sim, 0, 7).await;
                (five.materialize()[0] as u64) * 10 + seven.materialize()[0] as u64
            }
        });
        assert_eq!(out[1], 57);
    }

    #[test]
    fn barrier_synchronises() {
        let times = spmd(8, |sim, rank| async move {
            // stagger arrival
            sim.sleep_us(rank.rank() as u64 * 50).await;
            rank.barrier(&sim).await;
            sim.now()
        });
        let latest_arrival = SimTime::from_us(7 * 50);
        for t in &times {
            assert!(*t >= latest_arrival, "barrier exited early: {t}");
        }
    }

    #[test]
    fn bcast_delivers_everywhere() {
        let out = spmd(7, |sim, rank| async move {
            let data = (rank.rank() == 0).then(|| Payload::bytes(vec![9, 8, 7]));
            rank.bcast(&sim, data).await.materialize().to_vec()
        });
        for o in out {
            assert_eq!(o, vec![9, 8, 7]);
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let out = spmd(6, |sim, rank| async move {
            let mine = vec![rank.rank() as u8; 3];
            rank.allgather(&sim, mine).await
        });
        for per_rank in out {
            assert_eq!(per_rank.len(), 6);
            for (r, blob) in per_rank.iter().enumerate() {
                assert_eq!(blob, &vec![r as u8; 3]);
            }
        }
    }

    #[test]
    fn allreduce_ops() {
        let maxes = spmd(5, |sim, rank| async move {
            rank.allreduce_u64(&sim, rank.rank() as u64 * 10, ReduceOp::Max)
                .await
        });
        assert!(maxes.iter().all(|&m| m == 40));
        let sums = spmd(5, |sim, rank| async move {
            rank.allreduce_u64(&sim, rank.rank() as u64, ReduceOp::Sum)
                .await
        });
        assert!(sums.iter().all(|&s| s == 10));
    }

    #[test]
    fn collectives_compose_in_sequence() {
        let out = spmd(4, |sim, rank| async move {
            rank.barrier(&sim).await;
            let v = rank
                .allreduce_u64(&sim, rank.rank() as u64 + 1, ReduceOp::Sum)
                .await;
            rank.barrier(&sim).await;
            let w = rank.allreduce_u64(&sim, v, ReduceOp::Max).await;
            (v, w)
        });
        for (v, w) in out {
            assert_eq!(v, 10);
            assert_eq!(w, 10);
        }
    }

    #[test]
    fn pair_codec_round_trips() {
        let pairs = vec![(0usize, vec![1, 2]), (3, vec![]), (7, vec![9; 100])];
        assert_eq!(decode_pairs(&encode_pairs(&pairs)), pairs);
    }
}
