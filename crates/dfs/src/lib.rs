//! # daos-dfs — the DAOS File System (`libdfs`)
//!
//! DFS encapsulates a POSIX namespace inside a DAOS container:
//!
//! * a *superblock* object records filesystem attributes (magic, default
//!   chunk size, default object classes);
//! * every directory is a KV object whose dkeys are entry names and whose
//!   values are serialised [`DirEntry`] records pointing at child objects;
//! * every file is a byte-array object chunked at the file's chunk size.
//!
//! The API mirrors `libdfs`: `mount`, `lookup`, `mkdir`, `open`
//! (create/read/write), `read`/`write` at offsets, `get_size`, `readdir`,
//! `unlink`, `rename`. Each path component costs one KV lookup RPC, exactly
//! like the real client. This is the backend the IOR `DFS` driver and the
//! DFuse daemon sit on.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::rc::Rc;

use daos_core::{ContainerHandle, DaosError, PoolHandle};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::Sim;
use daos_vos::tree::ReadSeg;
use daos_vos::Payload;

/// Default chunk size (DFS default: 1 MiB).
pub const DEFAULT_CHUNK: u64 = 1 << 20;

/// Reserved object ids.
const OID_SUPERBLOCK: ObjectId = ObjectId { hi: 0, lo: 1 };
const OID_ROOT: ObjectId = ObjectId { hi: 0, lo: 2 };

/// Kind of a namespace entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryKind {
    Dir,
    File,
    Symlink,
}

/// A directory entry: what a name maps to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirEntry {
    pub kind: EntryKind,
    pub oid: ObjectId,
    pub chunk_size: u64,
    pub class: ObjectClass,
    /// Link target path (symlinks only).
    pub link_target: Option<String>,
}

impl DirEntry {
    /// Serialise (directory value format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(64);
        v.push(match self.kind {
            EntryKind::Dir => 1,
            EntryKind::File => 2,
            EntryKind::Symlink => 3,
        });
        v.extend_from_slice(&self.oid.hi.to_le_bytes());
        v.extend_from_slice(&self.oid.lo.to_le_bytes());
        v.extend_from_slice(&self.chunk_size.to_le_bytes());
        let name = self.class.name();
        v.push(name.len() as u8);
        v.extend_from_slice(name.as_bytes());
        if let Some(t) = &self.link_target {
            v.extend_from_slice(&(t.len() as u16).to_le_bytes());
            v.extend_from_slice(t.as_bytes());
        }
        v
    }

    /// Deserialise; `None` on corruption.
    pub fn from_bytes(b: &[u8]) -> Option<DirEntry> {
        if b.len() < 26 {
            return None;
        }
        let kind = match b[0] {
            1 => EntryKind::Dir,
            2 => EntryKind::File,
            3 => EntryKind::Symlink,
            _ => return None,
        };
        // INVARIANT: the 8-byte slice always converts to [u8; 8]; the length
        // guard above ensures the fixed header region is present.
        let rd = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().ok().unwrap());
        let oid = ObjectId::new(rd(1), rd(9));
        let chunk_size = rd(17);
        let n = b[25] as usize;
        if b.len() < 26 + n {
            return None;
        }
        let class = ObjectClass::parse(std::str::from_utf8(&b[26..26 + n]).ok()?)?;
        let link_target = if kind == EntryKind::Symlink {
            let at = 26 + n;
            if b.len() < at + 2 {
                return None;
            }
            let tl = u16::from_le_bytes(b[at..at + 2].try_into().ok()?) as usize;
            if b.len() < at + 2 + tl {
                return None;
            }
            Some(String::from_utf8(b[at + 2..at + 2 + tl].to_vec()).ok()?)
        } else {
            None
        };
        Some(DirEntry {
            kind,
            oid,
            chunk_size,
            class,
            link_target,
        })
    }
}

/// Mount-time configuration.
#[derive(Clone, Copy, Debug)]
pub struct DfsConfig {
    /// Default chunk size for new files.
    pub chunk_size: u64,
    /// Object class for directories.
    pub dir_class: ObjectClass,
    /// Default object class for files.
    pub file_class: ObjectClass,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            chunk_size: DEFAULT_CHUNK,
            dir_class: ObjectClass::S1,
            file_class: ObjectClass::SX,
        }
    }
}

/// A mounted DFS namespace.
pub struct Dfs {
    cont: ContainerHandle,
    cfg: DfsConfig,
    /// Client-local object-id allocator (hi word carries the client tag so
    /// concurrent clients never collide; real DFS reserves oid ranges).
    next_oid: Cell<u64>,
    oid_salt: u64,
}

/// An open file.
#[derive(Clone)]
pub struct DfsFile {
    array: daos_core::ArrayHandle,
    entry: DirEntry,
}

impl DfsFile {
    /// The file's chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.entry.chunk_size
    }
    /// The file's object class.
    pub fn class(&self) -> ObjectClass {
        self.entry.class
    }
    /// The file's object id.
    pub fn oid(&self) -> ObjectId {
        self.entry.oid
    }

    /// Write `data` at `offset`.
    pub async fn write(&self, sim: &Sim, offset: u64, data: Payload) -> Result<(), DaosError> {
        self.array.write(sim, offset, data).await
    }

    /// Read up to `len` bytes at `offset` (holes = zeroes, as segments).
    pub async fn read(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        self.array.read(sim, offset, len).await
    }

    /// Read and materialise (test helper).
    pub async fn read_bytes(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<u8>, DaosError> {
        self.array.read_bytes(sim, offset, len).await
    }

    /// Current file size.
    pub async fn size(&self, sim: &Sim) -> Result<u64, DaosError> {
        self.array.size(sim).await
    }
}

/// File stat record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    pub kind: EntryKind,
    pub size: u64,
}

impl Dfs {
    /// Mount the filesystem in container `cont_id`, creating the container
    /// and formatting the superblock if needed (`dfs_mount` + `dfs_format`).
    ///
    /// `client_tag` must be unique per mounting client (it salts the oid
    /// allocator).
    pub async fn mount(
        sim: &Sim,
        pool: &PoolHandle,
        cont_id: u64,
        cfg: DfsConfig,
        client_tag: u64,
    ) -> Result<Rc<Dfs>, DaosError> {
        let cont = pool.open_or_create(sim, cont_id).await?;
        let dfs = Rc::new(Dfs {
            cont,
            cfg,
            next_oid: Cell::new(1),
            oid_salt: client_tag,
        });
        // read-or-write the superblock (magic + defaults)
        let sb = dfs.cont.object(OID_SUPERBLOCK, ObjectClass::S1).kv();
        if sb.get(sim, "magic").await?.is_none() {
            sb.put(sim, "magic", Payload::bytes(&b"DFS1"[..])).await?;
            sb.put(
                sim,
                "chunk_size",
                Payload::bytes(cfg.chunk_size.to_le_bytes().to_vec()),
            )
            .await?;
        }
        Ok(dfs)
    }

    /// The mount's defaults.
    pub fn config(&self) -> &DfsConfig {
        &self.cfg
    }
    /// The container backing the mount.
    pub fn container(&self) -> &ContainerHandle {
        &self.cont
    }

    fn alloc_oid(&self) -> ObjectId {
        let seq = self.next_oid.get();
        self.next_oid.set(seq + 1);
        ObjectId::new(
            self.oid_salt.wrapping_add(0x100),
            seq.wrapping_mul(2) + 0x10,
        )
    }

    fn dir_kv(&self, oid: ObjectId) -> daos_core::KvHandle {
        self.cont.object(oid, self.cfg.dir_class).kv()
    }

    fn split_path(path: &str) -> Vec<&str> {
        path.split('/').filter(|c| !c.is_empty()).collect()
    }

    /// Resolve the parent directory of `path`; returns `(parent_oid, name)`.
    async fn resolve_parent<'p>(
        &self,
        sim: &Sim,
        path: &'p str,
    ) -> Result<(ObjectId, &'p str), DaosError> {
        let comps = Self::split_path(path);
        let Some((name, dirs)) = comps.split_last() else {
            return Err(DaosError::Other("empty path".into()));
        };
        let mut cur = OID_ROOT;
        for comp in dirs {
            let kv = self.dir_kv(cur);
            let Some(v) = kv.get(sim, comp).await? else {
                return Err(DaosError::Other(format!("no such directory: {comp}")));
            };
            let ent = DirEntry::from_bytes(&v.materialize())
                .ok_or_else(|| DaosError::CorruptMetadata("corrupt dirent".into()))?;
            if ent.kind != EntryKind::Dir {
                return Err(DaosError::Other(format!("not a directory: {comp}")));
            }
            cur = ent.oid;
        }
        Ok((cur, name))
    }

    /// Look up a full path to its entry (root yields a synthetic dir entry).
    pub async fn lookup(&self, sim: &Sim, path: &str) -> Result<Option<DirEntry>, DaosError> {
        if Self::split_path(path).is_empty() {
            return Ok(Some(DirEntry {
                kind: EntryKind::Dir,
                oid: OID_ROOT,
                chunk_size: self.cfg.chunk_size,
                class: self.cfg.dir_class,
                link_target: None,
            }));
        }
        let (parent, name) = self.resolve_parent(sim, path).await?;
        let v = self.dir_kv(parent).get(sim, name).await?;
        match v.filter(|v| !v.is_empty()) {
            None => Ok(None),
            // a present-but-undecodable entry is damage, not absence
            Some(v) => DirEntry::from_bytes(&v.materialize())
                .map(Some)
                .ok_or_else(|| DaosError::CorruptMetadata("corrupt dirent".into())),
        }
    }

    /// Create a directory.
    pub async fn mkdir(&self, sim: &Sim, path: &str) -> Result<(), DaosError> {
        let (parent, name) = self.resolve_parent(sim, path).await?;
        let kv = self.dir_kv(parent);
        if kv.get(sim, name).await?.filter(|v| !v.is_empty()).is_some() {
            return Err(DaosError::Other(format!("exists: {path}")));
        }
        let ent = DirEntry {
            kind: EntryKind::Dir,
            oid: self.alloc_oid(),
            chunk_size: self.cfg.chunk_size,
            class: self.cfg.dir_class,
            link_target: None,
        };
        kv.put(sim, name, Payload::bytes(ent.to_bytes())).await
    }

    /// Create a symbolic link at `path` pointing to `target`.
    pub async fn symlink(&self, sim: &Sim, path: &str, target: &str) -> Result<(), DaosError> {
        let (parent, name) = self.resolve_parent(sim, path).await?;
        let kv = self.dir_kv(parent);
        if kv.get(sim, name).await?.filter(|v| !v.is_empty()).is_some() {
            return Err(DaosError::Other(format!("exists: {path}")));
        }
        let ent = DirEntry {
            kind: EntryKind::Symlink,
            oid: self.alloc_oid(),
            chunk_size: 0,
            class: ObjectClass::S1,
            link_target: Some(target.to_string()),
        };
        kv.put(sim, name, Payload::bytes(ent.to_bytes())).await
    }

    /// Resolve a path following symlinks (depth-capped like the kernel).
    pub async fn lookup_follow(
        &self,
        sim: &Sim,
        path: &str,
    ) -> Result<Option<DirEntry>, DaosError> {
        let mut cur = path.to_string();
        for _ in 0..8 {
            match self.lookup(sim, &cur).await? {
                Some(ent) if ent.kind == EntryKind::Symlink => {
                    cur = ent
                        .link_target
                        .clone()
                        .ok_or_else(|| DaosError::Other("dangling symlink".into()))?;
                }
                other => return Ok(other),
            }
        }
        Err(DaosError::Other(format!("too many symlink levels: {path}")))
    }

    /// Truncate a file to `size` (only shrinking punches data; growing is a
    /// no-op on a sparse object store).
    pub async fn truncate(&self, sim: &Sim, path: &str, size: u64) -> Result<(), DaosError> {
        let f = self.open(sim, path).await?;
        let cur = f.size(sim).await?;
        if size < cur {
            f.array.punch(sim, size, cur - size).await?;
        }
        Ok(())
    }

    /// Create (or re-open) a file with an explicit class/chunk size.
    pub async fn create(
        &self,
        sim: &Sim,
        path: &str,
        class: ObjectClass,
        chunk_size: u64,
    ) -> Result<DfsFile, DaosError> {
        let (parent, name) = self.resolve_parent(sim, path).await?;
        let kv = self.dir_kv(parent);
        // open-or-create semantics: IOR reuses files across phases, and
        // shared-file mode has every rank "creating" the same file
        if let Some(v) = kv.get(sim, name).await?.filter(|v| !v.is_empty()) {
            let ent = DirEntry::from_bytes(&v.materialize())
                .ok_or_else(|| DaosError::CorruptMetadata("corrupt dirent".into()))?;
            if ent.kind == EntryKind::File {
                return Ok(self.file_from(ent));
            }
            return Err(DaosError::Other(format!("is a directory: {path}")));
        }
        let ent = DirEntry {
            kind: EntryKind::File,
            oid: self.alloc_oid(),
            chunk_size,
            class,
            link_target: None,
        };
        kv.put(sim, name, Payload::bytes(ent.to_bytes())).await?;
        Ok(self.file_from(ent))
    }

    /// Create with the mount defaults.
    pub async fn create_default(&self, sim: &Sim, path: &str) -> Result<DfsFile, DaosError> {
        self.create(sim, path, self.cfg.file_class, self.cfg.chunk_size)
            .await
    }

    /// Open an existing file (follows symlinks).
    pub async fn open(&self, sim: &Sim, path: &str) -> Result<DfsFile, DaosError> {
        match self.lookup_follow(sim, path).await? {
            Some(ent) if ent.kind == EntryKind::File => Ok(self.file_from(ent)),
            Some(_) => Err(DaosError::Other(format!("is a directory: {path}"))),
            None => Err(DaosError::Other(format!("no such file: {path}"))),
        }
    }

    fn file_from(&self, ent: DirEntry) -> DfsFile {
        DfsFile {
            array: self.cont.object(ent.oid, ent.class).array(ent.chunk_size),
            entry: ent,
        }
    }

    /// Stat a path.
    pub async fn stat(&self, sim: &Sim, path: &str) -> Result<Stat, DaosError> {
        match self.lookup(sim, path).await? {
            Some(ent) if ent.kind == EntryKind::File => {
                let size = self.file_from(ent).size(sim).await?;
                Ok(Stat {
                    kind: EntryKind::File,
                    size,
                })
            }
            Some(_) => Ok(Stat {
                kind: EntryKind::Dir,
                size: 0,
            }),
            None => Err(DaosError::Other(format!("no such path: {path}"))),
        }
    }

    /// List entry names in a directory.
    pub async fn readdir(&self, sim: &Sim, path: &str) -> Result<Vec<String>, DaosError> {
        let ent = self
            .lookup(sim, path)
            .await?
            .ok_or_else(|| DaosError::Other(format!("no such dir: {path}")))?;
        if ent.kind != EntryKind::Dir {
            return Err(DaosError::Other(format!("not a directory: {path}")));
        }
        let kv = self.dir_kv(ent.oid);
        let keys = kv.list(sim).await?;
        // filter tombstones (unlinked entries)
        let mut names = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(v) = kv.get(sim, &k).await? {
                if !v.is_empty() {
                    names.push(String::from_utf8_lossy(&k).into_owned());
                }
            }
        }
        Ok(names)
    }

    /// Remove a file (dirent tombstone + object punch).
    pub async fn unlink(&self, sim: &Sim, path: &str) -> Result<(), DaosError> {
        let (parent, name) = self.resolve_parent(sim, path).await?;
        let kv = self.dir_kv(parent);
        let Some(v) = kv.get(sim, name).await?.filter(|v| !v.is_empty()) else {
            return Err(DaosError::Other(format!("no such file: {path}")));
        };
        let ent = DirEntry::from_bytes(&v.materialize())
            .ok_or_else(|| DaosError::CorruptMetadata("corrupt dirent".into()))?;
        kv.put(sim, name, Payload::bytes(Vec::new())).await?;
        self.cont.object(ent.oid, ent.class).punch(sim).await?;
        Ok(())
    }

    /// Rename a file or directory within the namespace.
    pub async fn rename(&self, sim: &Sim, from: &str, to: &str) -> Result<(), DaosError> {
        let (fp, fname) = self.resolve_parent(sim, from).await?;
        let fkv = self.dir_kv(fp);
        let Some(v) = fkv.get(sim, fname).await?.filter(|v| !v.is_empty()) else {
            return Err(DaosError::Other(format!("no such path: {from}")));
        };
        let (tp, tname) = self.resolve_parent(sim, to).await?;
        self.dir_kv(tp).put(sim, tname, v).await?;
        fkv.put(sim, fname, Payload::bytes(Vec::new())).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirent_round_trip() {
        for class in [ObjectClass::S1, ObjectClass::SX, ObjectClass::RP_2GX] {
            let e = DirEntry {
                kind: EntryKind::File,
                oid: ObjectId::new(0xDEAD, 0xBEEF),
                chunk_size: 1 << 20,
                class,
                link_target: None,
            };
            assert_eq!(DirEntry::from_bytes(&e.to_bytes()), Some(e));
        }
        let d = DirEntry {
            kind: EntryKind::Dir,
            oid: ObjectId::new(1, 2),
            chunk_size: 4096,
            class: ObjectClass::S1,
            link_target: None,
        };
        let l = DirEntry {
            kind: EntryKind::Symlink,
            oid: ObjectId::new(3, 4),
            chunk_size: 0,
            class: ObjectClass::S1,
            link_target: Some("/a/b".to_string()),
        };
        assert_eq!(DirEntry::from_bytes(&l.to_bytes()), Some(l));
        assert_eq!(DirEntry::from_bytes(&d.to_bytes()), Some(d));
        assert_eq!(DirEntry::from_bytes(&[]), None);
        assert_eq!(DirEntry::from_bytes(&[7u8; 40]), None);
    }

    #[test]
    fn split_path_handles_slashes() {
        assert_eq!(Dfs::split_path("/a/b/c"), vec!["a", "b", "c"]);
        assert_eq!(Dfs::split_path("a//b/"), vec!["a", "b"]);
        assert!(Dfs::split_path("/").is_empty());
        assert!(Dfs::split_path("").is_empty());
    }
}
