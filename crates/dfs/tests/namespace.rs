//! DFS namespace integration tests over a live simulated cluster: nested
//! directories, rename, unlink, truncate, symlinks, readdir and size
//! tracking, plus cross-client visibility (two mounts of one container).

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_dfs::{Dfs, DfsConfig, EntryKind};
use daos_placement::ObjectClass;
use daos_sim::units::{KIB, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

async fn fs(sim: &Sim) -> Rc<Dfs> {
    let cluster = Cluster::build(sim, ClusterConfig::tiny(1));
    let client = DaosClient::new(cluster, 0);
    let pool = client.connect(sim).await.unwrap();
    Dfs::mount(sim, &pool, 1, DfsConfig::default(), 3)
        .await
        .unwrap()
}

#[test]
fn nested_directories_and_readdir() {
    let mut sim = Sim::new(0xD51);
    sim.block_on(|sim| async move {
        let fs = fs(&sim).await;
        fs.mkdir(&sim, "/a").await.unwrap();
        fs.mkdir(&sim, "/a/b").await.unwrap();
        fs.mkdir(&sim, "/a/b/c").await.unwrap();
        fs.create(&sim, "/a/b/c/deep.dat", ObjectClass::S1, MIB)
            .await
            .unwrap();
        fs.create(&sim, "/a/top.dat", ObjectClass::S1, MIB)
            .await
            .unwrap();
        assert_eq!(fs.readdir(&sim, "/").await.unwrap(), vec!["a"]);
        assert_eq!(fs.readdir(&sim, "/a").await.unwrap(), vec!["b", "top.dat"]);
        assert_eq!(fs.readdir(&sim, "/a/b/c").await.unwrap(), vec!["deep.dat"]);
        // mkdir over an existing name fails
        assert!(fs.mkdir(&sim, "/a/b").await.is_err());
        // lookup classifies correctly
        assert_eq!(
            fs.lookup(&sim, "/a/b").await.unwrap().unwrap().kind,
            EntryKind::Dir
        );
        assert_eq!(
            fs.lookup(&sim, "/a/top.dat").await.unwrap().unwrap().kind,
            EntryKind::File
        );
        assert!(fs.lookup(&sim, "/a/nope").await.unwrap().is_none());
    });
}

#[test]
fn write_grows_size_truncate_shrinks_it() {
    let mut sim = Sim::new(0xD52);
    sim.block_on(|sim| async move {
        let fs = fs(&sim).await;
        let f = fs
            .create(&sim, "/t.dat", ObjectClass::S2, 256 * KIB)
            .await
            .unwrap();
        f.write(&sim, 0, Payload::pattern(1, MIB)).await.unwrap();
        assert_eq!(fs.stat(&sim, "/t.dat").await.unwrap().size, MIB);
        // sparse write extends
        f.write(&sim, 3 * MIB, Payload::pattern(2, KIB))
            .await
            .unwrap();
        assert_eq!(f.size(&sim).await.unwrap(), 3 * MIB + KIB);
        // truncate down
        fs.truncate(&sim, "/t.dat", MIB / 2).await.unwrap();
        assert_eq!(f.size(&sim).await.unwrap(), MIB / 2);
        // punched region reads as holes, surviving prefix intact
        let got = f.read_bytes(&sim, 0, MIB).await.unwrap();
        let want = Payload::pattern(1, MIB).materialize();
        assert_eq!(&got[..(MIB / 2) as usize], &want[..(MIB / 2) as usize]);
        assert!(got[(MIB / 2) as usize..].iter().all(|&b| b == 0));
    });
}

#[test]
fn rename_moves_entries_across_directories() {
    let mut sim = Sim::new(0xD53);
    sim.block_on(|sim| async move {
        let fs = fs(&sim).await;
        fs.mkdir(&sim, "/src").await.unwrap();
        fs.mkdir(&sim, "/dst").await.unwrap();
        let f = fs
            .create(&sim, "/src/x.dat", ObjectClass::S1, MIB)
            .await
            .unwrap();
        f.write(&sim, 0, Payload::pattern(7, 64 * KIB))
            .await
            .unwrap();
        fs.rename(&sim, "/src/x.dat", "/dst/y.dat").await.unwrap();
        assert!(fs.lookup(&sim, "/src/x.dat").await.unwrap().is_none());
        let g = fs.open(&sim, "/dst/y.dat").await.unwrap();
        // same object: data survives the rename
        assert_eq!(g.oid(), f.oid());
        assert_eq!(
            g.read_bytes(&sim, 0, 64 * KIB).await.unwrap(),
            Payload::pattern(7, 64 * KIB).materialize().to_vec()
        );
        assert_eq!(
            fs.readdir(&sim, "/src").await.unwrap(),
            Vec::<String>::new()
        );
    });
}

#[test]
fn unlink_removes_and_frees() {
    let mut sim = Sim::new(0xD54);
    sim.block_on(|sim| async move {
        let fs = fs(&sim).await;
        let f = fs
            .create(&sim, "/gone.dat", ObjectClass::SX, MIB)
            .await
            .unwrap();
        f.write(&sim, 0, Payload::pattern(1, MIB)).await.unwrap();
        fs.unlink(&sim, "/gone.dat").await.unwrap();
        assert!(fs.open(&sim, "/gone.dat").await.is_err());
        assert!(fs.unlink(&sim, "/gone.dat").await.is_err());
        // the object data is punched, not just unlinked
        let got = f.read_bytes(&sim, 0, MIB).await.unwrap();
        assert!(got.iter().all(|&b| b == 0));
        // name is reusable
        fs.create(&sim, "/gone.dat", ObjectClass::S1, MIB)
            .await
            .unwrap();
    });
}

#[test]
fn symlinks_resolve_and_cap_loops() {
    let mut sim = Sim::new(0xD55);
    sim.block_on(|sim| async move {
        let fs = fs(&sim).await;
        let f = fs
            .create(&sim, "/real.dat", ObjectClass::S1, MIB)
            .await
            .unwrap();
        f.write(&sim, 0, Payload::pattern(3, KIB)).await.unwrap();
        fs.symlink(&sim, "/link", "/real.dat").await.unwrap();
        fs.symlink(&sim, "/link2", "/link").await.unwrap();
        // open follows chains
        let via = fs.open(&sim, "/link2").await.unwrap();
        assert_eq!(via.oid(), f.oid());
        // lstat-style lookup does not follow
        assert_eq!(
            fs.lookup(&sim, "/link").await.unwrap().unwrap().kind,
            EntryKind::Symlink
        );
        // loops are detected
        fs.symlink(&sim, "/loop_a", "/loop_b").await.unwrap();
        fs.symlink(&sim, "/loop_b", "/loop_a").await.unwrap();
        assert!(fs.open(&sim, "/loop_a").await.is_err());
    });
}

#[test]
fn two_mounts_see_each_others_changes() {
    let mut sim = Sim::new(0xD56);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(2));
        let c0 = DaosClient::new(Rc::clone(&cluster), 0);
        let c1 = DaosClient::new(Rc::clone(&cluster), 1);
        let p0 = c0.connect(&sim).await.unwrap();
        let p1 = c1.connect(&sim).await.unwrap();
        let fs0 = Dfs::mount(&sim, &p0, 1, DfsConfig::default(), 10)
            .await
            .unwrap();
        let fs1 = Dfs::mount(&sim, &p1, 1, DfsConfig::default(), 11)
            .await
            .unwrap();
        // node 0 writes, node 1 reads — no caches in between
        let f0 = fs0
            .create(&sim, "/shared.dat", ObjectClass::S2, MIB)
            .await
            .unwrap();
        f0.write(&sim, 0, Payload::pattern(42, MIB)).await.unwrap();
        let f1 = fs1.open(&sim, "/shared.dat").await.unwrap();
        assert_eq!(
            f1.read_bytes(&sim, 0, MIB).await.unwrap(),
            Payload::pattern(42, MIB).materialize().to_vec()
        );
        // and the reverse direction for namespace ops
        fs1.mkdir(&sim, "/from1").await.unwrap();
        assert!(fs0.lookup(&sim, "/from1").await.unwrap().is_some());
    });
}

#[test]
fn mangled_dirent_surfaces_as_corrupt_metadata() {
    let mut sim = Sim::new(0xD57);
    sim.block_on(|sim| async move {
        let fs = fs(&sim).await;
        fs.create(&sim, "/victim.dat", ObjectClass::S1, MIB)
            .await
            .unwrap();
        // scribble over the dirent value through the raw KV interface
        // (root directory object is oid {0, 2}, dir class S1): kind byte 9
        // is no valid entry kind, so deserialisation must refuse it
        let root = daos_placement::ObjectId::new(0, 2);
        let kv = fs
            .container()
            .object(root, DfsConfig::default().dir_class)
            .kv();
        kv.put(&sim, "victim.dat", Payload::bytes(vec![9u8; 32]))
            .await
            .unwrap();
        match fs.open(&sim, "/victim.dat").await {
            Err(daos_core::DaosError::CorruptMetadata(_)) => {}
            Err(e) => panic!("expected CorruptMetadata, got {e:?}"),
            Ok(_) => panic!("expected CorruptMetadata, got Ok"),
        }
        // unlink trips over the same tombstone-decoding path
        match fs.unlink(&sim, "/victim.dat").await {
            Err(daos_core::DaosError::CorruptMetadata(_)) => {}
            other => panic!("expected CorruptMetadata, got {other:?}"),
        }
        // intact siblings stay reachable
        fs.create(&sim, "/ok.dat", ObjectClass::S1, KIB)
            .await
            .unwrap();
        assert!(fs.open(&sim, "/ok.dat").await.is_ok());
    });
}
