//! Wire protocol between clients and engines.

use daos_placement::ObjectId;
use daos_vos::tree::ReadSeg;
use daos_vos::{Epoch, Key, Payload};

use crate::ContId;

/// Errors surfaced by engines / the pool service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaosError {
    /// Control op sent to a non-leader replica; retry at `hint` if known.
    NotLeader { hint: Option<u64> },
    /// Container does not exist.
    NoContainer(ContId),
    /// Container already exists.
    ContainerExists(ContId),
    /// RPC transport failure (endpoint closed).
    Transport,
    /// Anything else.
    Other(String),
}

impl std::fmt::Display for DaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaosError::NotLeader { hint } => write!(f, "not the pool-service leader (hint {hint:?})"),
            DaosError::NoContainer(c) => write!(f, "no such container {c}"),
            DaosError::ContainerExists(c) => write!(f, "container {c} exists"),
            DaosError::Transport => write!(f, "rpc transport failure"),
            DaosError::Other(s) => write!(f, "{s}"),
        }
    }
}
impl std::error::Error for DaosError {}

/// A request addressed to one engine; data-plane ops carry the local target
/// index the shard lives on.
#[derive(Clone, Debug)]
pub enum Request {
    // ------------------------------------------------------- data plane
    UpdateArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        data: Payload,
    },
    FetchArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    },
    UpdateSingle {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        value: Payload,
    },
    FetchSingle {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        epoch: Epoch,
    },
    PunchObject {
        target: u32,
        cont: ContId,
        oid: ObjectId,
    },
    /// Punch a byte range inside one chunk (truncate support).
    PunchArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
    },
    ListDkeys {
        target: u32,
        cont: ContId,
        oid: ObjectId,
    },
    /// Highest chunk dkey + size within it, for array-size queries.
    ArrayMaxChunk {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        akey: Key,
    },
    /// Highest epoch issued by this target (container snapshots).
    QueryEpoch {
        target: u32,
    },
    // ---------------------------------------------------- control plane
    PoolConnect,
    ContCreate {
        cont: ContId,
    },
    ContOpen {
        cont: ContId,
    },
    ContDestroy {
        cont: ContId,
    },
}

impl Request {
    /// Bytes of bulk payload this request carries on the wire (write data).
    pub fn bulk_in(&self) -> u64 {
        match self {
            Request::UpdateArray { data, .. } => data.len(),
            Request::UpdateSingle { value, .. } => value.len(),
            _ => 0,
        }
    }
}

/// Engine responses.
#[derive(Clone, Debug)]
pub enum Response {
    Ok,
    /// Epoch assigned to an update.
    Written { epoch: Epoch },
    Fetched { segs: Vec<ReadSeg> },
    Single(Option<Payload>),
    Dkeys(Vec<Key>),
    /// Reply to `ArrayMaxChunk`.
    MaxChunk(Option<(Key, u64)>),
    /// Reply to `QueryEpoch`.
    Epoch(Epoch),
    /// Pool-map summary returned by PoolConnect / ContOpen.
    Connected { engines: u32, targets_per_engine: u32 },
    Err(DaosError),
}

impl Response {
    /// Bytes of bulk payload this response carries (read data).
    pub fn bulk_out(&self) -> u64 {
        match self {
            Response::Fetched { segs } => segs
                .iter()
                .filter_map(|s| s.data.as_ref())
                .map(|d| d.len())
                .sum(),
            Response::Single(Some(p)) => p.len(),
            Response::Dkeys(keys) => keys.iter().map(|k| k.len() as u64 + 8).sum(),
            _ => 0,
        }
    }

    /// Unwrap into a unit result.
    pub fn ok(self) -> Result<(), DaosError> {
        match self {
            Response::Ok | Response::Written { .. } | Response::Connected { .. } => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(DaosError::Other(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_accounting() {
        let w = Request::UpdateArray {
            target: 0,
            cont: 1,
            oid: ObjectId::new(0, 1),
            dkey: vec![0],
            akey: vec![0],
            offset: 0,
            data: Payload::pattern(1, 4096),
        };
        assert_eq!(w.bulk_in(), 4096);
        let r = Response::Fetched {
            segs: vec![
                ReadSeg {
                    offset: 0,
                    len: 100,
                    data: Some(Payload::pattern(1, 100)),
                },
                ReadSeg {
                    offset: 100,
                    len: 50,
                    data: None,
                },
            ],
        };
        assert_eq!(r.bulk_out(), 100);
    }

    #[test]
    fn response_ok_unwrapping() {
        assert!(Response::Ok.ok().is_ok());
        assert!(Response::Written { epoch: 3 }.ok().is_ok());
        assert_eq!(
            Response::Err(DaosError::NoContainer(7)).ok(),
            Err(DaosError::NoContainer(7))
        );
        assert!(Response::Single(None).ok().is_err());
    }
}
