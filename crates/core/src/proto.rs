//! Wire protocol between clients and engines.

use daos_placement::ObjectId;
use daos_vos::tree::ReadSeg;
use daos_vos::{Epoch, Key, Payload};

use crate::ContId;

/// Errors surfaced by engines / the pool service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaosError {
    /// Control op sent to a non-leader replica; retry at `hint` if known.
    NotLeader { hint: Option<u64> },
    /// Container does not exist.
    NoContainer(ContId),
    /// Container already exists.
    ContainerExists(ContId),
    /// RPC transport failure (endpoint closed).
    Transport,
    /// No response within the RPC deadline (node dark, partition, loss, or
    /// an overloaded server). Retryable.
    Timeout,
    /// The server rejected the op because the client routed it with an
    /// out-of-date pool map; `version` is the server's current map version.
    /// Retryable after a pool-map refresh.
    StaleMap { version: u32 },
    /// A degraded read ran out of replicas / reconstruction sources: every
    /// shard that could serve the data is excluded or unreachable.
    NoSurvivingReplicas,
    /// The server answered with a response kind the caller cannot use —
    /// a protocol mismatch, not retryable.
    UnexpectedResponse(String),
    /// Stored data failed checksum verification on the server: silent media
    /// corruption. NOT retryable against the same shard — the bytes on
    /// media are wrong and will stay wrong; the client must fail over to
    /// another replica (or EC-reconstruct) and report the shard for repair.
    CsumMismatch,
    /// A data frame was corrupted in flight (torn bulk transfer): the
    /// received bytes disagree with the frame's checksum. Retryable — a
    /// resend rereads the good source bytes.
    CorruptFrame,
    /// The engine shed the request at admission: the target xstream's
    /// bounded queue (or the engine-wide in-flight-bytes budget) is full.
    /// A fast-fail — the reply is header-only and no bulk is queued, so it
    /// costs the server almost nothing. Retryable, but clients must treat
    /// it differently from [`DaosError::Timeout`]: the server is *alive and
    /// explicitly refusing work*, so piling on retries is exactly wrong —
    /// back off against the shedding engine instead of resending harder.
    /// `queued` is the shedding xstream's queue depth at rejection time
    /// (observability; lets clients and benches see how deep overload ran).
    Busy { queued: u32 },
    /// Filesystem-level metadata (e.g. a DFS dirent) failed to deserialise:
    /// the stored record is structurally corrupt. Not retryable.
    CorruptMetadata(String),
    /// A data-plane op addressed an akey whose stored value shape (array
    /// vs single-value) disagrees with the op — a client protocol
    /// violation. Not retryable: the key's shape won't change on resend.
    KeyTypeMismatch {
        /// Shape the op required (`"array"` or `"single"`).
        expected: &'static str,
    },
    /// Anything else.
    Other(String),
}

impl DaosError {
    /// Whether a client may retry the failed op (after backoff and, for
    /// [`DaosError::StaleMap`], a pool-map refresh).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DaosError::Timeout
                | DaosError::Transport
                | DaosError::StaleMap { .. }
                | DaosError::NotLeader { .. }
                | DaosError::CorruptFrame
                | DaosError::Busy { .. }
        )
    }
}

impl std::fmt::Display for DaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaosError::NotLeader { hint } => {
                write!(f, "not the pool-service leader (hint {hint:?})")
            }
            DaosError::NoContainer(c) => write!(f, "no such container {c}"),
            DaosError::ContainerExists(c) => write!(f, "container {c} exists"),
            DaosError::Transport => write!(f, "rpc transport failure"),
            DaosError::Timeout => write!(f, "rpc deadline exceeded"),
            DaosError::StaleMap { version } => {
                write!(f, "stale pool map (server at version {version})")
            }
            DaosError::NoSurvivingReplicas => write!(f, "no surviving replica for shard"),
            DaosError::UnexpectedResponse(s) => write!(f, "unexpected response {s}"),
            DaosError::CsumMismatch => write!(f, "stored data failed checksum verification"),
            DaosError::CorruptFrame => write!(f, "data frame corrupted in flight"),
            DaosError::Busy { queued } => {
                write!(f, "engine shed request at admission (queue depth {queued})")
            }
            DaosError::CorruptMetadata(s) => write!(f, "corrupt metadata: {s}"),
            DaosError::KeyTypeMismatch { expected } => {
                write!(f, "akey type mismatch: op requires a {expected} akey")
            }
            DaosError::Other(s) => write!(f, "{s}"),
        }
    }
}
impl std::error::Error for DaosError {}

impl From<daos_vos::VosError> for DaosError {
    fn from(e: daos_vos::VosError) -> Self {
        match e {
            daos_vos::VosError::AkeyKind { expected } => DaosError::KeyTypeMismatch { expected },
            daos_vos::VosError::Csum(_) => DaosError::CsumMismatch,
        }
    }
}

impl From<daos_fabric::CallError> for DaosError {
    fn from(e: daos_fabric::CallError) -> Self {
        match e {
            daos_fabric::CallError::Timeout => DaosError::Timeout,
            daos_fabric::CallError::Closed => DaosError::Transport,
        }
    }
}

/// A request addressed to one engine; data-plane ops carry the local target
/// index the shard lives on.
#[derive(Clone, Debug)]
pub enum Request {
    // ------------------------------------------------------- data plane
    UpdateArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        data: Payload,
        /// End-to-end checksum over `data`, computed client-side before the
        /// bulk transfer; the server re-hashes the received bytes and
        /// rejects torn frames with [`DaosError::CorruptFrame`].
        csum: u64,
    },
    FetchArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    },
    UpdateSingle {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        value: Payload,
        /// End-to-end checksum over `value` (see `UpdateArray::csum`).
        csum: u64,
    },
    FetchSingle {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        epoch: Epoch,
    },
    PunchObject {
        target: u32,
        cont: ContId,
        oid: ObjectId,
    },
    /// Punch a byte range inside one chunk (truncate support).
    PunchArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
    },
    ListDkeys {
        target: u32,
        cont: ContId,
        oid: ObjectId,
    },
    /// Highest chunk dkey + size within it, for array-size queries.
    ArrayMaxChunk {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        akey: Key,
    },
    /// Highest epoch issued by this target (container snapshots).
    QueryEpoch {
        target: u32,
    },
    /// Pool-service heartbeat probing engine liveness; gossips the current
    /// pool-map version and the engine's locally-excluded targets.
    Ping {
        version: u32,
        excluded: Vec<u32>,
    },
    // ---------------------------------------------------- control plane
    PoolConnect,
    /// Read the current pool map (version + excluded targets) from the
    /// pool-service leader's applied state.
    PoolQuery,
    /// Administratively exclude targets (also proposed by the failure
    /// detector when an engine stops answering heartbeats).
    PoolExclude {
        targets: Vec<daos_placement::TargetId>,
    },
    /// Re-admit previously excluded targets (after restart + rebuild).
    PoolReintegrate {
        targets: Vec<daos_placement::TargetId>,
    },
    ContCreate {
        cont: ContId,
    },
    ContOpen {
        cont: ContId,
    },
    ContDestroy {
        cont: ContId,
    },
    /// Tell the pool service a shard's stored data failed verification
    /// (sent by clients on `CsumMismatch` and by engine scrubbers). The
    /// service triggers a targeted repair of that one chunk — not a
    /// whole-target rebuild.
    ReportCorrupt {
        cont: ContId,
        oid: ObjectId,
        /// Chunk index within the object (the array dkey).
        chunk: u64,
        /// The target whose copy is bad.
        target: daos_placement::TargetId,
    },
}

impl Request {
    /// Bytes of bulk payload this request carries on the wire (write data).
    pub fn bulk_in(&self) -> u64 {
        match self {
            Request::UpdateArray { data, .. } => data.len(),
            Request::UpdateSingle { value, .. } => value.len(),
            _ => 0,
        }
    }
}

/// Engine responses.
#[derive(Clone, Debug)]
pub enum Response {
    Ok,
    /// Epoch assigned to an update.
    Written {
        epoch: Epoch,
    },
    Fetched {
        segs: Vec<ReadSeg>,
        /// End-to-end checksum over the returned data segments (when the
        /// serving engine has checksums enabled). The client re-hashes the
        /// received bytes; a disagreement is a torn response frame.
        csum: Option<u64>,
    },
    Single(Option<Payload>),
    Dkeys(Vec<Key>),
    /// Reply to `ArrayMaxChunk`.
    MaxChunk(Option<(Key, u64)>),
    /// Reply to `QueryEpoch`.
    Epoch(Epoch),
    /// Pool-map summary returned by PoolConnect / ContOpen.
    Connected {
        engines: u32,
        targets_per_engine: u32,
    },
    /// Reply to `Ping`.
    Pong,
    /// Reply to `PoolQuery`: the authoritative map version and excluded
    /// target set.
    PoolMapInfo {
        version: u32,
        excluded: Vec<daos_placement::TargetId>,
    },
    Err(DaosError),
}

impl Response {
    /// Bytes of bulk payload this response carries (read data).
    pub fn bulk_out(&self) -> u64 {
        match self {
            Response::Fetched { segs, .. } => segs
                .iter()
                .filter_map(|s| s.data.as_ref())
                .map(|d| d.len())
                .sum(),
            Response::Single(Some(p)) => p.len(),
            Response::Dkeys(keys) => keys.iter().map(|k| k.len() as u64 + 8).sum(),
            _ => 0,
        }
    }

    /// Unwrap into a unit result.
    pub fn ok(self) -> Result<(), DaosError> {
        match self {
            Response::Ok
            | Response::Written { .. }
            | Response::Connected { .. }
            | Response::Pong
            | Response::PoolMapInfo { .. } => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

/// End-to-end checksum of one payload as carried on the wire.
pub fn wire_csum(p: &Payload) -> u64 {
    daos_vos::csum64(daos_vos::CSUM_SEED, p)
}

/// End-to-end checksum over a fetch response's data segments: each data
/// segment's payload hash folded with its offset, so reordered or shifted
/// segments also fail verification.
pub fn wire_csum_segs(segs: &[ReadSeg]) -> u64 {
    let mut h = daos_vos::CSUM_SEED;
    for s in segs {
        if let Some(d) = &s.data {
            h = (h ^ s.offset ^ daos_vos::csum64(daos_vos::CSUM_SEED, d))
                .wrapping_mul(0x100_0000_01b3)
                .rotate_left(17);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_accounting() {
        let w = Request::UpdateArray {
            target: 0,
            cont: 1,
            oid: ObjectId::new(0, 1),
            dkey: vec![0],
            akey: vec![0],
            offset: 0,
            data: Payload::pattern(1, 4096),
            csum: wire_csum(&Payload::pattern(1, 4096)),
        };
        assert_eq!(w.bulk_in(), 4096);
        let r = Response::Fetched {
            segs: vec![
                ReadSeg {
                    offset: 0,
                    len: 100,
                    data: Some(Payload::pattern(1, 100)),
                },
                ReadSeg {
                    offset: 100,
                    len: 50,
                    data: None,
                },
            ],
            csum: None,
        };
        assert_eq!(r.bulk_out(), 100);
    }

    #[test]
    fn wire_csum_detects_corruption_and_reorder() {
        let p = Payload::pattern(9, 1024);
        assert_eq!(wire_csum(&p), wire_csum(&Payload::bytes(p.materialize())));
        assert_ne!(wire_csum(&p), wire_csum(&p.corrupted()));

        let seg = |off, seed| ReadSeg {
            offset: off,
            len: 64,
            data: Some(Payload::pattern(seed, 64)),
        };
        let a = vec![seg(0, 1), seg(64, 2)];
        let mut shifted = a.clone();
        shifted[1].offset = 128;
        assert_ne!(wire_csum_segs(&a), wire_csum_segs(&shifted));
        let mut torn = a.clone();
        torn[0].data = torn[0].data.as_ref().map(|d| d.corrupted());
        assert_ne!(wire_csum_segs(&a), wire_csum_segs(&torn));
    }

    #[test]
    fn csum_error_taxonomy() {
        assert!(!DaosError::CsumMismatch.is_retryable());
        assert!(DaosError::CorruptFrame.is_retryable());
        assert!(!DaosError::CorruptMetadata("x".into()).is_retryable());
    }

    #[test]
    fn busy_taxonomy_and_wire_shape() {
        // shed replies are retryable (the data is fine, the queue is full)
        // but must be distinguishable from Timeout by the retry machinery
        let busy = DaosError::Busy { queued: 7 };
        assert!(busy.is_retryable());
        assert_ne!(busy, DaosError::Timeout);
        // a shed reply is header-only: no bulk may be queued behind it,
        // mirroring the eager control lane heartbeats ride on
        assert_eq!(Response::Err(busy.clone()).bulk_out(), 0);
        assert!(format!("{busy}").contains("queue depth 7"));
    }

    #[test]
    fn response_ok_unwrapping() {
        assert!(Response::Ok.ok().is_ok());
        assert!(Response::Written { epoch: 3 }.ok().is_ok());
        assert_eq!(
            Response::Err(DaosError::NoContainer(7)).ok(),
            Err(DaosError::NoContainer(7))
        );
        assert!(Response::Single(None).ok().is_err());
    }
}
