//! Wire protocol between clients and engines.

use daos_placement::ObjectId;
use daos_vos::tree::ReadSeg;
use daos_vos::{Epoch, Key, Payload};

use crate::ContId;

/// Errors surfaced by engines / the pool service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DaosError {
    /// Control op sent to a non-leader replica; retry at `hint` if known.
    NotLeader { hint: Option<u64> },
    /// Container does not exist.
    NoContainer(ContId),
    /// Container already exists.
    ContainerExists(ContId),
    /// RPC transport failure (endpoint closed).
    Transport,
    /// No response within the RPC deadline (node dark, partition, loss, or
    /// an overloaded server). Retryable.
    Timeout,
    /// The server rejected the op because the client routed it with an
    /// out-of-date pool map; `version` is the server's current map version.
    /// Retryable after a pool-map refresh.
    StaleMap { version: u32 },
    /// A degraded read ran out of replicas / reconstruction sources: every
    /// shard that could serve the data is excluded or unreachable.
    NoSurvivingReplicas,
    /// The server answered with a response kind the caller cannot use —
    /// a protocol mismatch, not retryable.
    UnexpectedResponse(String),
    /// Anything else.
    Other(String),
}

impl DaosError {
    /// Whether a client may retry the failed op (after backoff and, for
    /// [`DaosError::StaleMap`], a pool-map refresh).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DaosError::Timeout
                | DaosError::Transport
                | DaosError::StaleMap { .. }
                | DaosError::NotLeader { .. }
        )
    }
}

impl std::fmt::Display for DaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaosError::NotLeader { hint } => {
                write!(f, "not the pool-service leader (hint {hint:?})")
            }
            DaosError::NoContainer(c) => write!(f, "no such container {c}"),
            DaosError::ContainerExists(c) => write!(f, "container {c} exists"),
            DaosError::Transport => write!(f, "rpc transport failure"),
            DaosError::Timeout => write!(f, "rpc deadline exceeded"),
            DaosError::StaleMap { version } => {
                write!(f, "stale pool map (server at version {version})")
            }
            DaosError::NoSurvivingReplicas => write!(f, "no surviving replica for shard"),
            DaosError::UnexpectedResponse(s) => write!(f, "unexpected response {s}"),
            DaosError::Other(s) => write!(f, "{s}"),
        }
    }
}
impl std::error::Error for DaosError {}

impl From<daos_fabric::CallError> for DaosError {
    fn from(e: daos_fabric::CallError) -> Self {
        match e {
            daos_fabric::CallError::Timeout => DaosError::Timeout,
            daos_fabric::CallError::Closed => DaosError::Transport,
        }
    }
}

/// A request addressed to one engine; data-plane ops carry the local target
/// index the shard lives on.
#[derive(Clone, Debug)]
pub enum Request {
    // ------------------------------------------------------- data plane
    UpdateArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        data: Payload,
    },
    FetchArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    },
    UpdateSingle {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        value: Payload,
    },
    FetchSingle {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        epoch: Epoch,
    },
    PunchObject {
        target: u32,
        cont: ContId,
        oid: ObjectId,
    },
    /// Punch a byte range inside one chunk (truncate support).
    PunchArray {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
    },
    ListDkeys {
        target: u32,
        cont: ContId,
        oid: ObjectId,
    },
    /// Highest chunk dkey + size within it, for array-size queries.
    ArrayMaxChunk {
        target: u32,
        cont: ContId,
        oid: ObjectId,
        akey: Key,
    },
    /// Highest epoch issued by this target (container snapshots).
    QueryEpoch {
        target: u32,
    },
    /// Pool-service heartbeat probing engine liveness; gossips the current
    /// pool-map version and the engine's locally-excluded targets.
    Ping {
        version: u32,
        excluded: Vec<u32>,
    },
    // ---------------------------------------------------- control plane
    PoolConnect,
    /// Read the current pool map (version + excluded targets) from the
    /// pool-service leader's applied state.
    PoolQuery,
    /// Administratively exclude targets (also proposed by the failure
    /// detector when an engine stops answering heartbeats).
    PoolExclude {
        targets: Vec<daos_placement::TargetId>,
    },
    /// Re-admit previously excluded targets (after restart + rebuild).
    PoolReintegrate {
        targets: Vec<daos_placement::TargetId>,
    },
    ContCreate {
        cont: ContId,
    },
    ContOpen {
        cont: ContId,
    },
    ContDestroy {
        cont: ContId,
    },
}

impl Request {
    /// Bytes of bulk payload this request carries on the wire (write data).
    pub fn bulk_in(&self) -> u64 {
        match self {
            Request::UpdateArray { data, .. } => data.len(),
            Request::UpdateSingle { value, .. } => value.len(),
            _ => 0,
        }
    }
}

/// Engine responses.
#[derive(Clone, Debug)]
pub enum Response {
    Ok,
    /// Epoch assigned to an update.
    Written {
        epoch: Epoch,
    },
    Fetched {
        segs: Vec<ReadSeg>,
    },
    Single(Option<Payload>),
    Dkeys(Vec<Key>),
    /// Reply to `ArrayMaxChunk`.
    MaxChunk(Option<(Key, u64)>),
    /// Reply to `QueryEpoch`.
    Epoch(Epoch),
    /// Pool-map summary returned by PoolConnect / ContOpen.
    Connected {
        engines: u32,
        targets_per_engine: u32,
    },
    /// Reply to `Ping`.
    Pong,
    /// Reply to `PoolQuery`: the authoritative map version and excluded
    /// target set.
    PoolMapInfo {
        version: u32,
        excluded: Vec<daos_placement::TargetId>,
    },
    Err(DaosError),
}

impl Response {
    /// Bytes of bulk payload this response carries (read data).
    pub fn bulk_out(&self) -> u64 {
        match self {
            Response::Fetched { segs } => segs
                .iter()
                .filter_map(|s| s.data.as_ref())
                .map(|d| d.len())
                .sum(),
            Response::Single(Some(p)) => p.len(),
            Response::Dkeys(keys) => keys.iter().map(|k| k.len() as u64 + 8).sum(),
            _ => 0,
        }
    }

    /// Unwrap into a unit result.
    pub fn ok(self) -> Result<(), DaosError> {
        match self {
            Response::Ok
            | Response::Written { .. }
            | Response::Connected { .. }
            | Response::Pong
            | Response::PoolMapInfo { .. } => Ok(()),
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_accounting() {
        let w = Request::UpdateArray {
            target: 0,
            cont: 1,
            oid: ObjectId::new(0, 1),
            dkey: vec![0],
            akey: vec![0],
            offset: 0,
            data: Payload::pattern(1, 4096),
        };
        assert_eq!(w.bulk_in(), 4096);
        let r = Response::Fetched {
            segs: vec![
                ReadSeg {
                    offset: 0,
                    len: 100,
                    data: Some(Payload::pattern(1, 100)),
                },
                ReadSeg {
                    offset: 100,
                    len: 50,
                    data: None,
                },
            ],
        };
        assert_eq!(r.bulk_out(), 100);
    }

    #[test]
    fn response_ok_unwrapping() {
        assert!(Response::Ok.ok().is_ok());
        assert!(Response::Written { epoch: 3 }.ok().is_ok());
        assert_eq!(
            Response::Err(DaosError::NoContainer(7)).ok(),
            Err(DaosError::NoContainer(7))
        );
        assert!(Response::Single(None).ok().is_err());
    }
}
