//! Background rebuild: re-protecting objects after a pool-map change.
//!
//! When targets are excluded, protected objects (`RP_n`, `EC_k+p`) get new
//! layouts; the shards that moved must be repopulated on their new homes
//! from the surviving group members — a copy for replication, an XOR
//! reconstruction for erasure coding. Reintegration is the same pass run in
//! reverse: the layout reverts and the returning shards are refilled from
//! the replicas that served while the target was out.
//!
//! The pass is server-pull, as in DAOS: the destination engine's node
//! issues the fetch and update RPCs, so repair traffic competes with
//! foreground I/O for engine bandwidth. Concurrency is bounded by the
//! `rebuild_inflight` knob.

use std::collections::BTreeSet;
use std::rc::Rc;

use daos_placement::{place, ObjectClass, ObjectId, PoolMap, TargetId};
use daos_sim::executor::join_all;
use daos_sim::time::SimDuration;
use daos_sim::{Semaphore, Sim};
use daos_vos::tree::ReadSeg;
use daos_vos::{key, Epoch, Payload};

use crate::client::group_of_chunk;
use crate::cluster::Cluster;
use crate::proto::{wire_csum, wire_csum_segs, Request, Response};
use crate::ContId;

/// Per-RPC deadline inside a rebuild pass; a source that stays dark this
/// long is skipped and the chunk is left for the next pass.
const REPAIR_RPC_DEADLINE: SimDuration = SimDuration::from_secs(2);

/// What a rebuild pass accomplished.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Rebuild passes merged into these stats.
    pub passes: u64,
    /// Registered objects examined.
    pub objects_scanned: u64,
    /// Shards whose target changed between the old and new map.
    pub shards_moved: u64,
    /// Chunks copied or reconstructed onto their new target.
    pub chunks_repaired: u64,
    /// Bytes written to the new targets.
    pub bytes_moved: u64,
    /// Chunks left unrepaired (no live donor or RPC failure).
    pub chunks_skipped: u64,
}

impl RebuildStats {
    /// Fold another pass's stats into this one.
    pub fn merge(&mut self, other: &RebuildStats) {
        self.passes += other.passes;
        self.objects_scanned += other.objects_scanned;
        self.shards_moved += other.shards_moved;
        self.chunks_repaired += other.chunks_repaired;
        self.bytes_moved += other.bytes_moved;
        self.chunks_skipped += other.chunks_skipped;
    }
}

/// One bad chunk copy, as reported by a client read that hit a checksum
/// mismatch or by an engine's background scrubber. Identifies exactly one
/// stored copy: the chunk's extent on one target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CorruptionReport {
    /// Container holding the object.
    pub cont: ContId,
    /// The damaged object.
    pub oid: ObjectId,
    /// Array chunk index (big-endian dkey).
    pub chunk: u64,
    /// The target whose copy failed verification.
    pub target: TargetId,
}

/// Callback fired when a component learns of a bad stored copy — wired by
/// the cluster to spawn a targeted repair.
pub(crate) type CorruptionHook = Box<dyn Fn(&Sim, CorruptionReport)>;

fn map_with(cluster: &Cluster, excluded: &BTreeSet<TargetId>) -> PoolMap {
    let mut m = PoolMap::new(cluster.cfg.engine_count(), cluster.cfg.targets_per_engine);
    for &t in excluded {
        m.exclude(t);
    }
    m
}

/// Materialise shard-relative segments into `len` bytes (holes = 0);
/// `false` if no segment carried data.
fn flatten(segs: &[ReadSeg], len: u64) -> (Vec<u8>, bool) {
    let mut out = vec![0u8; len as usize];
    let mut any = false;
    for s in segs {
        if let Some(d) = &s.data {
            let m = d.materialize();
            out[s.offset as usize..(s.offset + s.len) as usize].copy_from_slice(&m);
            any = true;
        }
    }
    (out, any)
}

/// One engine-to-engine RPC, issued from `from_engine`'s node.
async fn engine_rpc(
    sim: &Sim,
    cluster: &Cluster,
    from_engine: u32,
    to_target: TargetId,
    req: Request,
) -> Option<Response> {
    let tpe = cluster.cfg.targets_per_engine;
    let from = cluster.engine(from_engine).node();
    let bulk = req.bulk_in();
    cluster
        .engine(to_target / tpe)
        .endpoint()
        .call_deadline(sim, from, req, bulk, REPAIR_RPC_DEADLINE)
        .await
        .ok()
}

/// Fetch `[0, len)` of one chunk cell/replica from `src` target.
#[allow(clippy::too_many_arguments)]
async fn fetch_from(
    sim: &Sim,
    cluster: &Cluster,
    dest_engine: u32,
    src: TargetId,
    cont: u64,
    oid: ObjectId,
    dkey: &[u8],
    len: u64,
) -> Option<Vec<ReadSeg>> {
    let tpe = cluster.cfg.targets_per_engine;
    let rsp = engine_rpc(
        sim,
        cluster,
        dest_engine,
        src,
        Request::FetchArray {
            target: src % tpe,
            cont,
            oid,
            dkey: dkey.to_vec(),
            akey: key("0"),
            offset: 0,
            len,
            epoch: Epoch::MAX,
        },
    )
    .await?;
    match rsp {
        Response::Fetched { segs, csum } => {
            // a donor read torn in flight must not be written back as truth
            if let Some(c) = csum {
                if wire_csum_segs(&segs) != c {
                    return None;
                }
            }
            Some(segs)
        }
        _ => None,
    }
}

/// Write `data` at `offset` of one chunk on `dst` target.
#[allow(clippy::too_many_arguments)]
async fn write_to(
    sim: &Sim,
    cluster: &Cluster,
    dst: TargetId,
    cont: u64,
    oid: ObjectId,
    dkey: &[u8],
    offset: u64,
    data: Payload,
) -> bool {
    let tpe = cluster.cfg.targets_per_engine;
    let dest_engine = dst / tpe;
    let csum = wire_csum(&data);
    matches!(
        engine_rpc(
            sim,
            cluster,
            dest_engine,
            dst,
            Request::UpdateArray {
                target: dst % tpe,
                cont,
                oid,
                dkey: dkey.to_vec(),
                akey: key("0"),
                offset,
                data,
                csum,
            },
        )
        .await,
        Some(Response::Written { .. })
    )
}

/// Repair one chunk of one moved shard; returns bytes written, or `None`
/// if the chunk could not be repaired.
#[allow(clippy::too_many_arguments)]
async fn repair_chunk(
    sim: &Sim,
    cluster: &Cluster,
    cont: u64,
    oid: ObjectId,
    class: ObjectClass,
    chunk_size: u64,
    chunk: u64,
    moved_shard: u32,
    group: std::ops::Range<u32>,
    donors: &[u32],
    new_targets: &[TargetId],
) -> Option<u64> {
    let dkey = chunk.to_be_bytes().to_vec();
    let dst = new_targets[moved_shard as usize];
    let dest_engine = dst / cluster.cfg.targets_per_engine;
    match class {
        ObjectClass::Replicated { .. } => {
            // copy the whole chunk from the first replica that serves it
            // clean — a donor can itself hold rot (its engine answers the
            // fetch with a checksum error, surfacing here as None)
            for &donor in donors {
                let Some(segs) = fetch_from(
                    sim,
                    cluster,
                    dest_engine,
                    new_targets[donor as usize],
                    cont,
                    oid,
                    &dkey,
                    chunk_size,
                )
                .await
                else {
                    continue;
                };
                let mut moved = 0;
                for s in segs {
                    if let Some(d) = s.data {
                        moved += d.len();
                        if !write_to(sim, cluster, dst, cont, oid, &dkey, s.offset, d).await {
                            return None;
                        }
                    }
                }
                return Some(moved);
            }
            None
        }
        ObjectClass::ErasureCoded {
            data: k, parity, ..
        } => {
            let (k, parity) = (k as u32, parity as u32);
            let cell = chunk_size / k as u64;
            let c = moved_shard - group.start; // cell index within the group
                                               // XOR set: every other data cell, plus one parity when the lost
                                               // cell is itself a data cell (all parity cells are XOR parity)
            let mut sources: Vec<u32> = (0..k)
                .filter(|&d| d != c)
                .map(|d| group.start + d)
                .collect();
            if c < k {
                let p = (k..k + parity)
                    .map(|j| group.start + j)
                    .find(|s| donors.contains(s))?;
                sources.push(p);
            }
            let mut acc = vec![0u8; cell as usize];
            let mut any = false;
            for src in sources {
                let segs = fetch_from(
                    sim,
                    cluster,
                    dest_engine,
                    new_targets[src as usize],
                    cont,
                    oid,
                    &dkey,
                    cell,
                )
                .await?;
                let (bytes, had) = flatten(&segs, cell);
                any |= had;
                for (o, b) in acc.iter_mut().zip(bytes) {
                    *o ^= b;
                }
            }
            if !any {
                return Some(0); // chunk exists but this stripe was never written
            }
            if !write_to(sim, cluster, dst, cont, oid, &dkey, 0, Payload::bytes(acc)).await {
                return None;
            }
            Some(cell)
        }
        _ => None,
    }
}

/// Push map version `version` to every engine that may host repair
/// destinations: a returning engine that still believes its own targets
/// are excluded would reject the repair writes with `StaleMap`. Engines
/// whose targets are all excluded are skipped (nothing lands on them, and
/// after a crash they may be dark).
async fn push_map(sim: &Sim, cluster: &Cluster, version: u32, new_excluded: &BTreeSet<TargetId>) {
    let tpe = cluster.cfg.targets_per_engine;
    for e in 0..cluster.cfg.engine_count() {
        let local: Vec<u32> = new_excluded
            .iter()
            .filter(|&&t| t / tpe == e)
            .map(|&t| t % tpe)
            .collect();
        if local.len() as u32 == tpe {
            continue;
        }
        engine_rpc(
            sim,
            cluster,
            e,
            e * tpe,
            Request::Ping {
                version,
                excluded: local,
            },
        )
        .await;
    }
}

/// Run one rebuild pass for a map transition `old_excluded → new_excluded`
/// committed as map version `version`.
pub(crate) async fn run(
    sim: &Sim,
    cluster: &Rc<Cluster>,
    version: u32,
    old_excluded: &BTreeSet<TargetId>,
    new_excluded: &BTreeSet<TargetId>,
) -> RebuildStats {
    let mut stats = RebuildStats {
        passes: 1,
        ..RebuildStats::default()
    };
    push_map(sim, cluster, version, new_excluded).await;
    let old_map = map_with(cluster, old_excluded);
    let new_map = map_with(cluster, new_excluded);
    let throttle = Semaphore::new(cluster.cfg.rebuild_inflight.max(1) as usize);

    for (cont, oid, class, chunk_size) in cluster.registered_objects() {
        let protected = matches!(
            class,
            ObjectClass::Replicated { .. } | ObjectClass::ErasureCoded { .. }
        );
        let Some(chunk_size) = chunk_size else {
            continue;
        };
        if !protected {
            continue; // unprotected shards on a dead target are just lost
        }
        stats.objects_scanned += 1;
        let old_layout = place(oid, class, &old_map);
        let new_layout = place(oid, class, &new_map);
        if old_layout.shards == new_layout.shards {
            continue;
        }
        let gw = class.group_width();
        let width = new_layout.width();
        let group_count = (width / gw).max(1);
        let moved: Vec<u32> = (0..width)
            .filter(|&s| old_layout.target_of(s) != new_layout.target_of(s))
            .collect();

        for &s in &moved {
            stats.shards_moved += 1;
            let g = s / gw;
            let group = g * gw..(g + 1) * gw;
            // donors: group members that stayed put on live targets
            let donors: Vec<u32> = group
                .clone()
                .filter(|&d| {
                    d != s
                        && old_layout.target_of(d) == new_layout.target_of(d)
                        && !new_map.is_excluded(new_layout.target_of(d))
                })
                .collect();
            let Some(&lister) = donors.first() else {
                stats.chunks_skipped += 1;
                continue;
            };
            // every group member holds a piece of every chunk in the
            // group, so one donor's dkey listing enumerates them all
            let dest_engine = new_layout.target_of(s) / cluster.cfg.targets_per_engine;
            let listed = engine_rpc(
                sim,
                cluster,
                dest_engine,
                new_layout.target_of(lister),
                Request::ListDkeys {
                    target: new_layout.target_of(lister) % cluster.cfg.targets_per_engine,
                    cont,
                    oid,
                },
            )
            .await;
            let Some(Response::Dkeys(dkeys)) = listed else {
                stats.chunks_skipped += 1;
                continue;
            };
            let chunks: Vec<u64> = dkeys
                .iter()
                .filter_map(|d| d.as_slice().try_into().ok().map(u64::from_be_bytes))
                .filter(|&c| group_of_chunk(oid, c, group_count) == g)
                .collect();
            let new_targets: Vec<TargetId> = (0..width).map(|i| new_layout.target_of(i)).collect();
            let futs: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let sim2 = sim.clone();
                    let cluster = Rc::clone(cluster);
                    let throttle = throttle.clone();
                    let group = group.clone();
                    let new_targets = new_targets.clone();
                    let donors = donors.clone();
                    async move {
                        let _slot = throttle.acquire().await;
                        repair_chunk(
                            &sim2,
                            &cluster,
                            cont,
                            oid,
                            class,
                            chunk_size,
                            chunk,
                            s,
                            group,
                            &donors,
                            &new_targets,
                        )
                        .await
                    }
                })
                .collect();
            for r in join_all(sim, futs).await {
                match r {
                    Some(bytes) => {
                        stats.chunks_repaired += 1;
                        stats.bytes_moved += bytes;
                    }
                    None => stats.chunks_skipped += 1,
                }
            }
        }
    }
    stats
}

/// Targeted self-healing of one reported-bad chunk copy: re-derive the
/// chunk from the surviving group members (replica copy or EC
/// reconstruction) and overwrite the rotten copy at a fresh epoch, so the
/// damaged extent is shadowed and never served again. Unlike a rebuild
/// pass this touches exactly one chunk on one target. Returns whether the
/// repair landed.
pub(crate) async fn repair_corruption(
    sim: &Sim,
    cluster: &Rc<Cluster>,
    report: CorruptionReport,
) -> bool {
    let Some((class, chunk_size)) = cluster
        .registered_objects()
        .into_iter()
        .find(|&(c, o, _, _)| c == report.cont && o == report.oid)
        .map(|(_, _, class, cs)| (class, cs))
    else {
        return false; // unknown object: nothing to repair from
    };
    let Some(chunk_size) = chunk_size else {
        return false;
    };
    if !matches!(
        class,
        ObjectClass::Replicated { .. } | ObjectClass::ErasureCoded { .. }
    ) {
        return false; // unprotected: no redundancy to heal from
    }
    let map = cluster.pool_map().clone();
    let layout = place(report.oid, class, &map);
    let width = layout.width();
    let gw = class.group_width();
    let group_count = (width / gw).max(1);
    // resolve the chunk's group first, then look for the reported target
    // inside it — placement may park shards of several groups on one
    // target, and only the shard in this chunk's group holds its extent
    let g = group_of_chunk(report.oid, report.chunk, group_count);
    let group = g * gw..(g + 1) * gw;
    let Some(shard) = group
        .clone()
        .find(|&s| layout.target_of(s) == report.target)
    else {
        return false; // the layout moved on; a rebuild pass owns it now
    };
    let donors: Vec<u32> = group
        .clone()
        .filter(|&d| d != shard && !map.is_excluded(layout.target_of(d)))
        .collect();
    if donors.is_empty() {
        return false;
    }
    let targets: Vec<TargetId> = (0..width).map(|i| layout.target_of(i)).collect();
    repair_chunk(
        sim,
        cluster,
        report.cont,
        report.oid,
        class,
        chunk_size,
        report.chunk,
        shard,
        group,
        &donors,
        &targets,
    )
    .await
    .is_some()
}
