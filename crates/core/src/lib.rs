//! # daos-core — the DAOS engine, pool service and client library
//!
//! This crate is the simulated equivalent of `daos_engine` + `libdaos`:
//!
//! * [`engine`] — a DAOS server process: per-target service streams
//!   (xstreams) executing VOS operations against storage media, fed by an
//!   OFI-style RPC endpoint.
//! * [`pool`] — the pool service: pool/container metadata replicated with
//!   RAFT across a replica set of engines (the paper's "RAFT-based
//!   consensus algorithm for distributed, transactional indexing").
//!   Control-plane operations (connect, container create/open/destroy) are
//!   proposed to the leader and acknowledged only once committed.
//! * [`client`] — `libdaos` for applications: pool/container handles and
//!   object APIs (key-value and byte-array) that compute placement
//!   client-side and talk straight to the engines holding each shard.
//! * [`cluster`] — a testbed builder wiring fabric, engines, media and the
//!   pool service together (defaults model NEXTGenIO: 8 dual-engine
//!   servers, Optane DCPMM, 100 Gb/s fabric).
//!
//! Everything above the fabric is real protocol logic; only hardware time
//! is simulated.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

pub mod client;
pub mod cluster;
pub mod engine;
pub mod pool;
pub mod proto;
pub mod rebuild;

pub use client::{
    ArrayHandle, ContainerHandle, DampStats, DaosClient, KvHandle, ObjectHandle, PoolHandle,
    RetryPolicy,
};
pub use cluster::{Cluster, ClusterConfig, CorruptionStats};
pub use engine::{AdmissionStats, Engine, EngineConfig};
pub use pool::{HeartbeatConfig, PoolOp, PoolState};
pub use proto::{DaosError, Request, Response};
pub use rebuild::{CorruptionReport, RebuildStats};

/// Container id within a pool.
pub type ContId = u64;
