//! The pool service: pool/container metadata replicated with RAFT.
//!
//! A replica set of engines (3 by default) each runs a [`daos_raft::Raft`]
//! instance driven by a periodic tick task. Control-plane requests arriving
//! at an engine are forwarded to its replica; the leader proposes the
//! operation and replies only once the entry commits and applies, giving
//! the transactional semantics DAOS's service layer provides. Followers
//! answer `NotLeader` with a hint so clients can re-target.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use daos_fabric::{Endpoint, Fabric, NodeId};
use daos_placement::TargetId;
use daos_raft::{Apply, Config as RaftConfig, Message, Raft, Role};
use daos_sim::executor::join_all;
use daos_sim::time::SimDuration;
use daos_sim::Sim;

use crate::engine::ControlQueue;
use crate::proto::{DaosError, Request, Response};
use crate::rebuild::{CorruptionHook, CorruptionReport};
use crate::ContId;

/// Replicated pool-service commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolOp {
    Connect,
    ContCreate(ContId),
    ContOpen(ContId),
    ContDestroy(ContId),
    /// Exclude targets from the pool map (failure detector or admin).
    Exclude(Vec<TargetId>),
    /// Re-admit previously excluded targets.
    Reintegrate(Vec<TargetId>),
}

/// The replicated state machine: the pool's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolState {
    pub containers: BTreeSet<ContId>,
    pub connections: u64,
    /// Targets excluded from placement; the authoritative pool map.
    pub excluded: BTreeSet<TargetId>,
    /// Pool-map version, bumped once per exclusion/reintegration batch.
    pub map_version: u32,
}

impl Default for PoolState {
    fn default() -> Self {
        PoolState {
            containers: BTreeSet::new(),
            connections: 0,
            excluded: BTreeSet::new(),
            // matches PoolMap::new so client caches and the service agree
            // on the healthy-map version
            map_version: 1,
        }
    }
}

impl PoolState {
    /// Apply one committed op; the result is what the leader replies.
    /// Must be deterministic — every replica runs it.
    pub fn apply(&mut self, op: &PoolOp, engines: u32, targets_per_engine: u32) -> Response {
        match op {
            PoolOp::Connect => {
                self.connections += 1;
                Response::Connected {
                    engines,
                    targets_per_engine,
                }
            }
            PoolOp::ContCreate(c) => {
                if self.containers.insert(*c) {
                    Response::Ok
                } else {
                    Response::Err(DaosError::ContainerExists(*c))
                }
            }
            PoolOp::ContOpen(c) => {
                if self.containers.contains(c) {
                    Response::Connected {
                        engines,
                        targets_per_engine,
                    }
                } else {
                    Response::Err(DaosError::NoContainer(*c))
                }
            }
            PoolOp::ContDestroy(c) => {
                if self.containers.remove(c) {
                    Response::Ok
                } else {
                    Response::Err(DaosError::NoContainer(*c))
                }
            }
            PoolOp::Exclude(ts) => {
                let mut changed = false;
                for &t in ts {
                    changed |= self.excluded.insert(t);
                }
                if changed {
                    self.map_version += 1;
                }
                self.map_info()
            }
            PoolOp::Reintegrate(ts) => {
                let mut changed = false;
                for t in ts {
                    changed |= self.excluded.remove(t);
                }
                if changed {
                    self.map_version += 1;
                }
                self.map_info()
            }
        }
    }

    /// The current map as a wire response.
    pub fn map_info(&self) -> Response {
        Response::PoolMapInfo {
            version: self.map_version,
            excluded: self.excluded.iter().copied().collect(),
        }
    }

    /// Serialise for RAFT snapshots.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(32 + self.containers.len() * 8 + self.excluded.len() * 8);
        v.extend_from_slice(&self.connections.to_le_bytes());
        v.extend_from_slice(&(self.map_version as u64).to_le_bytes());
        v.extend_from_slice(&(self.containers.len() as u64).to_le_bytes());
        for c in &self.containers {
            v.extend_from_slice(&c.to_le_bytes());
        }
        v.extend_from_slice(&(self.excluded.len() as u64).to_le_bytes());
        for t in &self.excluded {
            v.extend_from_slice(&(*t as u64).to_le_bytes());
        }
        v
    }

    /// Restore from a snapshot produced by [`PoolState::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> PoolState {
        if data.len() < 32 {
            return PoolState::default();
        }
        // INVARIANT: slices are exactly 8 bytes by construction, so try_into
        // to [u8; 8] cannot fail (length is checked before each region).
        let rd = |i: usize| u64::from_le_bytes(data[i..i + 8].try_into().unwrap());
        let connections = rd(0);
        let map_version = rd(8) as u32;
        let n = rd(16) as usize;
        let containers = (0..n).map(|i| rd(24 + i * 8)).collect();
        let e_base = 24 + n * 8;
        let n_excl = rd(e_base) as usize;
        let excluded = (0..n_excl)
            .map(|i| rd(e_base + 8 + i * 8) as TargetId)
            .collect();
        PoolState {
            containers,
            connections,
            excluded,
            map_version,
        }
    }
}

/// RAFT message on the wire (sender id + payload).
pub type RaftWire = (u64, Message<PoolOp>);

/// One pool-service replica co-located with an engine.
pub struct PoolReplica {
    raft_id: u64,
    raft: RefCell<Raft<PoolOp>>,
    state: RefCell<PoolState>,
    pending: RefCell<BTreeMap<u64, daos_sim::sync::OneshotSender<Response>>>,
    raft_ep: Rc<Endpoint<RaftWire, ()>>,
    /// raft id -> endpoint of that replica (filled once all are built).
    peers: RefCell<BTreeMap<u64, Rc<Endpoint<RaftWire, ()>>>>,
    node: NodeId,
    engines: u32,
    targets_per_engine: u32,
    /// Invoked (with the post-apply state) when an exclusion or
    /// reintegration commits on the current leader — the hook the testbed
    /// uses to kick off rebuild.
    #[allow(clippy::type_complexity)]
    on_map_change: RefCell<Option<Box<dyn Fn(&Sim, &PoolOp, &PoolState)>>>,
    /// Invoked when a client reports a checksum-failed chunk copy — the
    /// hook the testbed uses to kick off a targeted repair.
    on_corruption: RefCell<Option<CorruptionHook>>,
}

impl PoolReplica {
    /// Current role (tests / introspection).
    pub fn role(&self) -> Role {
        self.raft.borrow().role()
    }
    /// Leader hint as an engine-replica raft id.
    pub fn leader_hint(&self) -> Option<u64> {
        self.raft.borrow().leader_hint()
    }
    /// The replicated state (for assertions).
    pub fn state(&self) -> PoolState {
        self.state.borrow().clone()
    }
    /// Install the map-change hook, invoked on every applied pool op.
    pub fn set_on_map_change(&self, f: impl Fn(&Sim, &PoolOp, &PoolState) + 'static) {
        *self.on_map_change.borrow_mut() = Some(Box::new(f));
    }
    /// Install the corruption-report hook, invoked when an engine reports
    /// checksum corruption.
    pub fn set_on_corruption(&self, f: impl Fn(&Sim, CorruptionReport) + 'static) {
        *self.on_corruption.borrow_mut() = Some(Box::new(f));
    }

    fn dispatch(self: &Rc<Self>, sim: &Sim, envs: Vec<daos_raft::Envelope<PoolOp>>) {
        for env in envs {
            let peers = self.peers.borrow();
            let Some(ep) = peers.get(&env.to) else {
                continue;
            };
            let ep = Rc::clone(ep);
            let from_node = self.node;
            let me = self.raft_id;
            let s = sim.clone();
            sim.spawn(async move {
                // fire-and-forget; the receiver acks immediately
                let _ = ep.call(&s, from_node, (me, env.msg), 0).await;
            });
        }
    }

    fn harvest(self: &Rc<Self>, sim: &Sim, applies: Vec<Apply<PoolOp>>) {
        for ev in applies {
            match ev {
                Apply::Committed(entry) => {
                    let rsp = self.state.borrow_mut().apply(
                        &entry.cmd,
                        self.engines,
                        self.targets_per_engine,
                    );
                    if let Some(tx) = self.pending.borrow_mut().remove(&entry.index) {
                        tx.send(rsp);
                    }
                    // fire the rebuild hook exactly once across the replica
                    // set: on whichever replica is currently leading
                    if matches!(entry.cmd, PoolOp::Exclude(_) | PoolOp::Reintegrate(_))
                        && self.raft.borrow().role() == Role::Leader
                    {
                        if let Some(f) = self.on_map_change.borrow().as_ref() {
                            f(sim, &entry.cmd, &self.state.borrow());
                        }
                    }
                }
                Apply::Restore(snap) => {
                    *self.state.borrow_mut() = PoolState::from_bytes(&snap.data);
                }
            }
        }
    }

    fn handle_control(
        self: &Rc<Self>,
        sim: &Sim,
        req: Request,
        reply: daos_sim::sync::OneshotSender<Response>,
    ) {
        let op = match req {
            Request::PoolConnect => PoolOp::Connect,
            Request::ContCreate { cont } => PoolOp::ContCreate(cont),
            Request::ContOpen { cont } => PoolOp::ContOpen(cont),
            Request::ContDestroy { cont } => PoolOp::ContDestroy(cont),
            // read-only: the leader answers straight from applied state
            Request::PoolQuery => {
                let rsp = if self.raft.borrow().role() == Role::Leader {
                    self.state.borrow().map_info()
                } else {
                    Response::Err(DaosError::NotLeader {
                        hint: self.raft.borrow().leader_hint(),
                    })
                };
                reply.send(rsp);
                return;
            }
            Request::PoolExclude { targets } => PoolOp::Exclude(targets),
            Request::PoolReintegrate { targets } => PoolOp::Reintegrate(targets),
            // Advisory, not replicated state: whichever replica gets the
            // report acknowledges and kicks the repair hook directly. A
            // report lost to a crash is harmless — the next verified read
            // or scrub pass of the bad copy re-reports it.
            Request::ReportCorrupt {
                cont,
                oid,
                chunk,
                target,
            } => {
                reply.send(Response::Ok);
                if let Some(f) = self.on_corruption.borrow().as_ref() {
                    f(
                        sim,
                        CorruptionReport {
                            cont,
                            oid,
                            chunk,
                            target,
                        },
                    );
                }
                return;
            }
            other => {
                reply.send(Response::Err(DaosError::Other(format!(
                    "not a control op: {other:?}"
                ))));
                return;
            }
        };
        let mut raft = self.raft.borrow_mut();
        match raft.propose(op) {
            Ok((index, outs)) => {
                drop(raft);
                self.pending.borrow_mut().insert(index, reply);
                self.dispatch(sim, outs);
                let applies = self.raft.borrow_mut().take_applies();
                drop_if_empty(applies, |a| self.harvest(sim, a));
            }
            Err(nl) => {
                reply.send(Response::Err(DaosError::NotLeader { hint: nl.hint }));
            }
        }
    }
}

fn drop_if_empty<T>(v: Vec<T>, f: impl FnOnce(Vec<T>)) {
    if !v.is_empty() {
        f(v)
    }
}

/// Failure-detector tuning.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// How often the leader pings every engine.
    pub interval: SimDuration,
    /// Per-ping deadline; no answer within it counts as a miss.
    pub timeout: SimDuration,
    /// Consecutive misses before the engine's targets are excluded.
    pub suspect: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: SimDuration::from_ms(10),
            timeout: SimDuration::from_ms(2),
            suspect: 3,
        }
    }
}

/// Build and start the pool service across `members`:
/// `(raft_id, fabric node, control queue)` per replica.
///
/// `engine_eps` lists every engine's RPC endpoint `(engine index,
/// endpoint)`; the current leader heartbeats them all, gossiping the map
/// version and proposing exclusion after `hb.suspect` consecutive misses.
///
/// Returns the replicas (index-aligned with `members`).
#[allow(clippy::too_many_arguments)]
pub fn spawn_pool_service(
    sim: &Sim,
    fabric: &Rc<Fabric>,
    members: Vec<(u64, NodeId, ControlQueue)>,
    engine_eps: Vec<(u32, Rc<Endpoint<Request, Response>>)>,
    engines: u32,
    targets_per_engine: u32,
    tick: SimDuration,
    hb: HeartbeatConfig,
) -> Vec<Rc<PoolReplica>> {
    let ids: Vec<u64> = members.iter().map(|(id, _, _)| *id).collect();
    let replicas: Vec<Rc<PoolReplica>> = members
        .iter()
        .map(|(id, node, _)| {
            Rc::new(PoolReplica {
                raft_id: *id,
                raft: RefCell::new(Raft::new(RaftConfig::new(*id, ids.clone()), 0xDA05)),
                state: RefCell::new(PoolState::default()),
                pending: RefCell::new(BTreeMap::new()),
                raft_ep: Endpoint::bind(Rc::clone(fabric), *node),
                peers: RefCell::new(BTreeMap::new()),
                node: *node,
                engines,
                targets_per_engine,
                on_map_change: RefCell::new(None),
                on_corruption: RefCell::new(None),
            })
        })
        .collect();

    // cross-wire peer endpoints
    for r in &replicas {
        let mut peers = r.peers.borrow_mut();
        for other in &replicas {
            peers.insert(other.raft_id, Rc::clone(&other.raft_ep));
        }
    }

    // driver task per replica
    for (i, r) in replicas.iter().enumerate() {
        let r = Rc::clone(r);
        let control = members[i].2.clone();
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                // 1. control requests from the engine front-end
                while let Some((req, reply)) = control.try_recv() {
                    r.handle_control(&s, req, reply);
                }
                // 2. incoming raft traffic
                while let Some(inc) = r.raft_ep.try_serve() {
                    let (from, msg) = inc.req.clone();
                    inc.respond((), 0);
                    let outs = r.raft.borrow_mut().step(from, msg);
                    r.dispatch(&s, outs);
                    let applies = r.raft.borrow_mut().take_applies();
                    r.harvest(&s, applies);
                }
                // 3. logical clock tick
                let outs = r.raft.borrow_mut().tick();
                r.dispatch(&s, outs);
                let applies = r.raft.borrow_mut().take_applies();
                r.harvest(&s, applies);
                // 4. compaction
                {
                    let mut raft = r.raft.borrow_mut();
                    if raft.wants_snapshot() {
                        let data = r.state.borrow().to_bytes();
                        raft.compact(data);
                    }
                }
                s.sleep(tick).await;
            }
        });
    }

    // Failure detector: every replica runs the loop, but only the current
    // leader actually pings. Pings double as gossip — they carry the map
    // version and each engine's excluded local targets, which is how a
    // restarted engine relearns what it must reject.
    for r in &replicas {
        let r = Rc::clone(r);
        let eps = engine_eps.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let mut misses: BTreeMap<u32, u32> = BTreeMap::new();
            let mut proposed: BTreeSet<u32> = BTreeSet::new();
            loop {
                s.sleep(hb.interval).await;
                if r.role() != Role::Leader {
                    misses.clear();
                    proposed.clear();
                    continue;
                }
                let (version, excluded) = {
                    let st = r.state.borrow();
                    (st.map_version, st.excluded.clone())
                };
                let futs: Vec<_> = eps
                    .iter()
                    .map(|(idx, ep)| {
                        let idx = *idx;
                        let ep = Rc::clone(ep);
                        let from = r.node;
                        let s = s.clone();
                        let local: Vec<u32> = excluded
                            .iter()
                            .filter(|&&t| t / targets_per_engine == idx)
                            .map(|&t| t % targets_per_engine)
                            .collect();
                        async move {
                            let req = Request::Ping {
                                version,
                                excluded: local,
                            };
                            let ok = ep.call_deadline(&s, from, req, 0, hb.timeout).await.is_ok();
                            (idx, ok)
                        }
                    })
                    .collect();
                for (idx, ok) in join_all(&s, futs).await {
                    if ok {
                        misses.insert(idx, 0);
                        proposed.remove(&idx);
                        continue;
                    }
                    let m = misses.entry(idx).or_insert(0);
                    *m += 1;
                    let dark: Vec<TargetId> = (idx * targets_per_engine
                        ..(idx + 1) * targets_per_engine)
                        .filter(|t| !excluded.contains(t))
                        .collect();
                    if *m >= hb.suspect && !dark.is_empty() && proposed.insert(idx) {
                        let (tx, _rx) = daos_sim::oneshot();
                        r.handle_control(&s, Request::PoolExclude { targets: dark }, tx);
                    }
                }
            }
        });
    }
    replicas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_state_apply_semantics() {
        let mut st = PoolState::default();
        assert!(matches!(
            st.apply(&PoolOp::Connect, 4, 8),
            Response::Connected {
                engines: 4,
                targets_per_engine: 8
            }
        ));
        assert!(st.apply(&PoolOp::ContCreate(1), 4, 8).ok().is_ok());
        assert_eq!(
            st.apply(&PoolOp::ContCreate(1), 4, 8).ok(),
            Err(DaosError::ContainerExists(1))
        );
        assert!(st.apply(&PoolOp::ContOpen(1), 4, 8).ok().is_ok());
        assert_eq!(
            st.apply(&PoolOp::ContOpen(9), 4, 8).ok(),
            Err(DaosError::NoContainer(9))
        );
        assert!(st.apply(&PoolOp::ContDestroy(1), 4, 8).ok().is_ok());
        assert_eq!(
            st.apply(&PoolOp::ContDestroy(1), 4, 8).ok(),
            Err(DaosError::NoContainer(1))
        );
    }

    #[test]
    fn pool_state_snapshot_round_trip() {
        let mut st = PoolState::default();
        st.apply(&PoolOp::Connect, 1, 1);
        for c in [3u64, 7, 9] {
            st.apply(&PoolOp::ContCreate(c), 1, 1);
        }
        let bytes = st.to_bytes();
        let back = PoolState::from_bytes(&bytes);
        assert_eq!(st, back);
        assert_eq!(PoolState::from_bytes(&[]), PoolState::default());
    }
}
