//! The pool service: pool/container metadata replicated with RAFT.
//!
//! A replica set of engines (3 by default) each runs a [`daos_raft::Raft`]
//! instance driven by a periodic tick task. Control-plane requests arriving
//! at an engine are forwarded to its replica; the leader proposes the
//! operation and replies only once the entry commits and applies, giving
//! the transactional semantics DAOS's service layer provides. Followers
//! answer `NotLeader` with a hint so clients can re-target.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use daos_fabric::{Endpoint, Fabric, NodeId};
use daos_raft::{Apply, Config as RaftConfig, Message, Raft, Role};
use daos_sim::time::SimDuration;
use daos_sim::Sim;

use crate::engine::ControlQueue;
use crate::proto::{DaosError, Request, Response};
use crate::ContId;

/// Replicated pool-service commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolOp {
    Connect,
    ContCreate(ContId),
    ContOpen(ContId),
    ContDestroy(ContId),
}

/// The replicated state machine: the pool's metadata.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolState {
    pub containers: BTreeSet<ContId>,
    pub connections: u64,
}

impl PoolState {
    /// Apply one committed op; the result is what the leader replies.
    /// Must be deterministic — every replica runs it.
    pub fn apply(&mut self, op: &PoolOp, engines: u32, targets_per_engine: u32) -> Response {
        match op {
            PoolOp::Connect => {
                self.connections += 1;
                Response::Connected {
                    engines,
                    targets_per_engine,
                }
            }
            PoolOp::ContCreate(c) => {
                if self.containers.insert(*c) {
                    Response::Ok
                } else {
                    Response::Err(DaosError::ContainerExists(*c))
                }
            }
            PoolOp::ContOpen(c) => {
                if self.containers.contains(c) {
                    Response::Connected {
                        engines,
                        targets_per_engine,
                    }
                } else {
                    Response::Err(DaosError::NoContainer(*c))
                }
            }
            PoolOp::ContDestroy(c) => {
                if self.containers.remove(c) {
                    Response::Ok
                } else {
                    Response::Err(DaosError::NoContainer(*c))
                }
            }
        }
    }

    /// Serialise for RAFT snapshots.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16 + self.containers.len() * 8);
        v.extend_from_slice(&self.connections.to_le_bytes());
        v.extend_from_slice(&(self.containers.len() as u64).to_le_bytes());
        for c in &self.containers {
            v.extend_from_slice(&c.to_le_bytes());
        }
        v
    }

    /// Restore from a snapshot produced by [`PoolState::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> PoolState {
        if data.len() < 16 {
            return PoolState::default();
        }
        let rd = |i: usize| u64::from_le_bytes(data[i..i + 8].try_into().unwrap());
        let connections = rd(0);
        let n = rd(8) as usize;
        let containers = (0..n).map(|i| rd(16 + i * 8)).collect();
        PoolState {
            containers,
            connections,
        }
    }
}

/// RAFT message on the wire (sender id + payload).
pub type RaftWire = (u64, Message<PoolOp>);

/// One pool-service replica co-located with an engine.
pub struct PoolReplica {
    raft_id: u64,
    raft: RefCell<Raft<PoolOp>>,
    state: RefCell<PoolState>,
    pending: RefCell<BTreeMap<u64, daos_sim::sync::OneshotSender<Response>>>,
    raft_ep: Rc<Endpoint<RaftWire, ()>>,
    /// raft id -> endpoint of that replica (filled once all are built).
    peers: RefCell<BTreeMap<u64, Rc<Endpoint<RaftWire, ()>>>>,
    node: NodeId,
    engines: u32,
    targets_per_engine: u32,
}

impl PoolReplica {
    /// Current role (tests / introspection).
    pub fn role(&self) -> Role {
        self.raft.borrow().role()
    }
    /// Leader hint as an engine-replica raft id.
    pub fn leader_hint(&self) -> Option<u64> {
        self.raft.borrow().leader_hint()
    }
    /// The replicated state (for assertions).
    pub fn state(&self) -> PoolState {
        self.state.borrow().clone()
    }

    fn dispatch(self: &Rc<Self>, sim: &Sim, envs: Vec<daos_raft::Envelope<PoolOp>>) {
        for env in envs {
            let peers = self.peers.borrow();
            let Some(ep) = peers.get(&env.to) else {
                continue;
            };
            let ep = Rc::clone(ep);
            let from_node = self.node;
            let me = self.raft_id;
            let s = sim.clone();
            sim.spawn(async move {
                // fire-and-forget; the receiver acks immediately
                let _ = ep.call(&s, from_node, (me, env.msg), 0).await;
            });
        }
    }

    fn harvest(self: &Rc<Self>, applies: Vec<Apply<PoolOp>>) {
        for ev in applies {
            match ev {
                Apply::Committed(entry) => {
                    let rsp = self.state.borrow_mut().apply(
                        &entry.cmd,
                        self.engines,
                        self.targets_per_engine,
                    );
                    if let Some(tx) = self.pending.borrow_mut().remove(&entry.index) {
                        tx.send(rsp);
                    }
                }
                Apply::Restore(snap) => {
                    *self.state.borrow_mut() = PoolState::from_bytes(&snap.data);
                }
            }
        }
    }

    fn handle_control(
        self: &Rc<Self>,
        sim: &Sim,
        req: Request,
        reply: daos_sim::sync::OneshotSender<Response>,
    ) {
        let op = match req {
            Request::PoolConnect => PoolOp::Connect,
            Request::ContCreate { cont } => PoolOp::ContCreate(cont),
            Request::ContOpen { cont } => PoolOp::ContOpen(cont),
            Request::ContDestroy { cont } => PoolOp::ContDestroy(cont),
            other => {
                reply.send(Response::Err(DaosError::Other(format!(
                    "not a control op: {other:?}"
                ))));
                return;
            }
        };
        let mut raft = self.raft.borrow_mut();
        match raft.propose(op) {
            Ok((index, outs)) => {
                drop(raft);
                self.pending.borrow_mut().insert(index, reply);
                self.dispatch(sim, outs);
                let applies = self.raft.borrow_mut().take_applies();
                drop_if_empty(applies, |a| self.harvest(a));
            }
            Err(nl) => {
                reply.send(Response::Err(DaosError::NotLeader { hint: nl.hint }));
            }
        }
    }
}

fn drop_if_empty<T>(v: Vec<T>, f: impl FnOnce(Vec<T>)) {
    if !v.is_empty() {
        f(v)
    }
}

/// Build and start the pool service across `members`:
/// `(raft_id, fabric node, control queue)` per replica.
///
/// Returns the replicas (index-aligned with `members`).
pub fn spawn_pool_service(
    sim: &Sim,
    fabric: &Rc<Fabric>,
    members: Vec<(u64, NodeId, ControlQueue)>,
    engines: u32,
    targets_per_engine: u32,
    tick: SimDuration,
) -> Vec<Rc<PoolReplica>> {
    let ids: Vec<u64> = members.iter().map(|(id, _, _)| *id).collect();
    let replicas: Vec<Rc<PoolReplica>> = members
        .iter()
        .map(|(id, node, _)| {
            Rc::new(PoolReplica {
                raft_id: *id,
                raft: RefCell::new(Raft::new(RaftConfig::new(*id, ids.clone()), 0xDA05)),
                state: RefCell::new(PoolState::default()),
                pending: RefCell::new(BTreeMap::new()),
                raft_ep: Endpoint::bind(Rc::clone(fabric), *node),
                peers: RefCell::new(BTreeMap::new()),
                node: *node,
                engines,
                targets_per_engine,
            })
        })
        .collect();

    // cross-wire peer endpoints
    for r in &replicas {
        let mut peers = r.peers.borrow_mut();
        for other in &replicas {
            peers.insert(other.raft_id, Rc::clone(&other.raft_ep));
        }
    }

    // driver task per replica
    for (i, r) in replicas.iter().enumerate() {
        let r = Rc::clone(r);
        let control = members[i].2.clone();
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                // 1. control requests from the engine front-end
                while let Some((req, reply)) = control.try_recv() {
                    r.handle_control(&s, req, reply);
                }
                // 2. incoming raft traffic
                while let Some(inc) = r.raft_ep.try_serve() {
                    let (from, msg) = inc.req.clone();
                    inc.respond((), 0);
                    let outs = r.raft.borrow_mut().step(from, msg);
                    r.dispatch(&s, outs);
                    let applies = r.raft.borrow_mut().take_applies();
                    r.harvest(applies);
                }
                // 3. logical clock tick
                let outs = r.raft.borrow_mut().tick();
                r.dispatch(&s, outs);
                let applies = r.raft.borrow_mut().take_applies();
                r.harvest(applies);
                // 4. compaction
                {
                    let mut raft = r.raft.borrow_mut();
                    if raft.wants_snapshot() {
                        let data = r.state.borrow().to_bytes();
                        raft.compact(data);
                    }
                }
                s.sleep(tick).await;
            }
        });
    }
    replicas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_state_apply_semantics() {
        let mut st = PoolState::default();
        assert!(matches!(st.apply(&PoolOp::Connect, 4, 8), Response::Connected { engines: 4, targets_per_engine: 8 }));
        assert!(st.apply(&PoolOp::ContCreate(1), 4, 8).ok().is_ok());
        assert_eq!(
            st.apply(&PoolOp::ContCreate(1), 4, 8).ok(),
            Err(DaosError::ContainerExists(1))
        );
        assert!(st.apply(&PoolOp::ContOpen(1), 4, 8).ok().is_ok());
        assert_eq!(
            st.apply(&PoolOp::ContOpen(9), 4, 8).ok(),
            Err(DaosError::NoContainer(9))
        );
        assert!(st.apply(&PoolOp::ContDestroy(1), 4, 8).ok().is_ok());
        assert_eq!(
            st.apply(&PoolOp::ContDestroy(1), 4, 8).ok(),
            Err(DaosError::NoContainer(1))
        );
    }

    #[test]
    fn pool_state_snapshot_round_trip() {
        let mut st = PoolState::default();
        st.apply(&PoolOp::Connect, 1, 1);
        for c in [3u64, 7, 9] {
            st.apply(&PoolOp::ContCreate(c), 1, 1);
        }
        let bytes = st.to_bytes();
        let back = PoolState::from_bytes(&bytes);
        assert_eq!(st, back);
        assert_eq!(PoolState::from_bytes(&[]), PoolState::default());
    }
}
