//! Testbed builder: fabric + engines + media + pool service.
//!
//! The default configuration models the paper's NEXTGenIO deployment:
//! 8 server nodes × 2 DAOS engines, each engine owning one socket's
//! 6-DIMM Optane DCPMM interleave set and its own fabric rail (NEXTGenIO
//! nodes have dual Omni-Path), 8 VOS targets per engine, and a 3-replica
//! RAFT pool service.

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use daos_fabric::{Fabric, FabricConfig, NodeId};
use daos_media::{Dcpmm, DcpmmConfig, MediaSet};
use daos_placement::{PoolMap, TargetId};
use daos_sim::time::SimDuration;
use daos_sim::Sim;

use crate::engine::{Engine, EngineConfig};
use crate::pool::{spawn_pool_service, PoolReplica};

/// Full testbed description.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// DAOS server nodes.
    pub server_nodes: u32,
    /// Engines per server (one per socket).
    pub engines_per_node: u32,
    /// VOS targets per engine.
    pub targets_per_engine: u32,
    /// Client nodes attached to the fabric.
    pub client_nodes: u32,
    /// Media behind each engine (one interleave set per socket).
    pub scm: DcpmmConfig,
    /// Interconnect parameters.
    pub fabric: FabricConfig,
    /// Engine service parameters.
    pub engine: EngineConfig,
    /// Pool-service replica count.
    pub svc_replicas: u32,
    /// Pool-service tick interval.
    pub svc_tick: SimDuration,
}

impl ClusterConfig {
    /// The paper's testbed: 8 servers × 2 engines, with `client_nodes`
    /// clients.
    pub fn nextgenio(client_nodes: u32) -> Self {
        ClusterConfig {
            server_nodes: 8,
            engines_per_node: 2,
            targets_per_engine: 8,
            client_nodes,
            scm: DcpmmConfig::default(),
            fabric: FabricConfig::default(),
            engine: EngineConfig::default(),
            svc_replicas: 3,
            svc_tick: SimDuration::from_ms(5),
        }
    }

    /// A small testbed for unit/integration tests (fast to simulate).
    pub fn tiny(client_nodes: u32) -> Self {
        ClusterConfig {
            server_nodes: 2,
            engines_per_node: 1,
            targets_per_engine: 4,
            client_nodes,
            scm: DcpmmConfig::default(),
            fabric: FabricConfig::default(),
            engine: EngineConfig::default(),
            svc_replicas: 1,
            svc_tick: SimDuration::from_ms(1),
        }
    }

    /// Total engine count.
    pub fn engine_count(&self) -> u32 {
        self.server_nodes * self.engines_per_node
    }
}

/// A running simulated DAOS system.
pub struct Cluster {
    pub cfg: ClusterConfig,
    pub fabric: Rc<Fabric>,
    engines: Vec<Rc<Engine>>,
    replicas: Vec<Rc<PoolReplica>>,
    pool_map: RefCell<PoolMap>,
}

impl Cluster {
    /// Build the testbed and start all server tasks.
    ///
    /// Fabric node layout: engines occupy nodes `0..E` (each engine has its
    /// own rail); client node `i` is fabric node `E + i`.
    pub fn build(sim: &Sim, cfg: ClusterConfig) -> Rc<Cluster> {
        let n_engines = cfg.engine_count();
        let fabric = Fabric::new((n_engines + cfg.client_nodes) as usize, cfg.fabric);
        let engines: Vec<Rc<Engine>> = (0..n_engines)
            .map(|i| {
                let scm = Dcpmm::new(&format!("engine{i}.pmem"), cfg.scm);
                let media = MediaSet::scm_only(scm);
                Engine::spawn(
                    sim,
                    Rc::clone(&fabric),
                    i as NodeId,
                    i,
                    media,
                    cfg.targets_per_engine,
                    cfg.engine,
                )
            })
            .collect();

        // pool service on the first `svc_replicas` engines; raft ids are
        // engine index + 1 (raft ids are nonzero by convention)
        let members: Vec<(u64, NodeId, crate::engine::ControlQueue)> = engines
            .iter()
            .take(cfg.svc_replicas.max(1) as usize)
            .map(|e| (e.index() as u64 + 1, e.node(), e.attach_replica()))
            .collect();
        let replicas = spawn_pool_service(
            sim,
            &fabric,
            members,
            n_engines,
            cfg.targets_per_engine,
            cfg.svc_tick,
        );

        let pool_map = RefCell::new(PoolMap::new(n_engines, cfg.targets_per_engine));
        Rc::new(Cluster {
            cfg,
            fabric,
            engines,
            replicas,
            pool_map,
        })
    }

    /// The pool map (placement input).
    pub fn pool_map(&self) -> Ref<'_, PoolMap> {
        self.pool_map.borrow()
    }

    /// Administratively exclude a target (simulated failure / drain);
    /// bumps the map version. Object handles opened afterwards avoid it;
    /// handles opened before read degraded through their protection class.
    pub fn exclude_target(&self, t: TargetId) {
        self.pool_map.borrow_mut().exclude(t);
    }

    /// Reintegrate a previously excluded target.
    pub fn reintegrate_target(&self, t: TargetId) {
        self.pool_map.borrow_mut().reintegrate(t);
    }
    /// All engines.
    pub fn engines(&self) -> &[Rc<Engine>] {
        &self.engines
    }
    /// Engine by index.
    pub fn engine(&self, idx: u32) -> &Rc<Engine> {
        &self.engines[idx as usize]
    }
    /// Pool-service replicas (tests).
    pub fn replicas(&self) -> &[Rc<PoolReplica>] {
        &self.replicas
    }
    /// Engine indices hosting pool-service replicas.
    pub fn svc_engines(&self) -> Vec<u32> {
        (0..self.replicas.len() as u32).collect()
    }

    /// Fabric node of client node `i`.
    pub fn client_node(&self, i: u32) -> NodeId {
        assert!(i < self.cfg.client_nodes, "client node {i} out of range");
        (self.cfg.engine_count() + i) as NodeId
    }

    /// Resolve a global target id to `(engine, local target index)`.
    pub fn resolve_target(&self, t: TargetId) -> (&Rc<Engine>, u32) {
        let e = t / self.cfg.targets_per_engine;
        (&self.engines[e as usize], t % self.cfg.targets_per_engine)
    }

    /// Aggregate bytes written across all VOS targets.
    pub fn total_bytes_written(&self) -> u64 {
        self.engines
            .iter()
            .flat_map(|e| (0..e.target_count()).map(move |t| e.target(t).counters().bytes_written))
            .sum()
    }

    /// Aggregate bytes read across all VOS targets.
    pub fn total_bytes_read(&self) -> u64 {
        self.engines
            .iter()
            .flat_map(|e| (0..e.target_count()).map(move |t| e.target(t).counters().bytes_read))
            .sum()
    }
}
