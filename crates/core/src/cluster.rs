//! Testbed builder: fabric + engines + media + pool service.
//!
//! The default configuration models the paper's NEXTGenIO deployment:
//! 8 server nodes × 2 DAOS engines, each engine owning one socket's
//! 6-DIMM Optane DCPMM interleave set and its own fabric rail (NEXTGenIO
//! nodes have dual Omni-Path), 8 VOS targets per engine, and a 3-replica
//! RAFT pool service.

use std::cell::{Cell, Ref, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use daos_fabric::{Fabric, FabricConfig, NodeId};
use daos_media::{Dcpmm, DcpmmConfig, MediaSet};
use daos_placement::{ObjectClass, ObjectId, PoolMap, TargetId};
use daos_sim::time::SimDuration;
use daos_sim::{FaultAction, FaultInjector, FaultPlan, Sim};

use crate::engine::{Engine, EngineConfig};
use crate::pool::{spawn_pool_service, HeartbeatConfig, PoolOp, PoolReplica, PoolState};
use crate::rebuild::{self, CorruptionReport, RebuildStats};
use crate::ContId;

/// `(cont, oid) → (object class, array chunk size)` for every object
/// opened through a cluster.
type ObjectRegistry = BTreeMap<(ContId, ObjectId), (ObjectClass, Option<u64>)>;

/// Full testbed description.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// DAOS server nodes.
    pub server_nodes: u32,
    /// Engines per server (one per socket).
    pub engines_per_node: u32,
    /// VOS targets per engine.
    pub targets_per_engine: u32,
    /// Client nodes attached to the fabric.
    pub client_nodes: u32,
    /// Media behind each engine (one interleave set per socket).
    pub scm: DcpmmConfig,
    /// Interconnect parameters.
    pub fabric: FabricConfig,
    /// Engine service parameters.
    pub engine: EngineConfig,
    /// Pool-service replica count.
    pub svc_replicas: u32,
    /// Pool-service tick interval.
    pub svc_tick: SimDuration,
    /// Failure-detector (heartbeat) tuning.
    pub heartbeat: HeartbeatConfig,
    /// Concurrent repair RPCs per rebuild pass — the rebuild bandwidth
    /// knob: higher drains faster but steals more engine bandwidth from
    /// foreground I/O.
    pub rebuild_inflight: u32,
}

impl ClusterConfig {
    /// The paper's testbed: 8 servers × 2 engines, with `client_nodes`
    /// clients.
    pub fn nextgenio(client_nodes: u32) -> Self {
        ClusterConfig {
            server_nodes: 8,
            engines_per_node: 2,
            targets_per_engine: 8,
            client_nodes,
            scm: DcpmmConfig::default(),
            fabric: FabricConfig::default(),
            engine: EngineConfig::default(),
            svc_replicas: 3,
            svc_tick: SimDuration::from_ms(5),
            heartbeat: HeartbeatConfig::default(),
            rebuild_inflight: 4,
        }
    }

    /// A small testbed for unit/integration tests (fast to simulate).
    pub fn tiny(client_nodes: u32) -> Self {
        ClusterConfig {
            server_nodes: 2,
            engines_per_node: 1,
            targets_per_engine: 4,
            client_nodes,
            scm: DcpmmConfig::default(),
            fabric: FabricConfig::default(),
            engine: EngineConfig::default(),
            svc_replicas: 1,
            svc_tick: SimDuration::from_ms(1),
            heartbeat: HeartbeatConfig {
                interval: SimDuration::from_ms(2),
                timeout: SimDuration::from_ms(1),
                suspect: 3,
            },
            rebuild_inflight: 4,
        }
    }

    /// Total engine count.
    pub fn engine_count(&self) -> u32 {
        self.server_nodes * self.engines_per_node
    }
}

/// What the end-to-end integrity pipeline has seen and done: corruption
/// reports arriving at the pool service (from client reads and background
/// scrubbers) and the targeted repairs they triggered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CorruptionStats {
    /// Reports accepted (one per distinct bad copy at a time).
    pub reported: u64,
    /// Duplicate reports dropped while a repair for the same copy ran.
    pub duplicates: u64,
    /// Targeted repairs that landed.
    pub repairs_ok: u64,
    /// Targeted repairs that failed (no live donor, RPC failure).
    pub repairs_failed: u64,
    /// Extents rotted by injected [`FaultAction::BitRot`] events.
    pub rot_injected: u64,
    /// Virtual instant (ns) the first report was accepted, if any —
    /// detection latency relative to the injection instant.
    pub first_report_ns: Option<u64>,
}

/// A running simulated DAOS system.
pub struct Cluster {
    pub cfg: ClusterConfig,
    pub fabric: Rc<Fabric>,
    engines: Vec<Rc<Engine>>,
    replicas: Vec<Rc<PoolReplica>>,
    pool_map: RefCell<PoolMap>,
    /// Objects opened through this cluster — what a rebuild pass walks.
    /// Real DAOS enumerates object IDs from the VOS trees; the registry
    /// stands in for that scan.
    objects: RefCell<ObjectRegistry>,
    rebuilds_running: Cell<u32>,
    rebuild_stats: RefCell<RebuildStats>,
    repairs_running: Cell<u32>,
    /// Bad copies whose targeted repair is still in flight — the dedupe
    /// set that keeps a hot chunk from spawning a repair per read.
    repairs_inflight: RefCell<BTreeSet<CorruptionReport>>,
    corruption_stats: RefCell<CorruptionStats>,
}

impl Cluster {
    /// Build the testbed and start all server tasks.
    ///
    /// Fabric node layout: engines occupy nodes `0..E` (each engine has its
    /// own rail); client node `i` is fabric node `E + i`.
    pub fn build(sim: &Sim, cfg: ClusterConfig) -> Rc<Cluster> {
        let n_engines = cfg.engine_count();
        let fabric = Fabric::new((n_engines + cfg.client_nodes) as usize, cfg.fabric);
        let engines: Vec<Rc<Engine>> = (0..n_engines)
            .map(|i| {
                let scm = Dcpmm::new(&format!("engine{i}.pmem"), cfg.scm);
                let media = MediaSet::scm_only(scm);
                Engine::spawn(
                    sim,
                    Rc::clone(&fabric),
                    i as NodeId,
                    i,
                    media,
                    cfg.targets_per_engine,
                    cfg.engine,
                )
            })
            .collect();

        // pool service on the first `svc_replicas` engines; raft ids are
        // engine index + 1 (raft ids are nonzero by convention)
        let members: Vec<(u64, NodeId, crate::engine::ControlQueue)> = engines
            .iter()
            .take(cfg.svc_replicas.max(1) as usize)
            .map(|e| (e.index() as u64 + 1, e.node(), e.attach_replica()))
            .collect();
        let engine_eps = engines
            .iter()
            .map(|e| (e.index(), Rc::clone(e.endpoint())))
            .collect();
        let replicas = spawn_pool_service(
            sim,
            &fabric,
            members,
            engine_eps,
            n_engines,
            cfg.targets_per_engine,
            cfg.svc_tick,
            cfg.heartbeat,
        );

        let pool_map = RefCell::new(PoolMap::new(n_engines, cfg.targets_per_engine));
        let cluster = Rc::new(Cluster {
            cfg,
            fabric,
            engines,
            replicas,
            pool_map,
            objects: RefCell::new(BTreeMap::new()),
            rebuilds_running: Cell::new(0),
            rebuild_stats: RefCell::new(RebuildStats::default()),
            repairs_running: Cell::new(0),
            repairs_inflight: RefCell::new(BTreeSet::new()),
            corruption_stats: RefCell::new(CorruptionStats::default()),
        });
        // committed exclusions/reintegrations kick off rebuild on whichever
        // replica leads; the Weak breaks the Rc cycle replica → cluster
        for r in &cluster.replicas {
            let weak = Rc::downgrade(&cluster);
            r.set_on_map_change(move |sim, op, state| {
                if let Some(c) = weak.upgrade() {
                    c.on_map_change(sim, op, state);
                }
            });
        }
        // corruption reports converge on the same targeted-repair pipeline
        // whether a client read tripped on them (via the pool service) or
        // an engine's background scrubber found them locally
        for r in &cluster.replicas {
            let weak = Rc::downgrade(&cluster);
            r.set_on_corruption(move |sim, report| {
                if let Some(c) = weak.upgrade() {
                    c.handle_corruption(sim, report);
                }
            });
        }
        for e in &cluster.engines {
            let weak = Rc::downgrade(&cluster);
            e.set_on_corruption(move |sim, report| {
                if let Some(c) = weak.upgrade() {
                    c.handle_corruption(sim, report);
                }
            });
        }
        cluster
    }

    /// The pool map (placement input).
    pub fn pool_map(&self) -> Ref<'_, PoolMap> {
        self.pool_map.borrow()
    }

    /// Administratively exclude a target (simulated failure / drain);
    /// bumps the map version. Object handles opened afterwards avoid it;
    /// handles opened before read degraded through their protection class.
    pub fn exclude_target(&self, t: TargetId) {
        self.pool_map.borrow_mut().exclude(t);
    }

    /// Reintegrate a previously excluded target.
    pub fn reintegrate_target(&self, t: TargetId) {
        self.pool_map.borrow_mut().reintegrate(t);
    }

    /// Adopt an authoritative `(version, excluded)` snapshot from the pool
    /// service into the client-side map cache; returns whether it changed.
    pub fn sync_pool_map(&self, version: u32, excluded: &[TargetId]) -> bool {
        self.pool_map.borrow_mut().sync(version, excluded)
    }

    /// Record an opened object so rebuild passes can find it.
    pub(crate) fn register_object(&self, cont: ContId, oid: ObjectId, class: ObjectClass) {
        self.objects
            .borrow_mut()
            .entry((cont, oid))
            .or_insert((class, None));
    }

    /// Record an object's array chunk size (arrays are what rebuild moves).
    pub(crate) fn register_array(
        &self,
        cont: ContId,
        oid: ObjectId,
        class: ObjectClass,
        chunk_size: u64,
    ) {
        self.objects
            .borrow_mut()
            .insert((cont, oid), (class, Some(chunk_size)));
    }

    /// Snapshot of the object registry (rebuild input).
    pub(crate) fn registered_objects(&self) -> Vec<(ContId, ObjectId, ObjectClass, Option<u64>)> {
        self.objects
            .borrow()
            .iter()
            .map(|(&(c, o), &(cl, cs))| (c, o, cl, cs))
            .collect()
    }

    /// Map-change hook fired by the leading pool-service replica when an
    /// exclusion/reintegration commits: spawns a background rebuild pass
    /// moving protected shards onto their new homes.
    fn on_map_change(self: &Rc<Self>, sim: &Sim, op: &PoolOp, state: &PoolState) {
        let new_excluded: BTreeSet<TargetId> = state.excluded.clone();
        let mut old_excluded = new_excluded.clone();
        match op {
            PoolOp::Exclude(ts) => {
                for t in ts {
                    old_excluded.remove(t);
                }
            }
            PoolOp::Reintegrate(ts) => {
                old_excluded.extend(ts.iter().copied());
            }
            _ => return,
        }
        if old_excluded == new_excluded {
            return; // idempotent commit: nothing actually changed
        }
        self.rebuilds_running.set(self.rebuilds_running.get() + 1);
        let version = state.map_version;
        let c = Rc::clone(self);
        let s = sim.clone();
        sim.spawn(async move {
            let stats = rebuild::run(&s, &c, version, &old_excluded, &new_excluded).await;
            c.rebuild_stats.borrow_mut().merge(&stats);
            c.rebuilds_running.set(c.rebuilds_running.get() - 1);
        });
    }

    /// One bad-copy report entering the self-healing pipeline: dedupe
    /// against repairs already in flight, then spawn a targeted repair of
    /// that single chunk copy in the background.
    pub(crate) fn handle_corruption(self: &Rc<Self>, sim: &Sim, report: CorruptionReport) {
        if !self.repairs_inflight.borrow_mut().insert(report) {
            self.corruption_stats.borrow_mut().duplicates += 1;
            return;
        }
        {
            let mut st = self.corruption_stats.borrow_mut();
            st.reported += 1;
            st.first_report_ns.get_or_insert(sim.now().as_ns());
        }
        self.repairs_running.set(self.repairs_running.get() + 1);
        let c = Rc::clone(self);
        let s = sim.clone();
        sim.spawn(async move {
            let ok = rebuild::repair_corruption(&s, &c, report).await;
            {
                let mut st = c.corruption_stats.borrow_mut();
                if ok {
                    st.repairs_ok += 1;
                } else {
                    st.repairs_failed += 1;
                }
            }
            // off the in-flight set either way: a failed repair may be
            // re-reported (and succeed) once donors come back
            c.repairs_inflight.borrow_mut().remove(&report);
            c.repairs_running.set(c.repairs_running.get() - 1);
        });
    }

    /// Cumulative corruption-report / targeted-repair statistics.
    pub fn corruption_stats(&self) -> CorruptionStats {
        self.corruption_stats.borrow().clone()
    }

    /// Number of targeted corruption repairs currently in flight.
    pub fn repairs_running(&self) -> u32 {
        self.repairs_running.get()
    }

    /// Wait until no targeted corruption repair is in flight.
    pub async fn quiesce_repairs(&self, sim: &Sim) {
        while self.repairs_running.get() > 0 {
            sim.sleep_ms(1).await;
        }
    }

    /// Number of rebuild passes currently running.
    pub fn rebuilds_running(&self) -> u32 {
        self.rebuilds_running.get()
    }

    /// Cumulative rebuild statistics.
    pub fn rebuild_stats(&self) -> RebuildStats {
        self.rebuild_stats.borrow().clone()
    }

    /// Wait until no rebuild pass is running. Callers that just triggered
    /// an exclusion should first wait for the map version to move (the
    /// pass starts when the exclusion *commits*).
    pub async fn quiesce_rebuild(&self, sim: &Sim) {
        while self.rebuilds_running.get() > 0 {
            sim.sleep_ms(1).await;
        }
    }

    /// Arm a [`FaultPlan`] against this cluster: node indices in the plan
    /// map to engine indices (crash/restart both the engine process and
    /// its fabric port); fabric-wide actions apply to the whole fabric.
    pub fn install_fault_plan(self: &Rc<Self>, sim: &Sim, plan: FaultPlan) -> FaultInjector {
        let weak = Rc::downgrade(self);
        FaultInjector::install(sim, plan, move |s, action| {
            if let Some(c) = weak.upgrade() {
                c.apply_fault(s, action);
            }
        })
    }

    /// Apply one fault action immediately (the fault-plan handler).
    pub fn apply_fault(&self, sim: &Sim, action: FaultAction) {
        match action {
            FaultAction::Crash { node } => {
                if let Some(e) = self.engines.get(node) {
                    e.crash();
                    self.fabric.set_node_down(node as NodeId);
                }
            }
            FaultAction::Restart { node } => {
                if let Some(e) = self.engines.get(node) {
                    e.restart();
                    self.fabric.set_node_up(node as NodeId);
                }
            }
            FaultAction::Partition { a, b } => {
                self.fabric.partition_between(a as NodeId, b as NodeId);
            }
            FaultAction::HealAll => {
                self.fabric.heal_all();
                for e in &self.engines {
                    e.set_corrupt_inflight(0);
                }
            }
            FaultAction::DropRate { ppm } => {
                self.fabric.set_drop_rate(ppm, 0xD20B ^ ppm as u64);
            }
            FaultAction::LatencySpike { extra_ns } => {
                self.fabric
                    .set_extra_latency(SimDuration::from_ns(extra_ns));
            }
            FaultAction::LatencyClear => {
                self.fabric.set_extra_latency(SimDuration::ZERO);
            }
            FaultAction::BitRot {
                target,
                fraction_ppm,
            } => {
                let t = target as TargetId;
                if t < self.cfg.engine_count() * self.cfg.targets_per_engine {
                    let (e, local) = self.resolve_target(t);
                    // seeded from the virtual instant + target so repeated
                    // BitRot events rot different (but reproducible) extents
                    let seed = 0xB17_2077u64 ^ sim.now().as_ns() ^ ((t as u64) << 40);
                    let rotted = e.target(local).inject_bit_rot(fraction_ppm, seed);
                    self.corruption_stats.borrow_mut().rot_injected += rotted;
                }
            }
            FaultAction::CorruptInFlight { ppm } => {
                for e in &self.engines {
                    e.set_corrupt_inflight(ppm);
                }
            }
        }
    }
    /// All engines.
    pub fn engines(&self) -> &[Rc<Engine>] {
        &self.engines
    }
    /// Engine by index.
    pub fn engine(&self, idx: u32) -> &Rc<Engine> {
        &self.engines[idx as usize]
    }
    /// Pool-service replicas (tests).
    pub fn replicas(&self) -> &[Rc<PoolReplica>] {
        &self.replicas
    }
    /// Engine indices hosting pool-service replicas.
    pub fn svc_engines(&self) -> Vec<u32> {
        (0..self.replicas.len() as u32).collect()
    }

    /// Fabric node of client node `i`.
    pub fn client_node(&self, i: u32) -> NodeId {
        assert!(i < self.cfg.client_nodes, "client node {i} out of range");
        (self.cfg.engine_count() + i) as NodeId
    }

    /// Resolve a global target id to `(engine, local target index)`.
    pub fn resolve_target(&self, t: TargetId) -> (&Rc<Engine>, u32) {
        let e = t / self.cfg.targets_per_engine;
        (&self.engines[e as usize], t % self.cfg.targets_per_engine)
    }

    /// Aggregate bytes written across all VOS targets.
    pub fn total_bytes_written(&self) -> u64 {
        self.engines
            .iter()
            .flat_map(|e| (0..e.target_count()).map(move |t| e.target(t).counters().bytes_written))
            .sum()
    }

    /// Aggregate bytes read across all VOS targets.
    pub fn total_bytes_read(&self) -> u64 {
        self.engines
            .iter()
            .flat_map(|e| (0..e.target_count()).map(move |t| e.target(t).counters().bytes_read))
            .sum()
    }
}
