//! The DAOS engine: an RPC server with one service stream (xstream) per
//! VOS target.
//!
//! Each data-plane request is dispatched to the xstream owning its target:
//! the xstream charges a fixed per-RPC CPU cost, executes the VOS operation
//! against the target's media, and replies. One xstream serves one request
//! at a time (Argobots ULTs yield on I/O in real DAOS, but the paper's
//! bulk-I/O workloads behave like FIFO service per target), so per-target
//! queueing — the contention behaviour behind the object-class results —
//! emerges naturally.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

use daos_fabric::{Endpoint, Fabric, NodeId};
use daos_media::MediaSet;
use daos_placement::ObjectId;
use daos_sim::time::SimDuration;
use daos_sim::units::Bandwidth;
use daos_sim::{Pipe, Semaphore, SharedPipe, Sim};
use daos_vos::target::VosConfig;
use daos_vos::VosTarget;

use crate::proto::{wire_csum, wire_csum_segs, DaosError, Request, Response};
use crate::rebuild::{CorruptionHook, CorruptionReport};

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Fixed CPU cost to parse/dispatch/complete one RPC on an xstream.
    pub rpc_cpu: SimDuration,
    /// Per-byte CPU on the serving xstream for data ops (copy into/out of
    /// media buffers, checksumming). This makes the *target* a serial
    /// resource for bulk I/O: a target holding several hot files serialises
    /// their readers — the straggler mechanism that penalises `S1` at
    /// scale.
    pub xstream_copy_bw: Bandwidth,
    /// Effective engine-wide bulk *write* bandwidth: service-core copies,
    /// checksums and PMDK transaction overheads on the update path. Gen-1
    /// DAOS engines on Optane were bound here (~3 GiB/s per engine), well
    /// below the raw interleave-set bandwidth.
    pub bulk_write_bw: Bandwidth,
    /// Effective engine-wide bulk *read* bandwidth (~4x the write path:
    /// no transaction/flush costs).
    pub bulk_read_bw: Bandwidth,
    /// How many distinct objects an engine's combined stream window (DCPMM
    /// write-combining + DRAM VOS-tree cache) tracks before it thrashes.
    /// Sized between S2's and SX's per-engine working sets: at 16 client
    /// nodes (128 files in flight) S1 leaves ~8 objects per engine and S2
    /// ~16 (both fit), while SX leaves ~128 (every access misses).
    pub stream_lru: usize,
    /// Stall for a write landing outside the stream window: the DCPMM
    /// write-combining queue (WPQ) flushes a partial buffer before
    /// admitting the new stream, and the PMDK transaction path re-walks a
    /// cold tree. The stall adds *latency without consuming pipe
    /// capacity*: blocked clients still offer more than the engines'
    /// aggregate bandwidth at high node counts, so a saturated system
    /// delivers full throughput regardless. This asymmetry is the paper's
    /// crossover mechanism: wide classes (`SX`) run slower while the
    /// system is latency-bound ("lower performance for fewer writers")
    /// and win on placement balance once it is bandwidth-bound ("best
    /// write performance for high contention").
    pub write_miss_stall: SimDuration,
    /// Added latency for a read of an object outside the window (cold
    /// VOS-tree descent from SCM).
    pub read_miss_latency: SimDuration,
    /// Bulk-bandwidth amplification for cold reads: uncached descents drag
    /// index pages and scatter-gather state through the service cores.
    pub read_miss_amp: f64,
    /// VOS index cost model shared by this engine's targets.
    pub vos: VosConfig,
    /// Background epoch-aggregation interval (None disables). Aggregation
    /// flattens overwrite history older than `aggregation_retention`,
    /// reclaiming extent-tree records — DAOS's background VOS aggregation
    /// service.
    pub aggregation_interval: Option<SimDuration>,
    /// History younger than this is kept for snapshot readers.
    pub aggregation_retention: SimDuration,
    /// Throughput of the xstream checksum engine (ISA-L-style CRC on the
    /// service cores). Charged per payload byte on verify-on-write and
    /// verify-on-fetch when `vos.csum_enabled` — the "measured overhead"
    /// half of the integrity story.
    pub csum_bw: Bandwidth,
    /// Background scrubber pass interval per engine (None disables; also
    /// idle when `vos.csum_enabled` is off). Each tick verifies up to
    /// `scrub_chunks` chunks per target, charging media read time — the
    /// scrub-rate vs foreground-bandwidth tradeoff knob.
    pub scrub_interval: Option<SimDuration>,
    /// Chunk budget per target per scrub tick.
    pub scrub_chunks: usize,
    /// Bounded per-xstream admission queue: a data-plane request arriving
    /// when its target xstream already has `queue_cap` requests queued or
    /// in service is shed with a header-only [`DaosError::Busy`] fast-fail
    /// instead of joining an unbounded FIFO. `queue_cap = 0` sheds every
    /// data-plane request (drain mode); `None` disables admission control
    /// entirely — the pre-overload, closed-loop model, and the default so
    /// existing figures are bit-for-bit unchanged.
    pub queue_cap: Option<u32>,
    /// Engine-wide budget of bulk payload bytes admitted but not yet
    /// served. A write whose payload would push the engine past the budget
    /// is shed with `Busy` before it touches an xstream, bounding the
    /// buffer memory a saturated engine pins. Header-only ops never count
    /// against it. `None` disables (the default).
    pub inflight_cap: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            rpc_cpu: SimDuration::from_us(6),
            xstream_copy_bw: Bandwidth::gib_per_sec(8.5),
            bulk_write_bw: Bandwidth::gib_per_sec(3.0),
            bulk_read_bw: Bandwidth::gib_per_sec(11.0),
            stream_lru: 36,
            write_miss_stall: SimDuration::from_us(1500),
            read_miss_latency: SimDuration::from_us(40),
            read_miss_amp: 1.6,
            vos: VosConfig::default(),
            aggregation_interval: Some(SimDuration::from_secs(5)),
            aggregation_retention: SimDuration::from_secs(2),
            // hardware-accelerated hash class (crc32c / xxh3 on one core)
            csum_bw: Bandwidth::gib_per_sec(40.0),
            scrub_interval: Some(SimDuration::from_ms(500)),
            scrub_chunks: 8,
            queue_cap: None,
            inflight_cap: None,
        }
    }
}

/// Admission-control observability counters (see
/// [`Engine::admission_stats`]). All zero while admission control is
/// disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests shed at the per-xstream queue-depth gate.
    pub shed_queue: u64,
    /// Requests shed at the engine-wide in-flight-bytes gate.
    pub shed_bytes: u64,
    /// Data-plane requests admitted to an xstream.
    pub admitted: u64,
    /// Bulk payload bytes currently admitted but not yet served.
    pub inflight_bytes: u64,
}

/// Control-plane requests the engine forwards to a co-located pool-service
/// replica (if any): `(request, reply)` pairs.
pub type ControlQueue = daos_sim::Mailbox<(Request, daos_sim::sync::OneshotSender<Response>)>;

/// A DAOS engine bound to one fabric node.
pub struct Engine {
    index: u32,
    node: NodeId,
    targets: Vec<Rc<VosTarget>>,
    endpoint: Rc<Endpoint<Request, Response>>,
    control: ControlQueue,
    has_replica: std::cell::Cell<bool>,
    /// Whether the engine process is up. A crashed engine stops answering
    /// (its endpoint goes offline and in-flight requests are dropped
    /// without a reply); VOS state lives in SCM and survives.
    alive: Cell<bool>,
    /// Latest pool-map version gossiped to this engine by heartbeats.
    map_version: Cell<u32>,
    /// Local target indices the pool map excludes on this engine; data ops
    /// addressed to them are rejected with `StaleMap`.
    local_excluded: RefCell<BTreeSet<u32>>,
    extents_reclaimed: std::cell::Cell<u64>,
    bulk_write: SharedPipe,
    bulk_read: SharedPipe,
    /// Recently-written/read objects (engine-wide stream window).
    streams: RefCell<VecDeque<(u64, u128)>>,
    stream_lru: usize,
    misses: std::cell::Cell<u64>,
    hits: std::cell::Cell<u64>,
    /// In-flight frame-corruption rate (ppm); fault injection via
    /// `FaultAction::CorruptInFlight`.
    corrupt_ppm: Cell<u32>,
    /// Fired for every corrupt chunk the background scrubber finds; the
    /// cluster wires this to the targeted-repair path.
    on_corruption: RefCell<Option<CorruptionHook>>,
    scrub_found: Cell<u64>,
    /// Bulk payload bytes admitted but not yet served (admission control).
    inflight_bytes: Cell<u64>,
    shed_queue: Cell<u64>,
    shed_bytes: Cell<u64>,
    admitted: Cell<u64>,
}

impl Engine {
    /// Build an engine with `targets_per_engine` VOS targets over `media`
    /// and start its service loop.
    pub fn spawn(
        sim: &Sim,
        fabric: Rc<Fabric>,
        node: NodeId,
        index: u32,
        media: Rc<MediaSet>,
        targets_per_engine: u32,
        cfg: EngineConfig,
    ) -> Rc<Engine> {
        let targets: Vec<Rc<VosTarget>> = (0..targets_per_engine)
            .map(|_| VosTarget::new(Rc::clone(&media), cfg.vos))
            .collect();
        let endpoint = Endpoint::bind(fabric, node);
        let eng = Rc::new(Engine {
            index,
            node,
            targets,
            endpoint,
            control: daos_sim::Mailbox::new(),
            has_replica: std::cell::Cell::new(false),
            alive: Cell::new(true),
            map_version: Cell::new(0),
            local_excluded: RefCell::new(BTreeSet::new()),
            extents_reclaimed: std::cell::Cell::new(0),
            bulk_write: Pipe::new(
                format!("engine{index}.bulk.wr"),
                cfg.bulk_write_bw,
                SimDuration::ZERO,
            ),
            bulk_read: Pipe::new(
                format!("engine{index}.bulk.rd"),
                cfg.bulk_read_bw,
                SimDuration::ZERO,
            ),
            streams: RefCell::new(VecDeque::new()),
            stream_lru: cfg.stream_lru,
            misses: std::cell::Cell::new(0),
            hits: std::cell::Cell::new(0),
            corrupt_ppm: Cell::new(0),
            on_corruption: RefCell::new(None),
            scrub_found: Cell::new(0),
            inflight_bytes: Cell::new(0),
            shed_queue: Cell::new(0),
            shed_bytes: Cell::new(0),
            admitted: Cell::new(0),
        });
        // one xstream (FIFO service) per target
        let xstreams: Vec<Semaphore> = (0..targets_per_engine).map(|_| Semaphore::new(1)).collect();
        // background VOS aggregation service
        if let Some(interval) = cfg.aggregation_interval {
            let e = Rc::clone(&eng);
            let s = sim.clone();
            sim.spawn(async move {
                loop {
                    s.sleep(interval).await;
                    let horizon = s
                        .now()
                        .as_ns()
                        .saturating_sub(cfg.aggregation_retention.as_ns());
                    for t in 0..e.target_count() {
                        let target = Rc::clone(e.target(t));
                        for cid in target.container_ids() {
                            let got = target.aggregate(cid, horizon) as u64;
                            e.extents_reclaimed.set(e.extents_reclaimed.get() + got);
                        }
                        // yield so aggregation interleaves with service
                        s.yield_now().await;
                    }
                }
            });
        }
        // background checksum scrubber: walks every target's namespace a
        // budgeted batch at a time, finding latent rot before clients do
        if cfg.vos.csum_enabled {
            if let Some(interval) = cfg.scrub_interval {
                let e = Rc::clone(&eng);
                let s = sim.clone();
                sim.spawn(async move {
                    loop {
                        s.sleep(interval).await;
                        if !e.alive.get() {
                            continue;
                        }
                        for t in 0..e.target_count() {
                            if e.local_excluded.borrow().contains(&t) {
                                continue;
                            }
                            let target = Rc::clone(e.target(t));
                            let rep = target.scrub_step(&s, cfg.scrub_chunks).await;
                            for f in rep.findings {
                                e.scrub_found.set(e.scrub_found.get() + 1);
                                // only 8-byte array dkeys map to a chunk
                                // index the repair path understands
                                let Ok(raw) = <[u8; 8]>::try_from(f.dkey.as_slice()) else {
                                    continue;
                                };
                                let report = CorruptionReport {
                                    cont: f.cid,
                                    oid: ObjectId::new((f.oid >> 64) as u64, f.oid as u64),
                                    chunk: u64::from_be_bytes(raw),
                                    target: e.index * e.target_count() + t,
                                };
                                if let Some(hook) = e.on_corruption.borrow().as_ref() {
                                    hook(&s, report);
                                }
                            }
                        }
                    }
                });
            }
        }
        let e2 = Rc::clone(&eng);
        let sim2 = sim.clone();
        sim.spawn(async move {
            while let Some(inc) = e2.endpoint.serve().await {
                let e3 = Rc::clone(&e2);
                let xs = xstreams.clone();
                let s = sim2.clone();
                sim2.spawn(async move {
                    e3.handle(&s, inc, &xs, cfg).await;
                });
            }
        });
        eng
    }

    /// This engine's index within the cluster.
    pub fn index(&self) -> u32 {
        self.index
    }
    /// The fabric node the engine is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }
    /// The engine's RPC endpoint (clients resolve targets to this).
    pub fn endpoint(&self) -> &Rc<Endpoint<Request, Response>> {
        &self.endpoint
    }
    /// Access a local VOS target (stats, tests).
    pub fn target(&self, local: u32) -> &Rc<VosTarget> {
        &self.targets[local as usize]
    }
    /// Number of local targets.
    pub fn target_count(&self) -> u32 {
        self.targets.len() as u32
    }
    /// The control queue a pool-service replica drains. Marks the engine as
    /// hosting a replica.
    pub fn attach_replica(&self) -> ControlQueue {
        self.has_replica.set(true);
        self.control.clone()
    }

    /// Whether the engine process is up.
    pub fn is_alive(&self) -> bool {
        self.alive.get()
    }

    /// Crash the engine: the endpoint goes offline (new RPCs see a dead
    /// link), replies to requests already being served are dropped, and
    /// volatile state (the stream window) is lost. VOS data is in SCM and
    /// survives.
    pub fn crash(&self) {
        self.alive.set(false);
        self.endpoint.set_online(false);
        self.streams.borrow_mut().clear();
    }

    /// Restart a crashed engine: it comes back with cold caches but intact
    /// persistent state, and starts answering RPCs again. It rejoins with
    /// whatever pool-map knowledge it crashed with; heartbeats re-gossip
    /// the current version.
    pub fn restart(&self) {
        self.alive.set(true);
        self.endpoint.set_online(true);
    }

    /// The latest pool-map version heartbeats have gossiped here.
    pub fn map_version(&self) -> u32 {
        self.map_version.get()
    }

    /// Local target indices this engine believes are excluded.
    pub fn local_excluded(&self) -> Vec<u32> {
        self.local_excluded.borrow().iter().copied().collect()
    }

    fn oid_key(oid: ObjectId) -> u128 {
        ((oid.hi as u128) << 64) | oid.lo as u128
    }

    /// Touch the engine's stream window; returns true on a locality miss.
    fn stream_miss(&self, cont: u64, oid: ObjectId) -> bool {
        let key = (cont, Self::oid_key(oid));
        let mut lru = self.streams.borrow_mut();
        if let Some(pos) = lru.iter().position(|&k| k == key) {
            lru.remove(pos);
            lru.push_back(key);
            self.hits.set(self.hits.get() + 1);
            return false;
        }
        lru.push_back(key);
        if lru.len() > self.stream_lru {
            lru.pop_front();
        }
        self.misses.set(self.misses.get() + 1);
        true
    }

    /// Stream-window (miss, hit) counters.
    pub fn stream_stats(&self) -> (u64, u64) {
        (self.misses.get(), self.hits.get())
    }

    /// Extent-tree records reclaimed by background aggregation.
    pub fn extents_reclaimed(&self) -> u64 {
        self.extents_reclaimed.get()
    }

    /// Set the in-flight frame-corruption rate (ppm; 0 clears).
    pub fn set_corrupt_inflight(&self, ppm: u32) {
        self.corrupt_ppm.set(ppm);
    }

    /// Wire the scrubber's corruption findings to a handler (the cluster's
    /// targeted-repair path).
    pub fn set_on_corruption(&self, f: impl Fn(&Sim, CorruptionReport) + 'static) {
        *self.on_corruption.borrow_mut() = Some(Box::new(f));
    }

    /// Corrupt chunks found by this engine's background scrubber so far.
    pub fn scrub_found(&self) -> u64 {
        self.scrub_found.get()
    }

    /// Admission-control counters (shed/admit totals, current in-flight
    /// bulk bytes). All zero while both admission gates are disabled.
    pub fn admission_stats(&self) -> AdmissionStats {
        AdmissionStats {
            shed_queue: self.shed_queue.get(),
            shed_bytes: self.shed_bytes.get(),
            admitted: self.admitted.get(),
            inflight_bytes: self.inflight_bytes.get(),
        }
    }

    /// Roll the in-flight corruption dice for one frame.
    fn frame_torn(&self, sim: &Sim) -> bool {
        let ppm = self.corrupt_ppm.get();
        ppm > 0 && sim.rand_below(1_000_000) < ppm as u64
    }

    async fn handle(
        &self,
        sim: &Sim,
        inc: daos_fabric::Incoming<Request, Response>,
        xstreams: &[Semaphore],
        cfg: EngineConfig,
    ) {
        // split so the request can be *moved* into execution (no clone of
        // bulk-carrying bodies) while the reply slot stays usable
        let (req, responder) = inc.split();
        // Heartbeats are answered on the networking core, not an xstream:
        // they must stay cheap and unqueued or a busy engine looks dead.
        if let Request::Ping { version, excluded } = &req {
            if !self.alive.get() {
                return;
            }
            if *version > self.map_version.get() {
                self.map_version.set(*version);
                *self.local_excluded.borrow_mut() = excluded.iter().copied().collect();
            }
            responder.respond(Response::Pong, 0);
            return;
        }

        let target_idx = match &req {
            Request::UpdateArray { target, .. }
            | Request::FetchArray { target, .. }
            | Request::UpdateSingle { target, .. }
            | Request::FetchSingle { target, .. }
            | Request::PunchObject { target, .. }
            | Request::PunchArray { target, .. }
            | Request::ListDkeys { target, .. }
            | Request::ArrayMaxChunk { target, .. }
            | Request::QueryEpoch { target } => Some(*target),
            _ => None,
        };

        let rsp = match target_idx {
            Some(t) => {
                let t = t as usize % self.targets.len();
                if self.local_excluded.borrow().contains(&(t as u32)) {
                    // the client routed with an out-of-date map: this target
                    // is excluded and must not serve or accept data
                    let rsp = Response::Err(DaosError::StaleMap {
                        version: self.map_version.get(),
                    });
                    if self.alive.get() {
                        responder.respond(rsp, 0);
                    }
                    return;
                }
                // -------- admission control (both gates default-off) -----
                // Shed decisions happen on the networking core *before* the
                // xstream queue, and the Busy reply is header-only (no bulk
                // behind it — `Response::Err` has `bulk_out() == 0`), so a
                // shed costs the engine a queue-depth probe and one eager
                // frame: the same cheap lane heartbeats ride on. Note the
                // fabric charges write bulk on the client's TX path, so a
                // shed saves the engine's queue slots, service time, and
                // buffer memory — not the sender's wire time.
                let bulk_in = req.bulk_in();
                if let Some(cap) = cfg.queue_cap {
                    // waiters plus the request currently in service
                    let depth = (xstreams[t].queue_len() + (1 - xstreams[t].available())) as u32;
                    if depth >= cap {
                        self.shed_queue.set(self.shed_queue.get() + 1);
                        if self.alive.get() {
                            responder.respond(Response::Err(DaosError::Busy { queued: depth }), 0);
                        }
                        return;
                    }
                }
                if let Some(cap) = cfg.inflight_cap {
                    if bulk_in > 0 && self.inflight_bytes.get().saturating_add(bulk_in) > cap {
                        let depth =
                            (xstreams[t].queue_len() + (1 - xstreams[t].available())) as u32;
                        self.shed_bytes.set(self.shed_bytes.get() + 1);
                        if self.alive.get() {
                            responder.respond(Response::Err(DaosError::Busy { queued: depth }), 0);
                        }
                        return;
                    }
                }
                self.admitted.set(self.admitted.get() + 1);
                self.inflight_bytes.set(self.inflight_bytes.get() + bulk_in);
                let _xs = xstreams[t].acquire().await;
                sim.sleep(cfg.rpc_cpu).await;
                // data ops burn xstream CPU proportional to payload
                let copy_bytes = match &req {
                    Request::UpdateArray { data, .. } => data.len(),
                    Request::UpdateSingle { value, .. } => value.len(),
                    Request::FetchArray { len, .. } => *len,
                    _ => 0,
                };
                if copy_bytes > 0 {
                    sim.sleep(daos_sim::time::SimDuration::from_ns(
                        cfg.xstream_copy_bw.ns_for(copy_bytes),
                    ))
                    .await;
                    // checksum engine: hash every payload byte once on the
                    // serving xstream (verify-on-write / csum-on-fetch)
                    if cfg.vos.csum_enabled {
                        sim.sleep(daos_sim::time::SimDuration::from_ns(
                            cfg.csum_bw.ns_for(copy_bytes),
                        ))
                        .await;
                    }
                }
                let rsp = self.exec_data(sim, &self.targets[t], cfg, req).await;
                // release the in-flight budget even when the engine crashed
                // mid-service: the buffer is freed either way
                self.inflight_bytes
                    .set(self.inflight_bytes.get().saturating_sub(bulk_in));
                rsp
            }
            None => {
                // control plane: forward to the co-located replica
                if !self.has_replica.get() {
                    Response::Err(DaosError::NotLeader { hint: None })
                } else {
                    let (tx, rx) = daos_sim::oneshot();
                    self.control.send((req, tx));
                    match rx.await {
                        Ok(r) => r,
                        Err(_) => Response::Err(DaosError::Transport),
                    }
                }
            }
        };
        // A crash between accept and reply swallows the response: the
        // caller's RPC hangs until its deadline, exactly like a real
        // process death mid-service.
        if !self.alive.get() {
            return;
        }
        let bulk = rsp.bulk_out();
        responder.respond(rsp, bulk);
    }

    async fn exec_data(
        &self,
        sim: &Sim,
        target: &Rc<VosTarget>,
        cfg: EngineConfig,
        req: Request,
    ) -> Response {
        match req {
            Request::UpdateArray {
                cont,
                oid,
                dkey,
                akey,
                offset,
                data,
                csum,
                ..
            } => {
                if self.stream_miss(cont, oid) {
                    // WPQ flush + cold-tree stall
                    sim.sleep(cfg.write_miss_stall).await;
                }
                self.bulk_write.transfer(sim, data.len()).await;
                // fault injection: the bulk may tear in flight...
                let data = if self.frame_torn(sim) {
                    data.corrupted()
                } else {
                    data
                };
                // ...and verify-on-write is what keeps torn frames off
                // media: reject before anything is committed.
                if cfg.vos.csum_enabled && wire_csum(&data) != csum {
                    return Response::Err(DaosError::CorruptFrame);
                }
                let epoch = target.next_epoch_at(sim.now().as_ns());
                match target
                    .update_array(
                        sim,
                        cont,
                        Self::oid_key(oid),
                        &dkey,
                        &akey,
                        offset,
                        epoch,
                        data,
                    )
                    .await
                {
                    Ok(_ops) => Response::Written { epoch },
                    Err(e) => Response::Err(e.into()),
                }
            }
            Request::FetchArray {
                cont,
                oid,
                dkey,
                akey,
                offset,
                len,
                epoch,
                ..
            } => {
                let miss = self.stream_miss(cont, oid);
                if miss {
                    sim.sleep(cfg.read_miss_latency).await;
                }
                let segs = match target
                    .fetch_array(
                        sim,
                        cont,
                        Self::oid_key(oid),
                        &dkey,
                        &akey,
                        offset,
                        len,
                        epoch,
                    )
                    .await
                {
                    Ok(segs) => segs,
                    // csum violations and akey-shape mismatches both map to
                    // typed errors (CsumMismatch / KeyTypeMismatch)
                    Err(e) => return Response::Err(e.into()),
                };
                let data: u64 = segs
                    .iter()
                    .filter(|s| s.data.is_some())
                    .map(|s| s.len)
                    .sum();
                let amp = if miss { cfg.read_miss_amp } else { 1.0 };
                self.bulk_read
                    .transfer(sim, (data as f64 * amp) as u64)
                    .await;
                // checksum the response before it leaves, then maybe tear
                // it in flight — the client's verify catches the tear
                let csum = cfg.vos.csum_enabled.then(|| wire_csum_segs(&segs));
                let segs = if self.frame_torn(sim) {
                    segs.into_iter()
                        .map(|mut s| {
                            s.data = s.data.map(|d| d.corrupted());
                            s
                        })
                        .collect()
                } else {
                    segs
                };
                Response::Fetched { segs, csum }
            }
            Request::UpdateSingle {
                cont,
                oid,
                dkey,
                akey,
                value,
                csum,
                ..
            } => {
                let value = if self.frame_torn(sim) {
                    value.corrupted()
                } else {
                    value
                };
                if cfg.vos.csum_enabled && wire_csum(&value) != csum {
                    return Response::Err(DaosError::CorruptFrame);
                }
                let epoch = target.next_epoch_at(sim.now().as_ns());
                match target
                    .update_single(sim, cont, Self::oid_key(oid), &dkey, &akey, epoch, value)
                    .await
                {
                    Ok(()) => Response::Written { epoch },
                    Err(e) => Response::Err(e.into()),
                }
            }
            Request::FetchSingle {
                cont,
                oid,
                dkey,
                akey,
                epoch,
                ..
            } => {
                match target
                    .fetch_single(sim, cont, Self::oid_key(oid), &dkey, &akey, epoch)
                    .await
                {
                    Ok(v) => Response::Single(v),
                    Err(e) => Response::Err(e.into()),
                }
            }
            Request::PunchArray {
                cont,
                oid,
                dkey,
                akey,
                offset,
                len,
                ..
            } => {
                let epoch = target.next_epoch_at(sim.now().as_ns());
                match target
                    .punch_array(
                        sim,
                        cont,
                        Self::oid_key(oid),
                        &dkey,
                        &akey,
                        offset,
                        len,
                        epoch,
                    )
                    .await
                {
                    Ok(()) => Response::Ok,
                    Err(e) => Response::Err(e.into()),
                }
            }
            Request::PunchObject { cont, oid, .. } => {
                let epoch = target.next_epoch_at(sim.now().as_ns());
                target
                    .punch_object(sim, cont, Self::oid_key(oid), epoch)
                    .await;
                Response::Ok
            }
            Request::ListDkeys { cont, oid, .. } => {
                let keys = target
                    .list_dkeys(sim, cont, Self::oid_key(oid), u64::MAX)
                    .await;
                Response::Dkeys(keys)
            }
            Request::ArrayMaxChunk {
                cont, oid, akey, ..
            } => {
                let mc = target
                    .array_max_chunk(sim, cont, Self::oid_key(oid), &akey, u64::MAX)
                    .await;
                Response::MaxChunk(mc)
            }
            Request::QueryEpoch { .. } => Response::Epoch(target.current_epoch()),
            _ => Response::Err(DaosError::Other("control op on data path".into())),
        }
    }
}
