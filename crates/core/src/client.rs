//! `libdaos` for applications: pool/container handles and the object APIs.
//!
//! Clients compute shard placement locally from the pool map (DAOS's
//! algorithmic placement) and talk directly to the engine holding each
//! shard. Two object APIs are provided, mirroring `daos_kv`/`daos_array`:
//!
//! * [`KvHandle`] — flat key → value;
//! * [`ArrayHandle`] — a byte array chunked over the object's shards
//!   (`chunk_size` bytes per dkey, dkeys round-robined across shards),
//!   which is what DFS files are built on.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use daos_fabric::NodeId;
use daos_placement::{place, splitmix64, Layout, ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::time::SimDuration;
use daos_sim::Sim;
use daos_vos::tree::ReadSeg;
use daos_vos::{key, Epoch, Key, Payload};

use crate::cluster::Cluster;
use crate::proto::{wire_csum, wire_csum_segs, DaosError, Request, Response};
use crate::ContId;

/// Read "latest" epoch sentinel.
pub const EPOCH_LATEST: Epoch = Epoch::MAX;

/// The redundancy group an array chunk belongs to.
///
/// DAOS routes array chunks by dkey hash, not round-robin: the spread is
/// statistical, which is what makes wide classes blow the engines' stream
/// windows in file-per-process workloads. Shared with the rebuild pass,
/// which must agree with the client on chunk → group routing.
pub(crate) fn group_of_chunk(oid: ObjectId, chunk: u64, group_count: u32) -> u32 {
    let h = splitmix64(chunk ^ oid.mix().rotate_left(23));
    daos_placement::jump_consistent_hash(h, group_count)
}

/// Client-side fault-handling policy: every data/control RPC gets a
/// deadline and failed attempts retry with exponential backoff + jitter,
/// refreshing the pool map between tries.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Per-attempt RPC deadline. Closed-loop benchmarks rarely trip it,
    /// but it is *not* "far above any legitimate queueing delay": once an
    /// open-loop workload can offer more than the engines serve, queueing
    /// delay at the knee grows without bound and any finite deadline is
    /// reachable on a healthy system. It is a policy knob — how long the
    /// client waits before treating an engine as unresponsive — not a
    /// safety margin. Note the shed distinction: an engine refusing work
    /// replies [`DaosError::Busy`] in microseconds and never waits out
    /// this deadline; only dark/partitioned/saturated-without-admission
    /// engines burn it.
    pub rpc_timeout: SimDuration,
    /// First backoff after a timeout-class failure; doubles per attempt.
    pub base_backoff: SimDuration,
    /// Backoff ceiling.
    pub max_backoff: SimDuration,
    /// Attempts before the typed error surfaces to the caller.
    pub max_attempts: u32,
    /// Backoff floor after a [`DaosError::Busy`] shed. The two failure
    /// modes earn different curves: a timeout already *waited out*
    /// `rpc_timeout` before retrying, so its extra backoff can start
    /// small; a shed fast-fails in microseconds — retrying it on the
    /// timeout curve's early steps would hammer the engine precisely when
    /// it asked for relief. Sheds back off from this floor (doubling,
    /// jittered, capped at `max_backoff` like the timeout curve).
    pub shed_backoff: SimDuration,
    /// Token-bucket retry budget shared by every clone of the client.
    /// Each retry spends one token; each successful RPC refunds 1/16 of a
    /// token (capped at the budget), so under sustained overload retry
    /// traffic is throttled toward a small fraction of goodput instead of
    /// multiplying offered load — the anti-storm invariant. `0` disables
    /// budgeting (unbounded retries, the pre-overload model and default).
    pub retry_budget: u32,
    /// Consecutive `Busy`/`Timeout` failures against one engine that trip
    /// its circuit breaker. While open, data-plane calls to that engine
    /// fast-fail client-side with `Busy { queued: 0 }` — no wire traffic —
    /// for `breaker_open`; the first call after the window half-opens the
    /// breaker as a single probe whose outcome deterministically closes
    /// (success) or re-opens (failure) it. `0` disables (the default).
    pub breaker_failures: u32,
    /// How long a tripped breaker stays open before half-opening.
    pub breaker_open: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            rpc_timeout: SimDuration::from_secs(1),
            base_backoff: SimDuration::from_ms(1),
            max_backoff: SimDuration::from_ms(32),
            max_attempts: 30,
            shed_backoff: SimDuration::from_ms(4),
            retry_budget: 0,
            breaker_failures: 0,
            breaker_open: SimDuration::from_ms(20),
        }
    }
}

/// Saturating exponential backoff step: `base · 2^attempt` clamped to
/// `max`, immune to shift overflow at any attempt count (a `u64` shift by
/// ≥ 64 is UB-adjacent in release and panics in debug; this never shifts
/// past 63 and saturates the multiply).
fn capped_exp_backoff(base: u64, attempt: u32, max: u64) -> u64 {
    let exp = if attempt >= 63 {
        u64::MAX
    } else {
        base.saturating_mul(1u64 << attempt)
    };
    exp.min(max)
}

/// Retry-budget refund per successful RPC, in 1/16ths of a token.
const RETRY_REFILL_X16: u64 = 1;

/// Per-engine circuit-breaker state. `open_until_ns == 0` means closed.
#[derive(Default)]
struct Breaker {
    /// Consecutive `Busy`/`Timeout` failures while closed.
    consecutive: u32,
    /// Virtual instant the open window ends (0 = closed).
    open_until_ns: u64,
    /// A half-open probe is in flight; siblings keep fast-failing.
    probe_inflight: bool,
}

/// Fold one gated call's outcome into a breaker (the deterministic state
/// machine behind [`DaosClient::damp_stats`]'s `breaker_fastfail`):
/// failures while closed count toward `threshold`; reaching it — or any
/// failed half-open probe — opens the breaker until `now_ns + open_ns`;
/// success closes it outright.
fn breaker_transition(
    b: &mut Breaker,
    threshold: u32,
    open_ns: u64,
    now_ns: u64,
    probe: bool,
    failed: bool,
) {
    if probe {
        b.probe_inflight = false;
    }
    if failed {
        b.consecutive += 1;
        if probe || b.consecutive >= threshold {
            b.open_until_ns = now_ns + open_ns;
        }
    } else {
        b.consecutive = 0;
        b.open_until_ns = 0;
    }
}

/// Storm-damping state shared by every clone of a [`DaosClient`] and every
/// handle opened from it: the retry token bucket and per-engine breakers.
struct DampState {
    /// Retry tokens in 1/16ths (budgeting disabled when the policy's
    /// `retry_budget` is 0 — the field is then unused).
    tokens_x16: Cell<u64>,
    breakers: RefCell<std::collections::BTreeMap<u32, Breaker>>,
    retries_spent: Cell<u64>,
    retries_denied: Cell<u64>,
    breaker_fastfail: Cell<u64>,
    sheds_seen: Cell<u64>,
}

impl DampState {
    fn new(retry: &RetryPolicy) -> Self {
        DampState {
            tokens_x16: Cell::new(retry.retry_budget as u64 * 16),
            breakers: RefCell::new(std::collections::BTreeMap::new()),
            retries_spent: Cell::new(0),
            retries_denied: Cell::new(0),
            breaker_fastfail: Cell::new(0),
            sheds_seen: Cell::new(0),
        }
    }
}

/// Storm-damping observability counters (see [`DaosClient::damp_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DampStats {
    /// Retry-budget tokens spent on retries.
    pub retries_spent: u64,
    /// Retries denied because the budget was dry (errors surfaced early).
    pub retries_denied: u64,
    /// Calls fast-failed client-side by an open circuit breaker.
    pub breaker_fastfail: u64,
    /// `Busy` shed replies received from engines.
    pub sheds_seen: u64,
}

/// Breaker admission decision for one data-plane call.
enum Admit {
    /// Proceed; `probe` marks the single half-open probe.
    Yes { probe: bool },
    /// Breaker open: fail fast without touching the wire.
    FastFail,
}

/// A client process bound to a client node's fabric port.
#[derive(Clone)]
pub struct DaosClient {
    cluster: Rc<Cluster>,
    node: NodeId,
    retry: RetryPolicy,
    damp: Rc<DampState>,
}

impl DaosClient {
    /// A client on client node `client_node_idx` (0-based).
    pub fn new(cluster: Rc<Cluster>, client_node_idx: u32) -> Self {
        let node = cluster.client_node(client_node_idx);
        let retry = RetryPolicy::default();
        DaosClient {
            cluster,
            node,
            damp: Rc::new(DampState::new(&retry)),
            retry,
        }
    }

    /// Same client with a different retry policy (handles opened from it
    /// inherit the policy). Resets the damping state: the token bucket is
    /// refilled to the new policy's budget and all breakers close.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self.damp = Rc::new(DampState::new(&retry));
        self
    }

    /// The client's retry policy.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Storm-damping counters, cumulative across every clone and handle
    /// sharing this client's damping state.
    pub fn damp_stats(&self) -> DampStats {
        DampStats {
            retries_spent: self.damp.retries_spent.get(),
            retries_denied: self.damp.retries_denied.get(),
            breaker_fastfail: self.damp.breaker_fastfail.get(),
            sheds_seen: self.damp.sheds_seen.get(),
        }
    }

    /// Spend one retry token; `false` means the budget is dry and the
    /// caller must surface its error instead of retrying.
    fn try_spend_retry(&self) -> bool {
        if self.retry.retry_budget == 0 {
            return true;
        }
        let t = self.damp.tokens_x16.get();
        if t >= 16 {
            self.damp.tokens_x16.set(t - 16);
            self.damp
                .retries_spent
                .set(self.damp.retries_spent.get() + 1);
            true
        } else {
            self.damp
                .retries_denied
                .set(self.damp.retries_denied.get() + 1);
            false
        }
    }

    /// Refund part of a retry token for a successful RPC.
    fn credit_success(&self) {
        if self.retry.retry_budget == 0 {
            return;
        }
        let cap = self.retry.retry_budget as u64 * 16;
        let t = self.damp.tokens_x16.get();
        self.damp.tokens_x16.set((t + RETRY_REFILL_X16).min(cap));
    }

    /// Breaker admission check for a data-plane call to `engine_idx`.
    fn breaker_gate(&self, sim: &Sim, engine_idx: u32) -> Admit {
        if self.retry.breaker_failures == 0 {
            return Admit::Yes { probe: false };
        }
        let mut breakers = self.damp.breakers.borrow_mut();
        let b = breakers.entry(engine_idx).or_default();
        if b.open_until_ns == 0 {
            return Admit::Yes { probe: false };
        }
        if sim.now().as_ns() < b.open_until_ns || b.probe_inflight {
            self.damp
                .breaker_fastfail
                .set(self.damp.breaker_fastfail.get() + 1);
            Admit::FastFail
        } else {
            // half-open: exactly one probe crosses the wire
            b.probe_inflight = true;
            Admit::Yes { probe: true }
        }
    }

    /// Record a gated call's outcome into the engine's breaker.
    fn breaker_record(&self, sim: &Sim, engine_idx: u32, probe: bool, failed: bool) {
        if self.retry.breaker_failures == 0 {
            return;
        }
        let mut breakers = self.damp.breakers.borrow_mut();
        let b = breakers.entry(engine_idx).or_default();
        breaker_transition(
            b,
            self.retry.breaker_failures,
            self.retry.breaker_open.as_ns(),
            sim.now().as_ns(),
            probe,
            failed,
        );
    }

    /// Exponential backoff with jitter before retry `attempt` (0-based),
    /// on the curve the failure mode earns: sheds start at `shed_backoff`
    /// (the engine fast-failed — don't pile on), timeouts at
    /// `base_backoff` (the deadline itself was the wait).
    async fn backoff_for(&self, sim: &Sim, attempt: u32, err: &DaosError) {
        let base = match err {
            DaosError::Busy { .. } => self.retry.shed_backoff.as_ns().max(1),
            _ => self.retry.base_backoff.as_ns().max(1),
        };
        let capped = capped_exp_backoff(base, attempt, self.retry.max_backoff.as_ns().max(base));
        // jitter in [0.5, 1.0) × capped, drawn from the sim's seeded RNG
        let jittered = capped / 2 + sim.rand_below(capped / 2 + 1);
        sim.sleep(SimDuration::from_ns(jittered)).await;
    }

    /// Gate one retry after retryable error `err`: spend a budget token
    /// (when budgeting is on) and wait out the error-appropriate backoff.
    /// `false` means the budget is dry — surface the error, add no
    /// retry traffic.
    async fn retry_gate(&self, sim: &Sim, attempt: u32, err: &DaosError) -> bool {
        if !self.try_spend_retry() {
            return false;
        }
        self.backoff_for(sim, attempt, err).await;
        true
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Rc<Cluster> {
        &self.cluster
    }
    /// The fabric node this client injects from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Issue one RPC to engine `engine_idx` (no deadline: fails fast on a
    /// dead link, hangs on a partition — resilient paths use
    /// [`DaosClient::call_deadline`]).
    pub async fn call(
        &self,
        sim: &Sim,
        engine_idx: u32,
        req: Request,
    ) -> Result<Response, DaosError> {
        let bulk = req.bulk_in();
        self.cluster
            .engine(engine_idx)
            .endpoint()
            .call(sim, self.node, req, bulk)
            .await
            .map_err(|_| DaosError::Transport)
    }

    /// Issue one RPC with the policy's per-attempt deadline; faults come
    /// back as typed retryable errors.
    pub async fn call_deadline(
        &self,
        sim: &Sim,
        engine_idx: u32,
        req: Request,
    ) -> Result<Response, DaosError> {
        let bulk = req.bulk_in();
        self.cluster
            .engine(engine_idx)
            .endpoint()
            .call_deadline(sim, self.node, req, bulk, self.retry.rpc_timeout)
            .await
            .map_err(DaosError::from)
    }

    /// Data-plane RPC through the storm-damping layer: an open circuit
    /// breaker fast-fails client-side with `Busy { queued: 0 }` (no wire
    /// traffic), sheds and timeouts feed the breaker, and responsive
    /// outcomes refund retry-budget tokens. Control-plane paths bypass
    /// this on purpose — pool-map refreshes must stay reachable while the
    /// data plane is damped, or recovery itself would be throttled.
    async fn call_gated(
        &self,
        sim: &Sim,
        engine_idx: u32,
        req: Request,
    ) -> Result<Response, DaosError> {
        let probe = match self.breaker_gate(sim, engine_idx) {
            Admit::FastFail => return Err(DaosError::Busy { queued: 0 }),
            Admit::Yes { probe } => probe,
        };
        let r = self.call_deadline(sim, engine_idx, req).await;
        let shed = matches!(&r, Ok(Response::Err(DaosError::Busy { .. })));
        if shed {
            self.damp.sheds_seen.set(self.damp.sheds_seen.get() + 1);
        }
        let failed = shed || matches!(&r, Err(DaosError::Timeout));
        self.breaker_record(sim, engine_idx, probe, failed);
        if !failed && r.is_ok() {
            self.credit_success();
        }
        r
    }

    /// Control-plane RPC: retries across pool-service replicas following
    /// `NotLeader` hints, with the same bounded backoff policy as data
    /// RPCs. The service may still return a semantic error such as
    /// `ContainerExists`; a dead or partitioned service surfaces as a
    /// typed `Timeout`/`Transport` after the attempt budget.
    pub async fn control(&self, sim: &Sim, req: Request) -> Result<Response, DaosError> {
        let svc = self.cluster.replicas().len().max(1) as u32;
        let mut engine = 0u32;
        let mut last = DaosError::Timeout;
        for attempt in 0..self.retry.max_attempts {
            match self.call_deadline(sim, engine, req.clone()).await {
                Ok(Response::Err(DaosError::NotLeader { hint })) => {
                    engine = match hint {
                        // raft ids are engine index + 1
                        Some(id) if id >= 1 && id <= svc as u64 => (id - 1) as u32,
                        _ => (engine + 1) % svc,
                    };
                    last = DaosError::NotLeader { hint };
                }
                Ok(other) => return Ok(other),
                Err(e) if e.is_retryable() => {
                    engine = (engine + 1) % svc;
                    last = e;
                }
                Err(e) => return Err(e),
            }
            if !self.retry_gate(sim, attempt, &last).await {
                return Err(last);
            }
        }
        Err(last)
    }

    /// Refresh the shared pool-map cache from the pool service; returns
    /// whether the cache changed. Best-effort: an unreachable service
    /// leaves the cache as is.
    pub async fn refresh_pool_map(&self, sim: &Sim) -> bool {
        match self.control(sim, Request::PoolQuery).await {
            Ok(Response::PoolMapInfo { version, excluded }) => {
                self.cluster.sync_pool_map(version, &excluded)
            }
            _ => false,
        }
    }

    /// Connect to the pool (waits for the pool service to be up).
    pub async fn connect(&self, sim: &Sim) -> Result<PoolHandle, DaosError> {
        match self.control(sim, Request::PoolConnect).await? {
            Response::Connected { .. } => Ok(PoolHandle {
                client: self.clone(),
            }),
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }
}

/// An open pool connection.
#[derive(Clone)]
pub struct PoolHandle {
    client: DaosClient,
}

impl PoolHandle {
    /// Create a container (error if it exists).
    pub async fn create_container(
        &self,
        sim: &Sim,
        cont: ContId,
    ) -> Result<ContainerHandle, DaosError> {
        self.client
            .control(sim, Request::ContCreate { cont })
            .await?
            .ok()?;
        Ok(self.handle(cont))
    }

    /// Open an existing container.
    pub async fn open_container(
        &self,
        sim: &Sim,
        cont: ContId,
    ) -> Result<ContainerHandle, DaosError> {
        self.client
            .control(sim, Request::ContOpen { cont })
            .await?
            .ok()?;
        Ok(self.handle(cont))
    }

    /// Open-or-create (what `dfs_mount` does).
    pub async fn open_or_create(
        &self,
        sim: &Sim,
        cont: ContId,
    ) -> Result<ContainerHandle, DaosError> {
        match self.create_container(sim, cont).await {
            Ok(h) => Ok(h),
            Err(DaosError::ContainerExists(_)) => self.open_container(sim, cont).await,
            Err(e) => Err(e),
        }
    }

    /// Destroy a container.
    pub async fn destroy_container(&self, sim: &Sim, cont: ContId) -> Result<(), DaosError> {
        self.client
            .control(sim, Request::ContDestroy { cont })
            .await?
            .ok()
    }

    fn handle(&self, cont: ContId) -> ContainerHandle {
        ContainerHandle {
            client: self.client.clone(),
            cont,
        }
    }
}

/// An open container.
#[derive(Clone)]
pub struct ContainerHandle {
    client: DaosClient,
    cont: ContId,
}

impl ContainerHandle {
    /// The container id.
    pub fn id(&self) -> ContId {
        self.cont
    }
    /// The client this handle rides on.
    pub fn client(&self) -> &DaosClient {
        &self.client
    }

    /// Capture a container snapshot: an epoch at or above every update
    /// completed so far (queried from every target, like
    /// `daos_cont_create_snap`). Reads at this epoch see exactly the data
    /// present now, regardless of later overwrites.
    pub async fn snapshot(&self, sim: &Sim) -> Result<Epoch, DaosError> {
        let cluster = self.client.cluster.clone();
        let tpe = cluster.cfg.targets_per_engine;
        let futs: Vec<_> = (0..cluster.cfg.engine_count() * tpe)
            .map(|t| {
                let client = self.client.clone();
                let sim = sim.clone();
                async move {
                    client
                        .call(&sim, t / tpe, Request::QueryEpoch { target: t % tpe })
                        .await
                }
            })
            .collect();
        let mut max = 0;
        for r in join_all(sim, futs).await {
            match r? {
                Response::Epoch(e) => max = max.max(e),
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
            }
        }
        Ok(max)
    }

    /// Open an object with a class; computes the layout client-side.
    pub fn object(&self, oid: ObjectId, class: ObjectClass) -> ObjectHandle {
        let map = self.client.cluster.pool_map();
        let layout = place(oid, class, &map);
        let version = map.version();
        drop(map);
        self.client.cluster.register_object(self.cont, oid, class);
        ObjectHandle {
            cont: self.clone(),
            oid,
            class,
            layout: Rc::new(RefCell::new(layout)),
            placed_version: Rc::new(Cell::new(version)),
            moved: Rc::new(RefCell::new(std::collections::BTreeSet::new())),
        }
    }
}

/// An open object: the unit of placement.
///
/// The layout is shared across clones of the handle and re-placed when a
/// fault forces a pool-map refresh — but only then: a handle opened before
/// an exclusion keeps its stale layout while the engines still answer,
/// reading degraded through its protection class like a real client whose
/// map update hasn't arrived.
#[derive(Clone)]
pub struct ObjectHandle {
    cont: ContainerHandle,
    oid: ObjectId,
    class: ObjectClass,
    layout: Rc<RefCell<Layout>>,
    placed_version: Rc<Cell<u32>>,
    /// Shards whose target changed in the last re-place: their new homes
    /// are empty until the rebuild pass refills them, so reads avoid them
    /// while a rebuild is active (writes go to the new home regardless).
    moved: Rc<RefCell<std::collections::BTreeSet<u32>>>,
}

impl ObjectHandle {
    /// The object id.
    pub fn oid(&self) -> ObjectId {
        self.oid
    }
    /// The object's class.
    pub fn class(&self) -> ObjectClass {
        self.class
    }
    /// The object's current layout (a snapshot; refreshes may replace it).
    pub fn layout(&self) -> Layout {
        self.layout.borrow().clone()
    }

    fn width(&self) -> u32 {
        self.layout.borrow().width()
    }

    fn route(&self, shard: u32) -> (u32, u32) {
        let t = self.layout.borrow().target_of(shard);
        let tpe = self.cont.client.cluster.cfg.targets_per_engine;
        (t / tpe, t % tpe)
    }

    /// Pool-map refresh + re-place, driven only by fault-path errors
    /// (timeout / stale-map): queries the service, adopts a newer map, and
    /// recomputes the shared layout if the version moved.
    async fn refresh(&self, sim: &Sim) {
        let client = &self.cont.client;
        client.refresh_pool_map(sim).await;
        let map = client.cluster.pool_map();
        if map.version() != self.placed_version.get() {
            let new_layout = place(self.oid, self.class, &map);
            {
                let old = self.layout.borrow();
                *self.moved.borrow_mut() = (0..new_layout.width())
                    .filter(|&s| old.target_of(s) != new_layout.target_of(s))
                    .collect();
            }
            *self.layout.borrow_mut() = new_layout;
            self.placed_version.set(map.version());
        }
    }

    fn shard_of_dkey(&self, dkey: &Key) -> u32 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in dkey {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (splitmix64(h) % self.width() as u64) as u32
    }

    /// Raw update of an array akey (most callers use [`ArrayHandle`]).
    pub async fn update(
        &self,
        sim: &Sim,
        dkey: Key,
        akey: Key,
        offset: u64,
        data: Payload,
    ) -> Result<Epoch, DaosError> {
        let shard = self.shard_of_dkey(&dkey);
        let (engine, target) = self.route(shard);
        let csum = wire_csum(&data);
        let rsp = self
            .cont
            .client
            .call(
                sim,
                engine,
                Request::UpdateArray {
                    target,
                    cont: self.cont.cont,
                    oid: self.oid,
                    dkey,
                    akey,
                    offset,
                    data,
                    csum,
                },
            )
            .await?;
        match rsp {
            Response::Written { epoch } => Ok(epoch),
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Raw fetch of an array akey.
    pub async fn fetch(
        &self,
        sim: &Sim,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let shard = self.shard_of_dkey(&dkey);
        let (engine, target) = self.route(shard);
        let rsp = self
            .cont
            .client
            .call(
                sim,
                engine,
                Request::FetchArray {
                    target,
                    cont: self.cont.cont,
                    oid: self.oid,
                    dkey,
                    akey,
                    offset,
                    len,
                    epoch,
                },
            )
            .await?;
        match rsp {
            Response::Fetched { segs, csum } => {
                if let Some(c) = csum {
                    if wire_csum_segs(&segs) != c {
                        return Err(DaosError::CorruptFrame);
                    }
                }
                Ok(segs)
            }
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Punch the object on every shard (unlink).
    pub async fn punch(&self, sim: &Sim) -> Result<(), DaosError> {
        let width = self.width();
        let futs: Vec<_> = (0..width)
            .map(|s| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let (engine, target) = this.route(s);
                    this.cont
                        .client
                        .call(
                            &sim,
                            engine,
                            Request::PunchObject {
                                target,
                                cont: this.cont.cont,
                                oid: this.oid,
                            },
                        )
                        .await
                        .and_then(|r| r.ok())
                }
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        Ok(())
    }

    /// Enumerate dkeys across all shards, merged and sorted.
    pub async fn list_dkeys(&self, sim: &Sim) -> Result<Vec<Key>, DaosError> {
        let width = self.width();
        let futs: Vec<_> = (0..width)
            .map(|s| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let (engine, target) = this.route(s);
                    this.cont
                        .client
                        .call(
                            &sim,
                            engine,
                            Request::ListDkeys {
                                target,
                                cont: this.cont.cont,
                                oid: this.oid,
                            },
                        )
                        .await
                }
            })
            .collect();
        let mut keys = Vec::new();
        for r in join_all(sim, futs).await {
            match r? {
                Response::Dkeys(mut ks) => keys.append(&mut ks),
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
            }
        }
        keys.sort();
        keys.dedup();
        Ok(keys)
    }

    /// Key-value view of this object (`daos_kv`).
    pub fn kv(&self) -> KvHandle {
        KvHandle { obj: self.clone() }
    }

    /// Byte-array view with the given chunk size (`daos_array`).
    pub fn array(&self, chunk_size: u64) -> ArrayHandle {
        assert!(chunk_size > 0);
        self.cont
            .client
            .cluster
            .register_array(self.cont.cont, self.oid, self.class, chunk_size);
        ArrayHandle {
            obj: self.clone(),
            chunk_size,
        }
    }
}

/// `daos_kv`-style flat key/value API.
#[derive(Clone)]
pub struct KvHandle {
    obj: ObjectHandle,
}

impl KvHandle {
    /// Upsert `value` under `k`.
    pub async fn put(
        &self,
        sim: &Sim,
        k: impl AsRef<[u8]>,
        value: Payload,
    ) -> Result<(), DaosError> {
        let dkey = key(k);
        let shard = self.obj.shard_of_dkey(&dkey);
        let (engine, target) = self.obj.route(shard);
        let csum = wire_csum(&value);
        self.obj
            .cont
            .client
            .call(
                sim,
                engine,
                Request::UpdateSingle {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey,
                    akey: key("v"),
                    value,
                    csum,
                },
            )
            .await?
            .ok()
    }

    /// Fetch the value under `k` (latest).
    pub async fn get(&self, sim: &Sim, k: impl AsRef<[u8]>) -> Result<Option<Payload>, DaosError> {
        let dkey = key(k);
        let shard = self.obj.shard_of_dkey(&dkey);
        let (engine, target) = self.obj.route(shard);
        let rsp = self
            .obj
            .cont
            .client
            .call(
                sim,
                engine,
                Request::FetchSingle {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey,
                    akey: key("v"),
                    epoch: EPOCH_LATEST,
                },
            )
            .await?;
        match rsp {
            Response::Single(v) => Ok(v),
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// List keys.
    pub async fn list(&self, sim: &Sim) -> Result<Vec<Key>, DaosError> {
        self.obj.list_dkeys(sim).await
    }
}

/// `daos_array`-style byte-array API: the array is chunked at `chunk_size`;
/// chunk `i` is dkey `i` (big-endian), placed on a shard chosen by dkey
/// hash (jump consistent hash), as `libdaos` does.
#[derive(Clone)]
pub struct ArrayHandle {
    obj: ObjectHandle,
    chunk_size: u64,
}

impl ArrayHandle {
    /// The underlying object handle.
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
    /// The array's chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    fn chunk_dkey(chunk: u64) -> Key {
        chunk.to_be_bytes().to_vec()
    }

    /// Redundancy-group width (1 for plain sharding, r for RP_r, k+p for EC).
    fn group_width(&self) -> u32 {
        self.obj.class.group_width()
    }

    /// Number of redundancy groups in the layout.
    fn group_count(&self) -> u32 {
        (self.obj.width() / self.group_width()).max(1)
    }

    /// The redundancy group a chunk belongs to (see [`group_of_chunk`]).
    fn group_of_chunk(&self, chunk: u64) -> u32 {
        group_of_chunk(self.obj.oid, chunk, self.group_count())
    }

    /// Shard indices of redundancy group `g`.
    fn shards_of_group(&self, g: u32) -> std::ops::Range<u32> {
        let w = self.group_width();
        g * w..(g + 1) * w
    }

    /// Is the target behind `shard` excluded from the current pool map?
    fn shard_excluded(&self, shard: u32) -> bool {
        let t = self.obj.layout.borrow().target_of(shard);
        self.obj.cont.client.cluster.pool_map().is_excluded(t)
    }

    /// Should a *read* avoid `shard`? True for excluded targets, and for
    /// re-placed shards whose new home hasn't been refilled yet by the
    /// rebuild pass still running.
    fn shard_unreadable(&self, shard: u32) -> bool {
        if self.shard_excluded(shard) {
            return true;
        }
        self.obj.cont.client.cluster.rebuilds_running() > 0
            && self.obj.moved.borrow().contains(&shard)
    }

    /// Raw single-shard update of chunk data at a chunk-relative offset.
    ///
    /// Retryable faults (timeout, stale map, transport) trigger a pool-map
    /// refresh and re-route: the shard index is stable but the target
    /// behind it moves with the layout, so after an exclusion the retry
    /// lands on the shard's new home.
    async fn update_shard(
        &self,
        sim: &Sim,
        shard: u32,
        chunk: u64,
        offset: u64,
        data: Payload,
    ) -> Result<(), DaosError> {
        let client = &self.obj.cont.client;
        let mut last = DaosError::Timeout;
        let csum = wire_csum(&data);
        for attempt in 0..client.retry.max_attempts {
            let (engine, target) = self.obj.route(shard);
            let r = client
                .call_gated(
                    sim,
                    engine,
                    Request::UpdateArray {
                        target,
                        cont: self.obj.cont.cont,
                        oid: self.obj.oid,
                        dkey: Self::chunk_dkey(chunk),
                        akey: key("0"),
                        offset,
                        data: data.clone(),
                        csum,
                    },
                )
                .await
                .and_then(|r| r.ok());
            match r {
                Ok(()) => return Ok(()),
                Err(e) if e.is_retryable() => last = e,
                Err(e) => return Err(e),
            }
            if !client.retry_gate(sim, attempt, &last).await {
                return Err(last);
            }
            // a shed is a load signal, not a placement signal: skip the
            // control-plane refresh so damped retries don't stampede the
            // pool service
            if !matches!(last, DaosError::Busy { .. }) {
                self.obj.refresh(sim).await;
            }
        }
        Err(last)
    }

    /// One fetch attempt against one shard, no retry — the failover
    /// building block for degraded reads.
    async fn fetch_shard_once(
        &self,
        sim: &Sim,
        shard: u32,
        chunk: u64,
        offset: u64,
        len: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let (engine, target) = self.obj.route(shard);
        let rsp = self
            .obj
            .cont
            .client
            .call_gated(
                sim,
                engine,
                Request::FetchArray {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey: Self::chunk_dkey(chunk),
                    akey: key("0"),
                    offset,
                    len,
                    epoch: EPOCH_LATEST,
                },
            )
            .await?;
        match rsp {
            Response::Fetched { segs, csum } => {
                if let Some(c) = csum {
                    if wire_csum_segs(&segs) != c {
                        // torn on the wire between server hash and us
                        return Err(DaosError::CorruptFrame);
                    }
                }
                Ok(segs)
            }
            Response::Err(e) => Err(e),
            other => Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fire-and-forget corruption report for `chunk`'s copy on `shard`'s
    /// current target; the pool service schedules a targeted repair. The
    /// read that hit the mismatch does not wait on it.
    fn report_rot(&self, sim: &Sim, chunk: u64, shard: u32) {
        let target = self.obj.layout.borrow().target_of(shard);
        let client = self.obj.cont.client.clone();
        let req = Request::ReportCorrupt {
            cont: self.obj.cont.cont,
            oid: self.obj.oid,
            chunk,
            target,
        };
        let s = sim.clone();
        sim.spawn(async move {
            let _ = client.control(&s, req).await;
        });
    }

    /// Raw single-shard fetch with the full retry/refresh loop; segments
    /// come back shard-relative.
    async fn fetch_shard(
        &self,
        sim: &Sim,
        shard: u32,
        chunk: u64,
        offset: u64,
        len: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let client = &self.obj.cont.client;
        let mut last = DaosError::Timeout;
        for attempt in 0..client.retry.max_attempts {
            match self.fetch_shard_once(sim, shard, chunk, offset, len).await {
                Ok(segs) => return Ok(segs),
                Err(DaosError::CsumMismatch) => {
                    // unprotected class: nothing to fail over to, but still
                    // tell the pool service which copy rotted
                    self.report_rot(sim, chunk, shard);
                    return Err(DaosError::CsumMismatch);
                }
                Err(e) if e.is_retryable() => last = e,
                Err(e) => return Err(e),
            }
            if !client.retry_gate(sim, attempt, &last).await {
                return Err(last);
            }
            if !matches!(last, DaosError::Busy { .. }) {
                self.obj.refresh(sim).await;
            }
        }
        Err(last)
    }

    /// Materialise shard-relative segments into `len` bytes (holes = 0).
    fn flatten(segs: &[ReadSeg], base: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        for s in segs {
            if let Some(d) = &s.data {
                let m = d.materialize();
                let start = (s.offset - base) as usize;
                out[start..start + s.len as usize].copy_from_slice(&m);
            }
        }
        out
    }

    /// Write one piece of one chunk through the object's protection class.
    async fn write_piece(
        &self,
        sim: &Sim,
        chunk: u64,
        in_chunk: u64,
        piece: Payload,
    ) -> Result<(), DaosError> {
        let group = self.shards_of_group(self.group_of_chunk(chunk));
        match self.obj.class {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                self.update_shard(sim, group.start, chunk, in_chunk, piece)
                    .await
            }
            ObjectClass::Replicated { .. } => {
                // fan the identical piece out to every replica of the group
                let futs: Vec<_> = group
                    .map(|shard| {
                        let this = self.clone();
                        let sim = sim.clone();
                        let data = piece.clone();
                        async move { this.update_shard(&sim, shard, chunk, in_chunk, data).await }
                    })
                    .collect();
                for r in join_all(sim, futs).await {
                    r?;
                }
                Ok(())
            }
            ObjectClass::ErasureCoded {
                data: k, parity: p, ..
            } => {
                let (k, p) = (k as u64, p as u64);
                if !self.chunk_size.is_multiple_of(k) {
                    return Err(DaosError::Other(
                        "EC arrays need chunk_size divisible by k".into(),
                    ));
                }
                let cell = self.chunk_size / k;
                if !in_chunk.is_multiple_of(cell) || !piece.len().is_multiple_of(cell) {
                    return Err(DaosError::Other(format!(
                        "EC arrays require cell-aligned I/O (cell = {cell} bytes)"
                    )));
                }
                let first_cell = in_chunk / cell;
                let n_cells = piece.len() / cell;
                // write the data cells
                let futs: Vec<_> = (0..n_cells)
                    .map(|i| {
                        let this = self.clone();
                        let sim = sim.clone();
                        let shard = group.start + (first_cell + i) as u32;
                        let data = piece.slice(i * cell, cell);
                        async move { this.update_shard(&sim, shard, chunk, 0, data).await }
                    })
                    .collect();
                for r in join_all(sim, futs).await {
                    r?;
                }
                // parity = XOR over the stripe; read-modify-write any cells
                // this piece did not cover
                let mut stripe: Vec<Vec<u8>> = Vec::with_capacity(k as usize);
                for c in 0..k {
                    if c >= first_cell && c < first_cell + n_cells {
                        stripe.push(
                            piece
                                .slice((c - first_cell) * cell, cell)
                                .materialize()
                                .to_vec(),
                        );
                    } else {
                        let segs = self
                            .fetch_shard(sim, group.start + c as u32, chunk, 0, cell)
                            .await?;
                        stripe.push(Self::flatten(&segs, 0, cell));
                    }
                }
                let mut parity = vec![0u8; cell as usize];
                for row in &stripe {
                    for (o, b) in parity.iter_mut().zip(row) {
                        *o ^= b;
                    }
                }
                let futs: Vec<_> = (0..p)
                    .map(|j| {
                        let this = self.clone();
                        let sim = sim.clone();
                        let shard = group.start + (k + j) as u32;
                        let data = Payload::bytes(parity.clone());
                        async move { this.update_shard(&sim, shard, chunk, 0, data).await }
                    })
                    .collect();
                for r in join_all(sim, futs).await {
                    r?;
                }
                Ok(())
            }
        }
    }

    /// Read one piece of one chunk through the protection class; returns
    /// chunk-relative segments. Survives excluded *and silently dead*
    /// targets where the class has redundancy: replicated reads fail over
    /// to surviving replicas, EC reads reconstruct lost cells from the
    /// stripe, and a full pass over the group that finds nobody alive
    /// surfaces as [`DaosError::NoSurvivingReplicas`]. Transient faults
    /// (every live shard timing out) back off, refresh the pool map and
    /// retry under the client's attempt budget.
    async fn read_piece(
        &self,
        sim: &Sim,
        chunk: u64,
        in_chunk: u64,
        len: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let group = self.shards_of_group(self.group_of_chunk(chunk));
        let client = &self.obj.cont.client;
        match self.obj.class {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                self.fetch_shard(sim, group.start, chunk, in_chunk, len)
                    .await
            }
            ObjectClass::Replicated { replicas, .. } => {
                // spread reads over replicas; fail over past excluded and
                // unresponsive targets before ever backing off
                let r = replicas as u64;
                let mut last = DaosError::NoSurvivingReplicas;
                for round in 0..client.retry.max_attempts {
                    let mut any_alive = false;
                    for attempt in 0..r {
                        let shard = group.start + ((chunk + round as u64 + attempt) % r) as u32;
                        if self.shard_unreadable(shard) {
                            continue;
                        }
                        any_alive = true;
                        match self
                            .fetch_shard_once(sim, shard, chunk, in_chunk, len)
                            .await
                        {
                            Ok(segs) => return Ok(segs),
                            Err(DaosError::CsumMismatch) => {
                                // this replica rotted: report it for repair
                                // and fail over to the next one
                                self.report_rot(sim, chunk, shard);
                                last = DaosError::CsumMismatch;
                            }
                            Err(e) if e.is_retryable() => last = e,
                            Err(e) => return Err(e),
                        }
                    }
                    if !any_alive {
                        return Err(DaosError::NoSurvivingReplicas);
                    }
                    if !client.retry_gate(sim, round, &last).await {
                        return Err(last);
                    }
                    if !matches!(last, DaosError::Busy { .. }) {
                        self.obj.refresh(sim).await;
                    }
                }
                Err(last)
            }
            ObjectClass::ErasureCoded {
                data: k, parity: p, ..
            } => {
                let mut last = DaosError::Timeout;
                for round in 0..client.retry.max_attempts {
                    match self
                        .read_piece_ec(sim, chunk, in_chunk, len, k as u64, p as u64)
                        .await
                    {
                        Ok(out) => return Ok(out),
                        Err(e) if e.is_retryable() => last = e,
                        Err(e) => return Err(e),
                    }
                    if !client.retry_gate(sim, round, &last).await {
                        return Err(last);
                    }
                    if !matches!(last, DaosError::Busy { .. }) {
                        self.obj.refresh(sim).await;
                    }
                }
                Err(last)
            }
        }
    }

    /// One EC read pass: fetch each wanted data cell, reconstructing any
    /// cell whose shard is excluded or unresponsive from the rest of the
    /// stripe plus one live parity. A reconstruction *source* failing is
    /// returned as the retryable error it produced (the caller refreshes
    /// and retries); a stripe with no live parity left is
    /// [`DaosError::NoSurvivingReplicas`].
    async fn read_piece_ec(
        &self,
        sim: &Sim,
        chunk: u64,
        in_chunk: u64,
        len: u64,
        k: u64,
        p: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let group = self.shards_of_group(self.group_of_chunk(chunk));
        let cell = self.chunk_size / k;
        let first_cell = in_chunk / cell;
        let last_cell = (in_chunk + len - 1) / cell;
        let mut out: Vec<ReadSeg> = Vec::new();
        for c in first_cell..=last_cell {
            let cell_lo = (c * cell).max(in_chunk);
            let cell_hi = ((c + 1) * cell).min(in_chunk + len);
            let want_off = cell_lo - c * cell;
            let want_len = cell_hi - cell_lo;
            let shard = group.start + c as u32;
            if !self.shard_unreadable(shard) {
                match self
                    .fetch_shard_once(sim, shard, chunk, want_off, want_len)
                    .await
                {
                    Ok(segs) => {
                        out.extend(segs.into_iter().map(|s| ReadSeg {
                            offset: c * cell + s.offset,
                            len: s.len,
                            data: s.data,
                        }));
                        continue;
                    }
                    Err(DaosError::CsumMismatch) => {
                        // rotten cell: report it, then reconstruct it from
                        // the rest of the stripe like a dark shard
                        self.report_rot(sim, chunk, shard);
                    }
                    // dark but not yet excluded: fall through to reconstruct
                    Err(e) if e.is_retryable() => {}
                    Err(e) => return Err(e),
                }
            }
            // degraded: reconstruct the cell from survivors + parity
            let mut acc = vec![0u8; cell as usize];
            for other in 0..k {
                if other == c {
                    continue;
                }
                let oshard = group.start + other as u32;
                if self.shard_excluded(oshard) {
                    // two losses in one group: beyond what XOR parity covers
                    return Err(DaosError::NoSurvivingReplicas);
                }
                if self.shard_unreadable(oshard) {
                    // the source is itself mid-refill; retry once it lands
                    return Err(DaosError::Timeout);
                }
                let segs = match self.fetch_shard_once(sim, oshard, chunk, 0, cell).await {
                    Ok(s) => s,
                    Err(DaosError::CsumMismatch) => {
                        // a reconstruction source is itself rotten: report
                        // it and retry the pass once repair catches up
                        self.report_rot(sim, chunk, oshard);
                        return Err(DaosError::Timeout);
                    }
                    Err(e) => return Err(e),
                };
                for (o, b) in acc.iter_mut().zip(Self::flatten(&segs, 0, cell)) {
                    *o ^= b;
                }
            }
            let mut recovered = false;
            let mut parity_err: Option<DaosError> = None;
            for j in 0..p {
                let pshard = group.start + (k + j) as u32;
                if self.shard_unreadable(pshard) {
                    continue;
                }
                match self.fetch_shard_once(sim, pshard, chunk, 0, cell).await {
                    Ok(segs) => {
                        for (o, b) in acc.iter_mut().zip(Self::flatten(&segs, 0, cell)) {
                            *o ^= b;
                        }
                        recovered = true;
                        break;
                    }
                    Err(DaosError::CsumMismatch) => {
                        // rotten parity: report it and try the next one
                        self.report_rot(sim, chunk, pshard);
                        parity_err = Some(DaosError::Timeout);
                    }
                    Err(e) if e.is_retryable() => parity_err = Some(e),
                    Err(e) => return Err(e),
                }
            }
            if !recovered {
                // live parities that merely timed out are worth a retry;
                // a stripe with every parity excluded is truly lost
                return Err(parity_err.unwrap_or(DaosError::NoSurvivingReplicas));
            }
            out.push(ReadSeg {
                offset: cell_lo,
                len: want_len,
                data: Some(Payload::bytes(
                    acc[want_off as usize..(want_off + want_len) as usize].to_vec(),
                )),
            });
        }
        Ok(out)
    }

    /// Split `[offset, offset+len)` into per-chunk pieces:
    /// `(chunk, offset_in_chunk, piece_offset_in_request, piece_len)`.
    fn pieces(&self, offset: u64, len: u64) -> Vec<(u64, u64, u64, u64)> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let chunk = cur / self.chunk_size;
            let in_chunk = cur % self.chunk_size;
            let take = (self.chunk_size - in_chunk).min(end - cur);
            out.push((chunk, in_chunk, cur - offset, take));
            cur += take;
        }
        out
    }

    /// Write `data` at byte `offset`; chunks are written concurrently
    /// (libdaos event-queue style).
    pub async fn write(&self, sim: &Sim, offset: u64, data: Payload) -> Result<(), DaosError> {
        let pieces = self.pieces(offset, data.len());
        let futs: Vec<_> = pieces
            .into_iter()
            .map(|(chunk, in_chunk, src_off, len)| {
                let this = self.clone();
                let sim = sim.clone();
                let piece = data.slice(src_off, len);
                async move { this.write_piece(&sim, chunk, in_chunk, piece).await }
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        Ok(())
    }

    /// Read `[offset, offset+len)` as of a container snapshot epoch.
    ///
    /// Only supported for unprotected classes (snapshots of replicated/EC
    /// data read the primary). Writes after the snapshot are invisible.
    pub async fn read_at_epoch(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
        epoch: Epoch,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let pieces = self.pieces(offset, len);
        let mut segs = Vec::new();
        for (chunk, in_chunk, _src, plen) in pieces {
            let group = self.shards_of_group(self.group_of_chunk(chunk));
            let (engine, target) = self.obj.route(group.start);
            let rsp = self
                .obj
                .cont
                .client
                .call(
                    sim,
                    engine,
                    Request::FetchArray {
                        target,
                        cont: self.obj.cont.cont,
                        oid: self.obj.oid,
                        dkey: Self::chunk_dkey(chunk),
                        akey: key("0"),
                        offset: in_chunk,
                        len: plen,
                        epoch,
                    },
                )
                .await?;
            match rsp {
                Response::Fetched { segs: s, .. } => {
                    let base = chunk * self.chunk_size;
                    segs.extend(s.into_iter().map(|x| ReadSeg {
                        offset: base + x.offset,
                        len: x.len,
                        data: x.data,
                    }));
                }
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
            }
        }
        segs.sort_by_key(|s| s.offset);
        Ok(segs)
    }

    /// Read `len` bytes at `offset` (latest); unwritten ranges come back as
    /// holes. Segments are returned in array-offset order.
    pub async fn read(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        let pieces = self.pieces(offset, len);
        let futs: Vec<_> = pieces
            .into_iter()
            .map(|(chunk, in_chunk, _src_off, plen)| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let segs = this.read_piece(&sim, chunk, in_chunk, plen).await?;
                    // rebase chunk-relative offsets to array offsets
                    let base = chunk * this.chunk_size;
                    Ok::<_, DaosError>(
                        segs.into_iter()
                            .map(|s| ReadSeg {
                                offset: base + s.offset,
                                len: s.len,
                                data: s.data,
                            })
                            .collect::<Vec<_>>(),
                    )
                }
            })
            .collect();
        let mut segs = Vec::new();
        for r in join_all(sim, futs).await {
            segs.extend(r?);
        }
        segs.sort_by_key(|s| s.offset);
        Ok(segs)
    }

    /// Punch (logically zero) `[offset, offset+len)`; all shards of each
    /// affected chunk are punched so every replica stays consistent.
    pub async fn punch(&self, sim: &Sim, offset: u64, len: u64) -> Result<(), DaosError> {
        for (chunk, in_chunk, _src, plen) in self.pieces(offset, len) {
            let group = self.shards_of_group(self.group_of_chunk(chunk));
            let futs: Vec<_> = group
                .map(|shard| {
                    let this = self.clone();
                    let sim = sim.clone();
                    async move {
                        let (engine, target) = this.obj.route(shard);
                        this.obj
                            .cont
                            .client
                            .call(
                                &sim,
                                engine,
                                Request::PunchArray {
                                    target,
                                    cont: this.obj.cont.cont,
                                    oid: this.obj.oid,
                                    dkey: Self::chunk_dkey(chunk),
                                    akey: key("0"),
                                    offset: in_chunk,
                                    len: plen,
                                },
                            )
                            .await
                            .and_then(|r| r.ok())
                    }
                })
                .collect();
            for r in join_all(sim, futs).await {
                r?;
            }
        }
        Ok(())
    }

    /// The array's size in bytes (highest written offset + 1), queried
    /// from every shard like `daos_array_get_size`.
    pub async fn size(&self, sim: &Sim) -> Result<u64, DaosError> {
        let width = self.obj.width();
        let futs: Vec<_> = (0..width)
            .map(|s| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let (engine, target) = this.obj.route(s);
                    this.obj
                        .cont
                        .client
                        .call(
                            &sim,
                            engine,
                            Request::ArrayMaxChunk {
                                target,
                                cont: this.obj.cont.cont,
                                oid: this.obj.oid,
                                akey: key("0"),
                            },
                        )
                        .await
                }
            })
            .collect();
        let mut size = 0u64;
        for r in join_all(sim, futs).await {
            match r? {
                Response::MaxChunk(Some((dk, inner))) => {
                    let chunk = u64::from_be_bytes(
                        dk.as_slice()
                            .try_into()
                            .map_err(|_| DaosError::Other("malformed chunk dkey".into()))?,
                    );
                    size = size.max(chunk * self.chunk_size + inner);
                }
                Response::MaxChunk(None) => {}
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::UnexpectedResponse(format!("{other:?}"))),
            }
        }
        Ok(size)
    }

    /// Read and materialise exactly `len` bytes (holes as zeroes) — test
    /// helper; benchmarks use [`ArrayHandle::read`] to avoid allocation.
    pub async fn read_bytes(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<u8>, DaosError> {
        let segs = self.read(sim, offset, len).await?;
        let mut out = vec![0u8; len as usize];
        for s in segs {
            if let Some(d) = s.data {
                let m = d.materialize();
                let start = (s.offset - offset) as usize;
                out[start..start + s.len as usize].copy_from_slice(&m);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_shift_never_overflows() {
        let max = SimDuration::from_ms(32).as_ns();
        let base = SimDuration::from_ms(1).as_ns();
        // the satellite bug: `base << attempt` overflows u64 at high
        // attempt counts; the capped form must clamp, not wrap or panic
        for attempt in [0, 1, 20, 62, 63, 64, 65, 100, 1000, u32::MAX] {
            let v = capped_exp_backoff(base, attempt, max);
            assert!(v <= max, "attempt {attempt} escaped the cap: {v}");
            assert!(v >= base.min(max), "attempt {attempt} under the base");
        }
        // sane growth before the cap bites
        assert_eq!(capped_exp_backoff(1, 0, u64::MAX), 1);
        assert_eq!(capped_exp_backoff(1, 10, u64::MAX), 1024);
        // at/past 63 shifts the curve saturates instead of wrapping
        assert_eq!(capped_exp_backoff(2, 63, u64::MAX), u64::MAX);
        assert_eq!(capped_exp_backoff(1, 64, u64::MAX), u64::MAX);
        assert_eq!(capped_exp_backoff(0, 64, 100), 100);
    }

    #[test]
    fn retry_budget_accounting() {
        let retry = RetryPolicy {
            retry_budget: 2,
            ..RetryPolicy::default()
        };
        let damp = DampState::new(&retry);
        assert_eq!(damp.tokens_x16.get(), 32);
        // 16 refunds = 1 token at the documented 1/16 rate
        assert_eq!(RETRY_REFILL_X16 * 16, 16);
    }

    #[test]
    fn breaker_state_machine_is_deterministic() {
        let (threshold, open_ns) = (3, 1_000);
        let mut b = Breaker::default();
        // two failures stay closed, the third opens
        breaker_transition(&mut b, threshold, open_ns, 10, false, true);
        breaker_transition(&mut b, threshold, open_ns, 20, false, true);
        assert_eq!(b.open_until_ns, 0);
        breaker_transition(&mut b, threshold, open_ns, 30, false, true);
        assert_eq!(b.open_until_ns, 1_030);
        // failed half-open probe re-opens for a fresh window
        b.probe_inflight = true;
        breaker_transition(&mut b, threshold, open_ns, 2_000, true, true);
        assert!(!b.probe_inflight);
        assert_eq!(b.open_until_ns, 3_000);
        // successful probe closes outright and resets the failure count
        b.probe_inflight = true;
        breaker_transition(&mut b, threshold, open_ns, 4_000, true, false);
        assert_eq!(
            (b.consecutive, b.open_until_ns, b.probe_inflight),
            (0, 0, false)
        );
    }
}
