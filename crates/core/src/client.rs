//! `libdaos` for applications: pool/container handles and the object APIs.
//!
//! Clients compute shard placement locally from the pool map (DAOS's
//! algorithmic placement) and talk directly to the engine holding each
//! shard. Two object APIs are provided, mirroring `daos_kv`/`daos_array`:
//!
//! * [`KvHandle`] — flat key → value;
//! * [`ArrayHandle`] — a byte array chunked over the object's shards
//!   (`chunk_size` bytes per dkey, dkeys round-robined across shards),
//!   which is what DFS files are built on.

use std::rc::Rc;

use daos_fabric::NodeId;
use daos_placement::{place, splitmix64, Layout, ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::Sim;
use daos_vos::tree::ReadSeg;
use daos_vos::{key, Epoch, Key, Payload};

use crate::cluster::Cluster;
use crate::proto::{DaosError, Request, Response};
use crate::ContId;

/// Read "latest" epoch sentinel.
pub const EPOCH_LATEST: Epoch = Epoch::MAX;

/// A client process bound to a client node's fabric port.
#[derive(Clone)]
pub struct DaosClient {
    cluster: Rc<Cluster>,
    node: NodeId,
}

impl DaosClient {
    /// A client on client node `client_node_idx` (0-based).
    pub fn new(cluster: Rc<Cluster>, client_node_idx: u32) -> Self {
        let node = cluster.client_node(client_node_idx);
        DaosClient { cluster, node }
    }

    /// The cluster this client talks to.
    pub fn cluster(&self) -> &Rc<Cluster> {
        &self.cluster
    }
    /// The fabric node this client injects from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Issue one RPC to engine `engine_idx`.
    pub async fn call(&self, sim: &Sim, engine_idx: u32, req: Request) -> Result<Response, DaosError> {
        let bulk = req.bulk_in();
        self.cluster
            .engine(engine_idx)
            .endpoint()
            .call(sim, self.node, req, bulk)
            .await
            .map_err(|_| DaosError::Transport)
    }

    /// Control-plane RPC: retries across pool-service replicas following
    /// `NotLeader` hints until the service answers (it may still return a
    /// semantic error such as `ContainerExists`).
    pub async fn control(&self, sim: &Sim, req: Request) -> Result<Response, DaosError> {
        let svc = self.cluster.replicas().len().max(1) as u32;
        let mut engine = 0u32;
        for _attempt in 0..200 {
            match self.call(sim, engine, req.clone()).await? {
                Response::Err(DaosError::NotLeader { hint }) => {
                    engine = match hint {
                        // raft ids are engine index + 1
                        Some(id) if id >= 1 && id <= svc as u64 => (id - 1) as u32,
                        _ => (engine + 1) % svc,
                    };
                    sim.sleep_ms(2).await;
                }
                other => return Ok(other),
            }
        }
        Err(DaosError::Other("pool service never elected a leader".into()))
    }

    /// Connect to the pool (waits for the pool service to be up).
    pub async fn connect(&self, sim: &Sim) -> Result<PoolHandle, DaosError> {
        match self.control(sim, Request::PoolConnect).await? {
            Response::Connected { .. } => Ok(PoolHandle {
                client: self.clone(),
            }),
            Response::Err(e) => Err(e),
            other => Err(DaosError::Other(format!("unexpected: {other:?}"))),
        }
    }
}

/// An open pool connection.
#[derive(Clone)]
pub struct PoolHandle {
    client: DaosClient,
}

impl PoolHandle {
    /// Create a container (error if it exists).
    pub async fn create_container(&self, sim: &Sim, cont: ContId) -> Result<ContainerHandle, DaosError> {
        self.client
            .control(sim, Request::ContCreate { cont })
            .await?
            .ok()?;
        Ok(self.handle(cont))
    }

    /// Open an existing container.
    pub async fn open_container(&self, sim: &Sim, cont: ContId) -> Result<ContainerHandle, DaosError> {
        self.client
            .control(sim, Request::ContOpen { cont })
            .await?
            .ok()?;
        Ok(self.handle(cont))
    }

    /// Open-or-create (what `dfs_mount` does).
    pub async fn open_or_create(&self, sim: &Sim, cont: ContId) -> Result<ContainerHandle, DaosError> {
        match self.create_container(sim, cont).await {
            Ok(h) => Ok(h),
            Err(DaosError::ContainerExists(_)) => self.open_container(sim, cont).await,
            Err(e) => Err(e),
        }
    }

    /// Destroy a container.
    pub async fn destroy_container(&self, sim: &Sim, cont: ContId) -> Result<(), DaosError> {
        self.client
            .control(sim, Request::ContDestroy { cont })
            .await?
            .ok()
    }

    fn handle(&self, cont: ContId) -> ContainerHandle {
        ContainerHandle {
            client: self.client.clone(),
            cont,
        }
    }
}

/// An open container.
#[derive(Clone)]
pub struct ContainerHandle {
    client: DaosClient,
    cont: ContId,
}

impl ContainerHandle {
    /// The container id.
    pub fn id(&self) -> ContId {
        self.cont
    }
    /// The client this handle rides on.
    pub fn client(&self) -> &DaosClient {
        &self.client
    }

    /// Capture a container snapshot: an epoch at or above every update
    /// completed so far (queried from every target, like
    /// `daos_cont_create_snap`). Reads at this epoch see exactly the data
    /// present now, regardless of later overwrites.
    pub async fn snapshot(&self, sim: &Sim) -> Result<Epoch, DaosError> {
        let cluster = self.client.cluster.clone();
        let tpe = cluster.cfg.targets_per_engine;
        let futs: Vec<_> = (0..cluster.cfg.engine_count() * tpe)
            .map(|t| {
                let client = self.client.clone();
                let sim = sim.clone();
                async move {
                    client
                        .call(&sim, t / tpe, Request::QueryEpoch { target: t % tpe })
                        .await
                }
            })
            .collect();
        let mut max = 0;
        for r in join_all(sim, futs).await {
            match r? {
                Response::Epoch(e) => max = max.max(e),
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::Other(format!("unexpected: {other:?}"))),
            }
        }
        Ok(max)
    }

    /// Open an object with a class; computes the layout client-side.
    pub fn object(&self, oid: ObjectId, class: ObjectClass) -> ObjectHandle {
        let layout = place(oid, class, &self.client.cluster.pool_map());
        ObjectHandle {
            cont: self.clone(),
            oid,
            layout,
        }
    }
}

/// An open object: the unit of placement.
#[derive(Clone)]
pub struct ObjectHandle {
    cont: ContainerHandle,
    oid: ObjectId,
    layout: Layout,
}

impl ObjectHandle {
    /// The object id.
    pub fn oid(&self) -> ObjectId {
        self.oid
    }
    /// The object's computed layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    fn route(&self, shard: u32) -> (u32, u32) {
        let t = self.layout.target_of(shard);
        let tpe = self.cont.client.cluster.cfg.targets_per_engine;
        (t / tpe, t % tpe)
    }

    fn shard_of_dkey(&self, dkey: &Key) -> u32 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in dkey {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        (splitmix64(h) % self.layout.width() as u64) as u32
    }

    /// Raw update of an array akey (most callers use [`ArrayHandle`]).
    pub async fn update(
        &self,
        sim: &Sim,
        dkey: Key,
        akey: Key,
        offset: u64,
        data: Payload,
    ) -> Result<Epoch, DaosError> {
        let shard = self.shard_of_dkey(&dkey);
        let (engine, target) = self.route(shard);
        let rsp = self
            .cont
            .client
            .call(
                sim,
                engine,
                Request::UpdateArray {
                    target,
                    cont: self.cont.cont,
                    oid: self.oid,
                    dkey,
                    akey,
                    offset,
                    data,
                },
            )
            .await?;
        match rsp {
            Response::Written { epoch } => Ok(epoch),
            Response::Err(e) => Err(e),
            other => Err(DaosError::Other(format!("unexpected: {other:?}"))),
        }
    }

    /// Raw fetch of an array akey.
    pub async fn fetch(
        &self,
        sim: &Sim,
        dkey: Key,
        akey: Key,
        offset: u64,
        len: u64,
        epoch: Epoch,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let shard = self.shard_of_dkey(&dkey);
        let (engine, target) = self.route(shard);
        let rsp = self
            .cont
            .client
            .call(
                sim,
                engine,
                Request::FetchArray {
                    target,
                    cont: self.cont.cont,
                    oid: self.oid,
                    dkey,
                    akey,
                    offset,
                    len,
                    epoch,
                },
            )
            .await?;
        match rsp {
            Response::Fetched { segs } => Ok(segs),
            Response::Err(e) => Err(e),
            other => Err(DaosError::Other(format!("unexpected: {other:?}"))),
        }
    }

    /// Punch the object on every shard (unlink).
    pub async fn punch(&self, sim: &Sim) -> Result<(), DaosError> {
        let width = self.layout.width();
        let futs: Vec<_> = (0..width)
            .map(|s| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let (engine, target) = this.route(s);
                    this.cont
                        .client
                        .call(
                            &sim,
                            engine,
                            Request::PunchObject {
                                target,
                                cont: this.cont.cont,
                                oid: this.oid,
                            },
                        )
                        .await
                        .and_then(|r| r.ok())
                }
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        Ok(())
    }

    /// Enumerate dkeys across all shards, merged and sorted.
    pub async fn list_dkeys(&self, sim: &Sim) -> Result<Vec<Key>, DaosError> {
        let width = self.layout.width();
        let futs: Vec<_> = (0..width)
            .map(|s| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let (engine, target) = this.route(s);
                    this.cont
                        .client
                        .call(
                            &sim,
                            engine,
                            Request::ListDkeys {
                                target,
                                cont: this.cont.cont,
                                oid: this.oid,
                            },
                        )
                        .await
                }
            })
            .collect();
        let mut keys = Vec::new();
        for r in join_all(sim, futs).await {
            match r? {
                Response::Dkeys(mut ks) => keys.append(&mut ks),
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::Other(format!("unexpected: {other:?}"))),
            }
        }
        keys.sort();
        keys.dedup();
        Ok(keys)
    }

    /// Key-value view of this object (`daos_kv`).
    pub fn kv(&self) -> KvHandle {
        KvHandle { obj: self.clone() }
    }

    /// Byte-array view with the given chunk size (`daos_array`).
    pub fn array(&self, chunk_size: u64) -> ArrayHandle {
        assert!(chunk_size > 0);
        ArrayHandle {
            obj: self.clone(),
            chunk_size,
        }
    }
}

/// `daos_kv`-style flat key/value API.
#[derive(Clone)]
pub struct KvHandle {
    obj: ObjectHandle,
}

impl KvHandle {
    /// Upsert `value` under `k`.
    pub async fn put(&self, sim: &Sim, k: impl AsRef<[u8]>, value: Payload) -> Result<(), DaosError> {
        let dkey = key(k);
        let shard = self.obj.shard_of_dkey(&dkey);
        let (engine, target) = self.obj.route(shard);
        self.obj
            .cont
            .client
            .call(
                sim,
                engine,
                Request::UpdateSingle {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey,
                    akey: key("v"),
                    value,
                },
            )
            .await?
            .ok()
    }

    /// Fetch the value under `k` (latest).
    pub async fn get(&self, sim: &Sim, k: impl AsRef<[u8]>) -> Result<Option<Payload>, DaosError> {
        let dkey = key(k);
        let shard = self.obj.shard_of_dkey(&dkey);
        let (engine, target) = self.obj.route(shard);
        let rsp = self
            .obj
            .cont
            .client
            .call(
                sim,
                engine,
                Request::FetchSingle {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey,
                    akey: key("v"),
                    epoch: EPOCH_LATEST,
                },
            )
            .await?;
        match rsp {
            Response::Single(v) => Ok(v),
            Response::Err(e) => Err(e),
            other => Err(DaosError::Other(format!("unexpected: {other:?}"))),
        }
    }

    /// List keys.
    pub async fn list(&self, sim: &Sim) -> Result<Vec<Key>, DaosError> {
        self.obj.list_dkeys(sim).await
    }
}

/// `daos_array`-style byte-array API: the array is chunked at `chunk_size`;
/// chunk `i` is dkey `i` (big-endian), placed on a shard chosen by dkey
/// hash (jump consistent hash), as `libdaos` does.
#[derive(Clone)]
pub struct ArrayHandle {
    obj: ObjectHandle,
    chunk_size: u64,
}

impl ArrayHandle {
    /// The underlying object handle.
    pub fn object(&self) -> &ObjectHandle {
        &self.obj
    }
    /// The array's chunk size.
    pub fn chunk_size(&self) -> u64 {
        self.chunk_size
    }

    fn chunk_dkey(chunk: u64) -> Key {
        chunk.to_be_bytes().to_vec()
    }

    /// Redundancy-group width (1 for plain sharding, r for RP_r, k+p for EC).
    fn group_width(&self) -> u32 {
        self.obj.layout.class.group_width()
    }

    /// Number of redundancy groups in the layout.
    fn group_count(&self) -> u32 {
        (self.obj.layout.width() / self.group_width()).max(1)
    }

    /// The redundancy group a chunk belongs to.
    ///
    /// DAOS routes array chunks by dkey hash, not round-robin: the spread
    /// is statistical, which is what makes wide classes blow the engines'
    /// stream windows in file-per-process workloads.
    fn group_of_chunk(&self, chunk: u64) -> u32 {
        let h = splitmix64(chunk ^ self.obj.oid.mix().rotate_left(23));
        daos_placement::jump_consistent_hash(h, self.group_count())
    }

    /// Shard indices of redundancy group `g`.
    fn shards_of_group(&self, g: u32) -> std::ops::Range<u32> {
        let w = self.group_width();
        g * w..(g + 1) * w
    }

    /// Is the target behind `shard` excluded from the current pool map?
    fn shard_excluded(&self, shard: u32) -> bool {
        let t = self.obj.layout.target_of(shard);
        self.obj.cont.client.cluster.pool_map().is_excluded(t)
    }

    /// Raw single-shard update of chunk data at a chunk-relative offset.
    async fn update_shard(
        &self,
        sim: &Sim,
        shard: u32,
        chunk: u64,
        offset: u64,
        data: Payload,
    ) -> Result<(), DaosError> {
        let (engine, target) = self.obj.route(shard);
        self.obj
            .cont
            .client
            .call(
                sim,
                engine,
                Request::UpdateArray {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey: Self::chunk_dkey(chunk),
                    akey: key("0"),
                    offset,
                    data,
                },
            )
            .await?
            .ok()
    }

    /// Raw single-shard fetch; segments come back shard-relative.
    async fn fetch_shard(
        &self,
        sim: &Sim,
        shard: u32,
        chunk: u64,
        offset: u64,
        len: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let (engine, target) = self.obj.route(shard);
        let rsp = self
            .obj
            .cont
            .client
            .call(
                sim,
                engine,
                Request::FetchArray {
                    target,
                    cont: self.obj.cont.cont,
                    oid: self.obj.oid,
                    dkey: Self::chunk_dkey(chunk),
                    akey: key("0"),
                    offset,
                    len,
                    epoch: EPOCH_LATEST,
                },
            )
            .await?;
        match rsp {
            Response::Fetched { segs } => Ok(segs),
            Response::Err(e) => Err(e),
            other => Err(DaosError::Other(format!("unexpected: {other:?}"))),
        }
    }

    /// Materialise shard-relative segments into `len` bytes (holes = 0).
    fn flatten(segs: &[ReadSeg], base: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        for s in segs {
            if let Some(d) = &s.data {
                let m = d.materialize();
                let start = (s.offset - base) as usize;
                out[start..start + s.len as usize].copy_from_slice(&m);
            }
        }
        out
    }

    /// Write one piece of one chunk through the object's protection class.
    async fn write_piece(
        &self,
        sim: &Sim,
        chunk: u64,
        in_chunk: u64,
        piece: Payload,
    ) -> Result<(), DaosError> {
        let group = self.shards_of_group(self.group_of_chunk(chunk));
        match self.obj.layout.class {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                self.update_shard(sim, group.start, chunk, in_chunk, piece)
                    .await
            }
            ObjectClass::Replicated { .. } => {
                // fan the identical piece out to every replica of the group
                let futs: Vec<_> = group
                    .map(|shard| {
                        let this = self.clone();
                        let sim = sim.clone();
                        let data = piece.clone();
                        async move { this.update_shard(&sim, shard, chunk, in_chunk, data).await }
                    })
                    .collect();
                for r in join_all(sim, futs).await {
                    r?;
                }
                Ok(())
            }
            ObjectClass::ErasureCoded { data: k, parity: p, .. } => {
                let (k, p) = (k as u64, p as u64);
                if self.chunk_size % k != 0 {
                    return Err(DaosError::Other(
                        "EC arrays need chunk_size divisible by k".into(),
                    ));
                }
                let cell = self.chunk_size / k;
                if in_chunk % cell != 0 || piece.len() % cell != 0 {
                    return Err(DaosError::Other(format!(
                        "EC arrays require cell-aligned I/O (cell = {cell} bytes)"
                    )));
                }
                let first_cell = in_chunk / cell;
                let n_cells = piece.len() / cell;
                // write the data cells
                let futs: Vec<_> = (0..n_cells)
                    .map(|i| {
                        let this = self.clone();
                        let sim = sim.clone();
                        let shard = group.start + (first_cell + i) as u32;
                        let data = piece.slice(i * cell, cell);
                        async move { this.update_shard(&sim, shard, chunk, 0, data).await }
                    })
                    .collect();
                for r in join_all(sim, futs).await {
                    r?;
                }
                // parity = XOR over the stripe; read-modify-write any cells
                // this piece did not cover
                let mut stripe: Vec<Vec<u8>> = Vec::with_capacity(k as usize);
                for c in 0..k {
                    if c >= first_cell && c < first_cell + n_cells {
                        stripe.push(
                            piece
                                .slice((c - first_cell) * cell, cell)
                                .materialize()
                                .to_vec(),
                        );
                    } else {
                        let segs = self
                            .fetch_shard(sim, group.start + c as u32, chunk, 0, cell)
                            .await?;
                        stripe.push(Self::flatten(&segs, 0, cell));
                    }
                }
                let mut parity = vec![0u8; cell as usize];
                for row in &stripe {
                    for (o, b) in parity.iter_mut().zip(row) {
                        *o ^= b;
                    }
                }
                let futs: Vec<_> = (0..p)
                    .map(|j| {
                        let this = self.clone();
                        let sim = sim.clone();
                        let shard = group.start + (k + j) as u32;
                        let data = Payload::bytes(parity.clone());
                        async move { this.update_shard(&sim, shard, chunk, 0, data).await }
                    })
                    .collect();
                for r in join_all(sim, futs).await {
                    r?;
                }
                Ok(())
            }
        }
    }

    /// Read one piece of one chunk through the protection class; returns
    /// chunk-relative segments. Survives excluded targets where the class
    /// has redundancy (degraded read / EC reconstruction).
    async fn read_piece(
        &self,
        sim: &Sim,
        chunk: u64,
        in_chunk: u64,
        len: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let group = self.shards_of_group(self.group_of_chunk(chunk));
        match self.obj.layout.class {
            ObjectClass::Sharded(_) | ObjectClass::ShardedMax => {
                self.fetch_shard(sim, group.start, chunk, in_chunk, len).await
            }
            ObjectClass::Replicated { replicas, .. } => {
                // spread reads over replicas; skip excluded targets
                let r = replicas as u64;
                for attempt in 0..r {
                    let shard = group.start + ((chunk + attempt) % r) as u32;
                    if self.shard_excluded(shard) {
                        continue;
                    }
                    return self.fetch_shard(sim, shard, chunk, in_chunk, len).await;
                }
                Err(DaosError::Other("all replicas excluded".into()))
            }
            ObjectClass::ErasureCoded { data: k, parity: p, .. } => {
                let (k, p) = (k as u64, p as u64);
                let cell = self.chunk_size / k;
                let first_cell = in_chunk / cell;
                let last_cell = (in_chunk + len - 1) / cell;
                let mut out: Vec<ReadSeg> = Vec::new();
                for c in first_cell..=last_cell {
                    let cell_lo = (c * cell).max(in_chunk);
                    let cell_hi = ((c + 1) * cell).min(in_chunk + len);
                    let want_off = cell_lo - c * cell;
                    let want_len = cell_hi - cell_lo;
                    let shard = group.start + c as u32;
                    if !self.shard_excluded(shard) {
                        let segs = self
                            .fetch_shard(sim, shard, chunk, want_off, want_len)
                            .await?;
                        out.extend(segs.into_iter().map(|s| ReadSeg {
                            offset: c * cell + s.offset,
                            len: s.len,
                            data: s.data,
                        }));
                        continue;
                    }
                    // degraded: reconstruct the cell from survivors + parity
                    let mut acc = vec![0u8; cell as usize];
                    let mut recovered = false;
                    for other in 0..k {
                        if other == c {
                            continue;
                        }
                        let segs = self
                            .fetch_shard(sim, group.start + other as u32, chunk, 0, cell)
                            .await?;
                        for (o, b) in acc.iter_mut().zip(Self::flatten(&segs, 0, cell)) {
                            *o ^= b;
                        }
                    }
                    for j in 0..p {
                        let pshard = group.start + (k + j) as u32;
                        if self.shard_excluded(pshard) {
                            continue;
                        }
                        let segs = self.fetch_shard(sim, pshard, chunk, 0, cell).await?;
                        for (o, b) in acc.iter_mut().zip(Self::flatten(&segs, 0, cell)) {
                            *o ^= b;
                        }
                        recovered = true;
                        break;
                    }
                    if !recovered {
                        return Err(DaosError::Other(
                            "EC group lost more shards than parity covers".into(),
                        ));
                    }
                    out.push(ReadSeg {
                        offset: cell_lo,
                        len: want_len,
                        data: Some(Payload::bytes(
                            acc[want_off as usize..(want_off + want_len) as usize].to_vec(),
                        )),
                    });
                }
                Ok(out)
            }
        }
    }

    /// Split `[offset, offset+len)` into per-chunk pieces:
    /// `(chunk, offset_in_chunk, piece_offset_in_request, piece_len)`.
    fn pieces(&self, offset: u64, len: u64) -> Vec<(u64, u64, u64, u64)> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let chunk = cur / self.chunk_size;
            let in_chunk = cur % self.chunk_size;
            let take = (self.chunk_size - in_chunk).min(end - cur);
            out.push((chunk, in_chunk, cur - offset, take));
            cur += take;
        }
        out
    }

    /// Write `data` at byte `offset`; chunks are written concurrently
    /// (libdaos event-queue style).
    pub async fn write(&self, sim: &Sim, offset: u64, data: Payload) -> Result<(), DaosError> {
        let pieces = self.pieces(offset, data.len());
        let futs: Vec<_> = pieces
            .into_iter()
            .map(|(chunk, in_chunk, src_off, len)| {
                let this = self.clone();
                let sim = sim.clone();
                let piece = data.slice(src_off, len);
                async move { this.write_piece(&sim, chunk, in_chunk, piece).await }
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        Ok(())
    }

    /// Read `[offset, offset+len)` as of a container snapshot epoch.
    ///
    /// Only supported for unprotected classes (snapshots of replicated/EC
    /// data read the primary). Writes after the snapshot are invisible.
    pub async fn read_at_epoch(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
        epoch: Epoch,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let pieces = self.pieces(offset, len);
        let mut segs = Vec::new();
        for (chunk, in_chunk, _src, plen) in pieces {
            let group = self.shards_of_group(self.group_of_chunk(chunk));
            let (engine, target) = self.obj.route(group.start);
            let rsp = self
                .obj
                .cont
                .client
                .call(
                    sim,
                    engine,
                    Request::FetchArray {
                        target,
                        cont: self.obj.cont.cont,
                        oid: self.obj.oid,
                        dkey: Self::chunk_dkey(chunk),
                        akey: key("0"),
                        offset: in_chunk,
                        len: plen,
                        epoch,
                    },
                )
                .await?;
            match rsp {
                Response::Fetched { segs: s } => {
                    let base = chunk * self.chunk_size;
                    segs.extend(s.into_iter().map(|x| ReadSeg {
                        offset: base + x.offset,
                        len: x.len,
                        data: x.data,
                    }));
                }
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::Other(format!("unexpected: {other:?}"))),
            }
        }
        segs.sort_by_key(|s| s.offset);
        Ok(segs)
    }

    /// Read `len` bytes at `offset` (latest); unwritten ranges come back as
    /// holes. Segments are returned in array-offset order.
    pub async fn read(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        let pieces = self.pieces(offset, len);
        let futs: Vec<_> = pieces
            .into_iter()
            .map(|(chunk, in_chunk, _src_off, plen)| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let segs = this.read_piece(&sim, chunk, in_chunk, plen).await?;
                    // rebase chunk-relative offsets to array offsets
                    let base = chunk * this.chunk_size;
                    Ok::<_, DaosError>(
                        segs.into_iter()
                            .map(|s| ReadSeg {
                                offset: base + s.offset,
                                len: s.len,
                                data: s.data,
                            })
                            .collect::<Vec<_>>(),
                    )
                }
            })
            .collect();
        let mut segs = Vec::new();
        for r in join_all(sim, futs).await {
            segs.extend(r?);
        }
        segs.sort_by_key(|s| s.offset);
        Ok(segs)
    }

    /// Punch (logically zero) `[offset, offset+len)`; all shards of each
    /// affected chunk are punched so every replica stays consistent.
    pub async fn punch(&self, sim: &Sim, offset: u64, len: u64) -> Result<(), DaosError> {
        for (chunk, in_chunk, _src, plen) in self.pieces(offset, len) {
            let group = self.shards_of_group(self.group_of_chunk(chunk));
            let futs: Vec<_> = group
                .map(|shard| {
                    let this = self.clone();
                    let sim = sim.clone();
                    async move {
                        let (engine, target) = this.obj.route(shard);
                        this.obj
                            .cont
                            .client
                            .call(
                                &sim,
                                engine,
                                Request::PunchArray {
                                    target,
                                    cont: this.obj.cont.cont,
                                    oid: this.obj.oid,
                                    dkey: Self::chunk_dkey(chunk),
                                    akey: key("0"),
                                    offset: in_chunk,
                                    len: plen,
                                },
                            )
                            .await
                            .and_then(|r| r.ok())
                    }
                })
                .collect();
            for r in join_all(sim, futs).await {
                r?;
            }
        }
        Ok(())
    }

    /// The array's size in bytes (highest written offset + 1), queried
    /// from every shard like `daos_array_get_size`.
    pub async fn size(&self, sim: &Sim) -> Result<u64, DaosError> {
        let width = self.obj.layout.width();
        let futs: Vec<_> = (0..width)
            .map(|s| {
                let this = self.clone();
                let sim = sim.clone();
                async move {
                    let (engine, target) = this.obj.route(s);
                    this.obj
                        .cont
                        .client
                        .call(
                            &sim,
                            engine,
                            Request::ArrayMaxChunk {
                                target,
                                cont: this.obj.cont.cont,
                                oid: this.obj.oid,
                                akey: key("0"),
                            },
                        )
                        .await
                }
            })
            .collect();
        let mut size = 0u64;
        for r in join_all(sim, futs).await {
            match r? {
                Response::MaxChunk(Some((dk, inner))) => {
                    let chunk = u64::from_be_bytes(
                        dk.as_slice().try_into().map_err(|_| {
                            DaosError::Other("malformed chunk dkey".into())
                        })?,
                    );
                    size = size.max(chunk * self.chunk_size + inner);
                }
                Response::MaxChunk(None) => {}
                Response::Err(e) => return Err(e),
                other => return Err(DaosError::Other(format!("unexpected: {other:?}"))),
            }
        }
        Ok(size)
    }

    /// Read and materialise exactly `len` bytes (holes as zeroes) — test
    /// helper; benchmarks use [`ArrayHandle::read`] to avoid allocation.
    pub async fn read_bytes(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<u8>, DaosError> {
        let segs = self.read(sim, offset, len).await?;
        let mut out = vec![0u8; len as usize];
        for s in segs {
            if let Some(d) = s.data {
                let m = d.materialize();
                let start = (s.offset - offset) as usize;
                out[start..start + s.len as usize].copy_from_slice(&m);
            }
        }
        Ok(out)
    }
}
