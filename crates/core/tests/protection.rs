//! Data-protection tests: replicated (RP_n) and erasure-coded (EC_k+p)
//! object classes — DAOS's "advanced data protection" (paper §II) — with
//! write fan-out, degraded reads over excluded targets, and XOR
//! reconstruction verified byte-for-byte.

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::units::{KIB, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

fn testbed() -> (Sim, ClusterConfig) {
    (
        Sim::new(0x9107EC7),
        ClusterConfig {
            server_nodes: 4,
            engines_per_node: 1,
            targets_per_engine: 4,
            ..ClusterConfig::tiny(1)
        },
    )
}

#[test]
fn replicated_write_fans_out_and_reads_back() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont
            .object(ObjectId::new(2, 2), ObjectClass::RP_3G1)
            .array(256 * KIB);
        let data = Payload::pattern(11, MIB);
        arr.write(&sim, 0, data.clone()).await.unwrap();
        // 3-way replication: media sees 3x the application bytes
        assert_eq!(
            cluster.total_bytes_written(),
            3 * MIB,
            "RP_3 must write every replica"
        );
        let got = arr.read_bytes(&sim, 0, MIB).await.unwrap();
        assert_eq!(got, data.materialize().to_vec());
    });
}

#[test]
fn replicated_read_survives_target_exclusions() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let obj = cont.object(ObjectId::new(3, 3), ObjectClass::RP_3G1);
        let arr = obj.array(256 * KIB);
        let data = Payload::pattern(12, MIB);
        arr.write(&sim, 0, data.clone()).await.unwrap();
        // kill two of the three replica targets: reads must still succeed
        let shards = obj.layout().shards.clone();
        cluster.exclude_target(shards[0]);
        cluster.exclude_target(shards[1]);
        let got = arr.read_bytes(&sim, 0, MIB).await.unwrap();
        assert_eq!(got, data.materialize().to_vec(), "degraded read corrupt");
        // losing the last replica is fatal
        cluster.exclude_target(shards[2]);
        assert!(
            arr.read(&sim, 0, MIB).await.is_err(),
            "read must fail once every replica is gone"
        );
        // reintegration restores service
        cluster.reintegrate_target(shards[2]);
        assert!(arr.read(&sim, 0, MIB).await.is_ok());
    });
}

#[test]
fn erasure_coded_round_trip_and_amplification() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        // EC_2P1, one group on a 16-target pool; 256 KiB chunks -> 128 KiB cells
        let class = ObjectClass::ErasureCoded {
            data: 2,
            parity: 1,
            groups: Some(1),
        };
        let arr = cont.object(ObjectId::new(4, 4), class).array(256 * KIB);
        let data = Payload::pattern(13, MIB); // 4 full chunks
        arr.write(&sim, 0, data.clone()).await.unwrap();
        // 2+1 EC: 1.5x write amplification
        assert_eq!(cluster.total_bytes_written(), 3 * MIB / 2);
        let got = arr.read_bytes(&sim, 0, MIB).await.unwrap();
        assert_eq!(got, data.materialize().to_vec());
    });
}

#[test]
fn erasure_coded_reconstructs_lost_data_cell() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let class = ObjectClass::ErasureCoded {
            data: 2,
            parity: 1,
            groups: Some(1),
        };
        let obj = cont.object(ObjectId::new(5, 5), class);
        let arr = obj.array(256 * KIB);
        let data = Payload::pattern(14, 512 * KIB);
        arr.write(&sim, 0, data.clone()).await.unwrap();
        // lose the first data shard: XOR reconstruction must produce the
        // exact original bytes
        let shards = obj.layout().shards.clone();
        cluster.exclude_target(shards[0]);
        let got = arr.read_bytes(&sim, 0, 512 * KIB).await.unwrap();
        assert_eq!(
            got,
            data.materialize().to_vec(),
            "EC reconstruction corrupt"
        );
        // also losing the parity shard exceeds p=1: reads of the lost cell fail
        cluster.exclude_target(shards[2]);
        assert!(arr.read(&sim, 0, 512 * KIB).await.is_err());
    });
}

#[test]
fn erasure_coded_rejects_unaligned_io() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let class = ObjectClass::ErasureCoded {
            data: 2,
            parity: 1,
            groups: Some(1),
        };
        let arr = cont.object(ObjectId::new(6, 6), class).array(256 * KIB);
        let err = arr.write(&sim, 100, Payload::pattern(1, 1000)).await;
        assert!(err.is_err(), "cell-unaligned EC write must be rejected");
    });
}

#[test]
fn ec_partial_stripe_update_keeps_parity_consistent() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let class = ObjectClass::ErasureCoded {
            data: 2,
            parity: 1,
            groups: Some(1),
        };
        let obj = cont.object(ObjectId::new(7, 7), class);
        let arr = obj.array(256 * KIB);
        let cell = 128 * KIB;
        // full-chunk write, then overwrite only the second cell (RMW parity)
        arr.write(&sim, 0, Payload::pattern(20, 256 * KIB))
            .await
            .unwrap();
        arr.write(&sim, cell, Payload::pattern(21, cell))
            .await
            .unwrap();
        // lose the FIRST cell's shard: reconstruction must reflect both writes
        let shards = obj.layout().shards.clone();
        cluster.exclude_target(shards[0]);
        let got = arr.read_bytes(&sim, 0, 256 * KIB).await.unwrap();
        let mut want = Payload::pattern(20, 256 * KIB).materialize().to_vec();
        let over = Payload::pattern(21, cell).materialize();
        want[cell as usize..].copy_from_slice(&over);
        assert_eq!(got, want, "parity stale after partial-stripe update");
    });
}

#[test]
fn replication_spreads_reads_across_replicas() {
    let (mut sim, cfg) = testbed();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont
            .object(ObjectId::new(8, 8), ObjectClass::RP_2GX)
            .array(64 * KIB);
        // many chunks: reads round-robin over the 2 replicas per group
        arr.write(&sim, 0, Payload::pattern(30, MIB)).await.unwrap();
        let before = cluster.total_bytes_read();
        arr.read(&sim, 0, MIB).await.unwrap();
        let after = cluster.total_bytes_read();
        assert_eq!(after - before, MIB, "reads must fetch one replica only");
    });
}
