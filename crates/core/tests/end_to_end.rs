//! End-to-end tests: client → fabric → engine → VOS → media, with the
//! RAFT-backed pool service on the control path.

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient, DaosError};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::units::MIB;
use daos_sim::Sim;
use daos_vos::Payload;

fn tiny() -> (Sim, ClusterConfig) {
    (Sim::new(0xDA05), ClusterConfig::tiny(1))
}

#[test]
fn pool_connect_and_container_lifecycle() {
    let (mut sim, cfg) = tiny();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.expect("connect");
        let _cont = pool.create_container(&sim, 1).await.expect("create");
        // duplicate create fails, open succeeds, open-or-create succeeds
        match pool.create_container(&sim, 1).await {
            Err(DaosError::ContainerExists(1)) => {}
            Ok(_) => panic!("expected ContainerExists"),
            Err(e) => panic!("expected ContainerExists, got {e:?}"),
        }
        pool.open_container(&sim, 1).await.expect("open");
        pool.open_or_create(&sim, 1).await.expect("open_or_create");
        match pool.open_container(&sim, 99).await {
            Err(DaosError::NoContainer(99)) => {}
            Ok(_) => panic!("expected NoContainer"),
            Err(e) => panic!("expected NoContainer, got {e:?}"),
        }
        pool.destroy_container(&sim, 1).await.expect("destroy");
        match pool.open_container(&sim, 1).await {
            Err(DaosError::NoContainer(1)) => {}
            Ok(_) => panic!("expected NoContainer after destroy"),
            Err(e) => panic!("expected NoContainer after destroy, got {e:?}"),
        }
    });
}

#[test]
fn pool_state_replicated_to_followers() {
    let mut sim = Sim::new(7);
    let cfg = ClusterConfig {
        svc_replicas: 3,
        ..ClusterConfig::tiny(1)
    };
    // tiny() has 2 engines; svc_replicas clamps to engine count via take()
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        for c in 1..=5u64 {
            pool.create_container(&sim, c).await.unwrap();
        }
        // let replication settle
        sim.sleep_ms(100).await;
        for r in cluster.replicas() {
            let st = r.state();
            assert_eq!(
                st.containers.len(),
                5,
                "replica should have all containers, got {:?}",
                st.containers
            );
        }
    });
}

#[test]
fn kv_put_get_round_trip() {
    let (mut sim, cfg) = tiny();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let kv = cont.object(ObjectId::new(1, 1), ObjectClass::S1).kv();
        kv.put(&sim, "alpha", Payload::bytes(vec![1, 2, 3]))
            .await
            .unwrap();
        kv.put(&sim, "beta", Payload::bytes(vec![4])).await.unwrap();
        let v = kv.get(&sim, "alpha").await.unwrap().unwrap();
        assert_eq!(&v.materialize()[..], &[1, 2, 3]);
        assert!(kv.get(&sim, "gamma").await.unwrap().is_none());
        // overwrite
        kv.put(&sim, "alpha", Payload::bytes(vec![9, 9]))
            .await
            .unwrap();
        let v = kv.get(&sim, "alpha").await.unwrap().unwrap();
        assert_eq!(&v.materialize()[..], &[9, 9]);
        let keys = kv.list(&sim).await.unwrap();
        assert_eq!(keys, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    });
}

#[test]
fn array_write_read_integrity_across_classes() {
    for class in [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX] {
        let (mut sim, cfg) = tiny();
        sim.block_on(move |sim| async move {
            let cluster = Cluster::build(&sim, cfg);
            let client = DaosClient::new(Rc::clone(&cluster), 0);
            let pool = client.connect(&sim).await.unwrap();
            let cont = pool.create_container(&sim, 1).await.unwrap();
            let arr = cont.object(ObjectId::new(2, 7), class).array(MIB);
            // 3.5 MiB spanning several chunks, unaligned offset
            let data = Payload::pattern(42, 3 * MIB + MIB / 2);
            arr.write(&sim, 12345, data.clone()).await.unwrap();
            let got = arr.read_bytes(&sim, 12345, data.len()).await.unwrap();
            assert_eq!(
                got,
                data.materialize().to_vec(),
                "round trip failed for {class}"
            );
            // holes read as zeroes
            let hole = arr.read_bytes(&sim, 0, 100).await.unwrap();
            assert!(hole.iter().all(|&b| b == 0));
        });
    }
}

#[test]
fn array_overwrite_latest_wins() {
    let (mut sim, cfg) = tiny();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont
            .object(ObjectId::new(3, 3), ObjectClass::S2)
            .array(64 * 1024);
        arr.write(&sim, 0, Payload::pattern(1, 256 * 1024))
            .await
            .unwrap();
        arr.write(&sim, 100_000, Payload::pattern(2, 50_000))
            .await
            .unwrap();
        let got = arr.read_bytes(&sim, 0, 256 * 1024).await.unwrap();
        let base = Payload::pattern(1, 256 * 1024).materialize();
        let over = Payload::pattern(2, 50_000).materialize();
        assert_eq!(&got[..100_000], &base[..100_000]);
        assert_eq!(&got[100_000..150_000], &over[..]);
        assert_eq!(&got[150_000..], &base[150_000..]);
    });
}

#[test]
fn punch_unlinks_object_everywhere() {
    let (mut sim, cfg) = tiny();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let obj = cont.object(ObjectId::new(5, 5), ObjectClass::SX);
        let arr = obj.array(64 * 1024);
        arr.write(&sim, 0, Payload::pattern(1, MIB)).await.unwrap();
        obj.punch(&sim).await.unwrap();
        let got = arr.read_bytes(&sim, 0, MIB).await.unwrap();
        assert!(
            got.iter().all(|&b| b == 0),
            "punched object must read empty"
        );
    });
}

#[test]
fn concurrent_writers_shared_object_no_locks() {
    // 8 client processes interleave-writing one shared SX object: all
    // writes land, no serialisation hazard (epoch isolation).
    let (mut sim, cfg) = tiny();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let obj = cont.object(ObjectId::new(8, 8), ObjectClass::SX);
        let arr = obj.array(256 * 1024);
        let region = MIB;
        let futs: Vec<_> = (0..8u64)
            .map(|rank| {
                let arr = arr.clone();
                let sim = sim.clone();
                async move {
                    arr.write(&sim, rank * region, Payload::pattern(rank, region))
                        .await
                        .unwrap();
                }
            })
            .collect();
        daos_sim::executor::join_all(&sim, futs).await;
        for rank in 0..8u64 {
            let got = arr.read_bytes(&sim, rank * region, region).await.unwrap();
            assert_eq!(
                got,
                Payload::pattern(rank, region).materialize().to_vec(),
                "rank {rank} region corrupted"
            );
        }
        assert_eq!(cluster.total_bytes_written(), 8 * region);
    });
}

#[test]
fn io_takes_simulated_time_and_is_deterministic() {
    fn run() -> u64 {
        let (mut sim, cfg) = tiny();
        sim.block_on(move |sim| async move {
            let cluster = Cluster::build(&sim, cfg);
            let client = DaosClient::new(Rc::clone(&cluster), 0);
            let pool = client.connect(&sim).await.unwrap();
            let cont = pool.create_container(&sim, 1).await.unwrap();
            let arr = cont.object(ObjectId::new(2, 2), ObjectClass::S2).array(MIB);
            let t0 = sim.now();
            for i in 0..16u64 {
                arr.write(&sim, i * MIB, Payload::pattern(i, MIB))
                    .await
                    .unwrap();
            }
            (sim.now() - t0).as_ns()
        })
    }
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give identical timing");
    // 16 MiB over a ~11.6 GiB/s link ≈ 1.35ms minimum
    assert!(a > 1_000_000, "16 MiB cannot be instantaneous: {a}ns");
    assert!(a < 100_000_000, "suspiciously slow: {a}ns");
}
