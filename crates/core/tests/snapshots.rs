//! Container-snapshot (epoch read) tests plus the new IOR option paths
//! (`-z` random offsets, `-C` reorder, stonewalling).

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::time::SimDuration;
use daos_sim::units::MIB;
use daos_sim::Sim;
use daos_vos::Payload;

#[test]
fn snapshot_isolates_from_later_overwrites() {
    let mut sim = Sim::new(0x5A9);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(1));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont.object(ObjectId::new(1, 1), ObjectClass::S2).array(MIB);

        let v1 = Payload::pattern(1, 2 * MIB);
        arr.write(&sim, 0, v1.clone()).await.unwrap();
        let snap = cont.snapshot(&sim).await.unwrap();

        let v2 = Payload::pattern(2, 2 * MIB);
        arr.write(&sim, 0, v2.clone()).await.unwrap();

        // latest sees v2
        let latest = arr.read_bytes(&sim, 0, 2 * MIB).await.unwrap();
        assert_eq!(latest, v2.materialize().to_vec());

        // the snapshot still sees v1, byte for byte
        let segs = arr.read_at_epoch(&sim, 0, 2 * MIB, snap).await.unwrap();
        let got = daos_mpiio::assemble(&segs, 0, 2 * MIB).materialize();
        assert_eq!(got.to_vec(), v1.materialize().to_vec());
    });
}

#[test]
fn snapshot_of_unwritten_region_is_empty() {
    let mut sim = Sim::new(0x5AA);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(1));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont.object(ObjectId::new(2, 2), ObjectClass::S1).array(MIB);
        // snapshot taken before any writes
        let snap = cont.snapshot(&sim).await.unwrap();
        arr.write(&sim, 0, Payload::pattern(9, MIB)).await.unwrap();
        let segs = arr.read_at_epoch(&sim, 0, MIB, snap).await.unwrap();
        assert!(
            segs.iter().all(|s| s.data.is_none()),
            "pre-snapshot reads must see holes"
        );
    });
}

#[test]
fn snapshots_are_monotone() {
    let mut sim = Sim::new(0x5AB);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(1));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont.object(ObjectId::new(3, 3), ObjectClass::SX).array(MIB);
        let mut last = 0;
        for i in 0..4u64 {
            arr.write(&sim, i * MIB, Payload::pattern(i, MIB))
                .await
                .unwrap();
            let s = cont.snapshot(&sim).await.unwrap();
            assert!(s > last, "snapshot epochs must advance: {s} after {last}");
            last = s;
        }
    });
}

mod ior_options {
    use super::*;
    use daos_dfs::DfsConfig;
    use daos_dfuse::DfuseConfig;
    use daos_ior::{run, Api, DaosTestbed, IorParams};
    use daos_sim::units::KIB;

    fn params() -> IorParams {
        IorParams {
            api: Api::Dfs,
            transfer_size: 256 * KIB,
            block_size: MIB,
            segments: 2,
            file_per_process: true,
            ppn: 2,
            oclass: ObjectClass::S2,
            chunk_size: MIB,
            verify: true,
            do_write: true,
            do_read: true,
            random_offsets: false,
            reorder_read: false,
            stonewall: None,
        }
    }

    fn run_with(p: IorParams) -> daos_ior::IorReport {
        let mut sim = Sim::new(0x0905);
        sim.block_on(move |sim| async move {
            let env = DaosTestbed::setup(
                &sim,
                ClusterConfig::tiny(2),
                DfsConfig::default(),
                DfuseConfig::default(),
            )
            .await
            .unwrap();
            run(&sim, &env, p).await.unwrap()
        })
    }

    #[test]
    fn random_offsets_verify_clean() {
        let mut p = params();
        p.random_offsets = true;
        let r = run_with(p);
        assert_eq!(r.bytes_written, r.total_bytes);
        assert_eq!(r.bytes_read, r.total_bytes);
    }

    #[test]
    fn reorder_read_verifies_neighbours_data() {
        // -C only makes sense for the shared file in our model (fpp read
        // contexts are per-rank files); shared-file reorder must verify
        let mut p = params();
        p.file_per_process = false;
        p.reorder_read = true;
        let r = run_with(p);
        assert_eq!(r.bytes_read, r.total_bytes);
    }

    #[test]
    fn stonewall_caps_the_write_phase() {
        let mut p = params();
        p.verify = false;
        p.block_size = 8 * MIB;
        p.stonewall = Some(SimDuration::from_us(500));
        let r = run_with(p);
        assert!(
            r.bytes_written < r.total_bytes,
            "stonewall must cut the phase short ({} of {})",
            r.bytes_written,
            r.total_bytes
        );
        assert!(r.bytes_written > 0, "something must be written");
        // bandwidth uses moved bytes, so it stays sane
        assert!(r.write_gib_s() > 0.0 && r.write_gib_s() < 60.0);
    }
}

#[test]
fn background_aggregation_reclaims_overwrite_history() {
    let mut sim = Sim::new(0xA66);
    sim.block_on(|sim| async move {
        let cluster = Cluster::build(&sim, ClusterConfig::tiny(1));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont.object(ObjectId::new(9, 9), ObjectClass::S1).array(MIB);
        // hammer one region with overwrites
        for i in 0..50u64 {
            arr.write(&sim, 0, Payload::pattern(i, MIB)).await.unwrap();
        }
        let latest = Payload::pattern(49, MIB);
        // let the background service pass its retention horizon
        sim.sleep(SimDuration::from_secs(12)).await;
        let reclaimed: u64 = cluster
            .engines()
            .iter()
            .map(|e| e.extents_reclaimed())
            .sum();
        assert!(
            reclaimed >= 40,
            "aggregation should reclaim shadowed extents, got {reclaimed}"
        );
        // and the visible data is untouched
        let got = arr.read_bytes(&sim, 0, MIB).await.unwrap();
        assert_eq!(got, latest.materialize().to_vec());
    });
}
