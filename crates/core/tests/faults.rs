//! Chaos tests: an engine dies mid-run and the stack recovers end to end —
//! heartbeat detection, raft-committed exclusion, client retry/re-route,
//! background rebuild, and reintegration — with data verified
//! byte-for-byte. Every scenario is run twice to prove the fault pipeline
//! is deterministic under a fixed seed.

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient, RetryPolicy};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::fault::{FaultAction, FaultPlan};
use daos_sim::time::{SimDuration, SimTime};
use daos_sim::units::{KIB, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

fn testbed() -> ClusterConfig {
    ClusterConfig {
        server_nodes: 4,
        engines_per_node: 1,
        targets_per_engine: 4,
        ..ClusterConfig::tiny(1)
    }
}

/// Retry policy tight enough that a test doesn't spend seconds of virtual
/// time per timeout, generous enough to ride out detection + commit.
fn tight_retry() -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: SimDuration::from_ms(2),
        base_backoff: SimDuration::from_us(200),
        max_backoff: SimDuration::from_ms(4),
        max_attempts: 60,
        ..RetryPolicy::default()
    }
}

/// Outcome snapshot used to compare two runs of the same scenario.
#[derive(PartialEq, Debug)]
struct Outcome {
    final_time_ns: u64,
    map_version: u32,
    chunks_repaired: u64,
    data: Vec<u8>,
}

/// The core chaos scenario: write under a protected class while an engine
/// crashes mid-stream, wait for detection + exclusion + rebuild, verify
/// the data, then restart + reintegrate and verify again.
/// `server_nodes` must exceed the class's group width so redundancy groups
/// stay engine-disjoint and a single crash costs each group one shard.
fn crash_exclude_rebuild_reintegrate(seed: u64, class: ObjectClass, server_nodes: u32) -> Outcome {
    let mut sim = Sim::new(seed);
    let cfg = ClusterConfig {
        server_nodes,
        targets_per_engine: 2,
        ..testbed()
    };
    let tpe = cfg.targets_per_engine;
    let dead: Vec<u32> = (2 * tpe..3 * tpe).collect();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0).with_retry(tight_retry());
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let obj = cont.object(ObjectId::new(7, 7), class);
        let arr = obj.array(64 * KIB);
        let data = Payload::pattern(42, 2 * MIB);

        // phase A: first half lands on a healthy cluster
        arr.write(&sim, 0, data.slice(0, MIB)).await.unwrap();

        // engine 2 (not the pool service, which is engine 0) dies shortly
        // after the second write burst starts
        let crash_at = SimTime::from_ns(sim.now().as_ns() + 200_000);
        let injector = cluster.install_fault_plan(
            &sim,
            FaultPlan::new().at(crash_at, FaultAction::Crash { node: 2 }),
        );

        // phase B: in-flight writes hit the dead engine, time out, and must
        // retry until the heartbeat detector commits the exclusion and the
        // refreshed layout routes around it
        arr.write(&sim, MIB, data.slice(MIB, MIB)).await.unwrap();
        assert_eq!(injector.fired().len(), 1, "crash must have fired");

        // the exclusion is the only way those writes could have finished
        let version_after_exclude = cluster.pool_map().version();
        assert!(
            version_after_exclude > 1,
            "heartbeat detection must bump the map version"
        );
        let excluded = cluster.pool_map().excluded_targets();
        assert_eq!(excluded, dead, "every target of engine 2 must be excluded");

        // degraded read while the rebuild may still be running
        let got = arr.read_bytes(&sim, 0, 2 * MIB).await.unwrap();
        assert_eq!(got, data.materialize().to_vec(), "degraded read corrupt");

        // let the background rebuild finish re-protecting the object
        cluster.quiesce_rebuild(&sim).await;
        let stats = cluster.rebuild_stats();
        assert!(
            stats.chunks_repaired > 0,
            "rebuild must have repaired chunks: {stats:?}"
        );
        assert_eq!(stats.chunks_skipped, 0, "no chunk may be left behind");

        // restart the engine and reintegrate its targets
        cluster.apply_fault(&sim, FaultAction::Restart { node: 2 });
        client
            .control(
                &sim,
                daos_core::Request::PoolReintegrate {
                    targets: dead.clone(),
                },
            )
            .await
            .unwrap();
        client.refresh_pool_map(&sim).await;
        let version_after_reint = cluster.pool_map().version();
        assert!(
            version_after_reint > version_after_exclude,
            "reintegration must bump the map version again"
        );
        assert!(cluster.pool_map().excluded_targets().is_empty());
        cluster.quiesce_rebuild(&sim).await;

        // the reverted layout reads clean, including shards refilled onto
        // the returned engine
        let got = arr.read_bytes(&sim, 0, 2 * MIB).await.unwrap();
        assert_eq!(
            got,
            data.materialize().to_vec(),
            "post-reintegration read corrupt"
        );

        Outcome {
            final_time_ns: sim.now().as_ns(),
            map_version: version_after_reint,
            chunks_repaired: cluster.rebuild_stats().chunks_repaired,
            data: got,
        }
    })
}

#[test]
fn engine_crash_heals_end_to_end_rp2() {
    let a = crash_exclude_rebuild_reintegrate(0xC2A54, ObjectClass::RP_2GX, 4);
    let b = crash_exclude_rebuild_reintegrate(0xC2A54, ObjectClass::RP_2GX, 4);
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
}

#[test]
fn engine_crash_heals_end_to_end_ec() {
    let class = ObjectClass::ErasureCoded {
        data: 4,
        parity: 1,
        groups: None,
    };
    let a = crash_exclude_rebuild_reintegrate(0xEC41, class, 8);
    let b = crash_exclude_rebuild_reintegrate(0xEC41, class, 8);
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
}

/// Outcome snapshot for the rot-mixed chaos scenario.
#[derive(PartialEq, Debug)]
struct RotOutcome {
    final_time_ns: u64,
    rot_injected: u64,
    reported: u64,
    repairs_ok: u64,
    data: Vec<u8>,
}

/// BitRot mixed into the crash/restart chaos: an engine dies and is
/// excluded, rebuild re-protects the data, and only then does silent
/// corruption rot every extent on a surviving target — media faults land
/// on a full-redundancy system. Client reads must detect the rot through
/// checksums, heal through the other replica and report the bad copies;
/// the background scrubber must find the copies no client read touches.
/// After restart + reintegration every byte reads back identical.
fn crash_then_bitrot(seed: u64) -> RotOutcome {
    let mut sim = Sim::new(seed);
    let mut cfg = ClusterConfig {
        server_nodes: 4,
        targets_per_engine: 2,
        ..testbed()
    };
    // fast scrubber so the copies client reads never touch are found
    // (and repaired) well before reintegration pulls from them
    cfg.engine.scrub_interval = Some(SimDuration::from_ms(20));
    cfg.engine.scrub_chunks = 16;
    let tpe = cfg.targets_per_engine;
    let dead: Vec<u32> = (2 * tpe..3 * tpe).collect();
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0).with_retry(tight_retry());
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont
            .object(ObjectId::new(8, 8), ObjectClass::RP_2GX)
            .array(64 * KIB);
        let data = Payload::pattern(13, 2 * MIB);

        arr.write(&sim, 0, data.slice(0, MIB)).await.unwrap();
        let t0 = sim.now().as_ns();
        let injector = cluster.install_fault_plan(
            &sim,
            FaultPlan::new()
                .at(
                    SimTime::from_ns(t0 + 200_000),
                    FaultAction::Crash { node: 2 },
                )
                .at(
                    SimTime::from_ns(t0 + 60_000_000),
                    FaultAction::BitRot {
                        target: 6, // engine 3, a surviving replica holder
                        fraction_ppm: 1_000_000,
                    },
                )
                .at(
                    SimTime::from_ns(t0 + 200_000_000),
                    FaultAction::Restart { node: 2 },
                ),
        );
        // rides through the crash exactly like the plain chaos scenario
        arr.write(&sim, MIB, data.slice(MIB, MIB)).await.unwrap();
        cluster.quiesce_rebuild(&sim).await;
        assert!(
            sim.now().as_ns() < t0 + 60_000_000,
            "rebuild must finish before the rot fires"
        );

        sim.sleep_until(SimTime::from_ns(t0 + 61_000_000)).await;
        assert_eq!(injector.fired().len(), 2, "crash + rot must have fired");
        let rot_injected = cluster.corruption_stats().rot_injected;
        assert!(rot_injected > 0, "the rot event must have hit extents");

        // read-heal: any read landing on the rotten replica fails over;
        // every byte still comes back correct. Reads whose first-choice
        // replica is clean never touch the rot — those copies are the
        // scrubber's to find.
        let got = arr.read_bytes(&sim, 0, 2 * MIB).await.unwrap();
        assert_eq!(got, data.materialize().to_vec(), "read through rot corrupt");

        // give the scrubber a few passes to find the copies no client
        // read chose, then let the targeted repairs drain
        sim.sleep_until(SimTime::from_ns(t0 + 190_000_000)).await;
        cluster.quiesce_repairs(&sim).await;
        let st = cluster.corruption_stats();
        assert!(st.reported > 0, "rot must get reported: {st:?}");
        assert!(st.repairs_ok > 0, "targeted repairs must land: {st:?}");

        // restart fired at 200 ms; reintegrate and re-verify everything,
        // including shards refilled from the repaired copies
        sim.sleep_until(SimTime::from_ns(t0 + 201_000_000)).await;
        client
            .control(
                &sim,
                daos_core::Request::PoolReintegrate {
                    targets: dead.clone(),
                },
            )
            .await
            .unwrap();
        client.refresh_pool_map(&sim).await;
        cluster.quiesce_rebuild(&sim).await;
        let got = arr.read_bytes(&sim, 0, 2 * MIB).await.unwrap();
        assert_eq!(
            got,
            data.materialize().to_vec(),
            "post-reintegration read corrupt"
        );
        cluster.quiesce_repairs(&sim).await;
        let st = cluster.corruption_stats();
        RotOutcome {
            final_time_ns: sim.now().as_ns(),
            rot_injected,
            reported: st.reported,
            repairs_ok: st.repairs_ok,
            data: got,
        }
    })
}

#[test]
fn bitrot_mixed_chaos_heals_and_replays_identically() {
    let a = crash_then_bitrot(0xB17D);
    let b = crash_then_bitrot(0xB17D);
    assert_eq!(a, b, "same seed + same fault plan must replay identically");
}

/// A crashed engine that comes back *without* being excluded (it returns
/// before the detector's suspect count trips) keeps serving: transient
/// blips are retried through, not escalated.
#[test]
fn transient_blip_is_retried_through() {
    let mut sim = Sim::new(0xB11F);
    let cfg = ClusterConfig {
        heartbeat: daos_core::HeartbeatConfig {
            interval: SimDuration::from_ms(2),
            timeout: SimDuration::from_ms(1),
            suspect: 50, // patient detector: the blip must not trip it
        },
        ..testbed()
    };
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0).with_retry(tight_retry());
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();
        let arr = cont
            .object(ObjectId::new(9, 9), ObjectClass::RP_2GX)
            .array(64 * KIB);
        let data = Payload::pattern(7, MIB);

        let t0 = sim.now().as_ns();
        cluster.install_fault_plan(
            &sim,
            FaultPlan::new()
                .at(
                    SimTime::from_ns(t0 + 100_000),
                    FaultAction::Crash { node: 1 },
                )
                .at(
                    SimTime::from_ns(t0 + 3_100_000),
                    FaultAction::Restart { node: 1 },
                ),
        );
        arr.write(&sim, 0, data.clone()).await.unwrap();
        let got = arr.read_bytes(&sim, 0, MIB).await.unwrap();
        assert_eq!(got, data.materialize().to_vec());
        assert_eq!(
            cluster.pool_map().version(),
            1,
            "a 3 ms blip must not cause an exclusion"
        );
    });
}
