//! Admission-control edge cases: the engine-side gates ([`EngineConfig::
//! queue_cap`] and [`EngineConfig::inflight_cap`]) at their boundary
//! settings — cap 0 (shed everything), exact-capacity byte budgets,
//! precedence against exclusion, and counter conservation under a
//! concurrent burst. All raw RPCs go through [`DaosClient::call`] so no
//! client-side retry or damping obscures what the engine replied.

use std::rc::Rc;

use daos_core::proto::wire_csum;
use daos_core::{Cluster, ClusterConfig, DaosClient, DaosError, Request, Response, RetryPolicy};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::units::KIB;
use daos_sim::Sim;
use daos_vos::Payload;

fn testbed(queue_cap: Option<u32>, inflight_cap: Option<u64>) -> ClusterConfig {
    let mut cfg = ClusterConfig::tiny(1);
    cfg.engine.queue_cap = queue_cap;
    cfg.engine.inflight_cap = inflight_cap;
    cfg
}

/// A raw array write of `len` pattern bytes to `target` (engine-local
/// index; the engine reduces modulo its target count).
fn raw_update(target: u32, len: u64) -> Request {
    let data = Payload::pattern(9, len);
    let csum = wire_csum(&data);
    Request::UpdateArray {
        target,
        cont: 1,
        oid: ObjectId::new(3, 3),
        dkey: 0u64.to_be_bytes().to_vec(),
        akey: vec![0],
        offset: 0,
        data,
        csum,
    }
}

fn is_busy(r: &Result<Response, DaosError>) -> bool {
    matches!(r, Ok(Response::Err(DaosError::Busy { .. })))
}

/// `queue_cap = 0` sheds every data-plane request — even header-only
/// ones — while the control plane (pool service, heartbeats) keeps
/// working, so an overloaded-by-policy engine never looks dead.
#[test]
fn queue_cap_zero_sheds_all_data_plane_but_control_plane_survives() {
    let mut sim = Sim::new(11);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, testbed(Some(0), None));
        let client = DaosClient::new(Rc::clone(&cluster), 0).with_retry(RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::default()
        });
        // control plane: connect + container create bypass admission
        // (retried through leader election at t=0)
        let pool = client.connect(&sim).await.unwrap();
        let cont = pool.create_container(&sim, 1).await.unwrap();

        // data plane: header-only and bulk requests are both shed, and
        // the Busy reply itself carries no bulk payload
        let q = client
            .call(&sim, 1, Request::QueryEpoch { target: 0 })
            .await;
        assert!(is_busy(&q), "header-only data op must be shed: {q:?}");
        let w = client.call(&sim, 1, raw_update(0, 64 * KIB)).await;
        assert!(is_busy(&w), "bulk data op must be shed: {w:?}");
        if let Ok(rsp) = &w {
            assert_eq!(rsp.bulk_out(), 0, "Busy reply must be header-only");
        }
        let stats = cluster.engine(1).admission_stats();
        assert_eq!(stats.admitted, 0, "nothing may be admitted at cap 0");
        assert_eq!(stats.shed_queue, 2, "both data ops counted as sheds");
        assert_eq!(stats.inflight_bytes, 0);

        // the damped client path surfaces the shed after its attempts
        let arr = cont.object(ObjectId::new(7, 7), ObjectClass::S1).array(KIB);
        let err = arr
            .write(&sim, 0, Payload::pattern(1, KIB))
            .await
            .unwrap_err();
        assert!(
            matches!(err, DaosError::Busy { .. }),
            "retries against a cap-0 engine must surface Busy, got {err:?}"
        );

        // heartbeats ride the control lane: several detection windows pass
        // with every data op shed, yet nothing gets excluded
        sim.sleep_ms(20).await;
        assert!(
            cluster.pool_map().excluded_targets().is_empty(),
            "shedding must not look like death to the heartbeat detector"
        );
    });
}

/// The in-flight byte budget is exact: a write at precisely the cap is
/// admitted, one byte over is shed, and header-only / fetch requests
/// (which consume no write-buffer bytes) pass even at cap 0.
#[test]
fn inflight_cap_boundary_is_exact_and_ignores_headers() {
    let mut sim = Sim::new(12);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, testbed(None, Some(64 * KIB)));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        pool.create_container(&sim, 1).await.unwrap();

        // exactly at the cap: admitted (sequential, so in-flight is 0)
        let at = client.call(&sim, 1, raw_update(0, 64 * KIB)).await;
        assert!(!is_busy(&at), "write at exactly the cap must pass: {at:?}");
        // one byte over: shed
        let over = client.call(&sim, 1, raw_update(1, 64 * KIB + 1)).await;
        assert!(is_busy(&over), "cap+1 bytes must be shed: {over:?}");
        let stats = cluster.engine(1).admission_stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.shed_bytes, 1);
        assert_eq!(
            stats.shed_queue, 0,
            "the byte gate, not the queue gate, fired"
        );
        assert_eq!(
            stats.inflight_bytes, 0,
            "budget must be returned after service"
        );

        // a zero-budget engine still serves header-only ops and fetches:
        // the byte gate meters write buffers, not requests
        let zero = Cluster::build(&sim, testbed(None, Some(0)));
        let zc = DaosClient::new(Rc::clone(&zero), 0);
        zc.connect(&sim).await.unwrap();
        let q = zc.call(&sim, 1, Request::QueryEpoch { target: 0 }).await;
        assert!(
            !is_busy(&q),
            "header-only op must pass at byte-cap 0: {q:?}"
        );
        let f = zc
            .call(
                &sim,
                1,
                Request::FetchArray {
                    target: 0,
                    cont: 1,
                    oid: ObjectId::new(3, 3),
                    dkey: 0u64.to_be_bytes().to_vec(),
                    akey: vec![0],
                    offset: 0,
                    len: 64 * KIB,
                    epoch: u64::MAX,
                },
            )
            .await;
        assert!(!is_busy(&f), "fetch must pass at byte-cap 0: {f:?}");
        assert_eq!(zero.engine(1).admission_stats().shed_bytes, 0);
    });
}

/// Exclusion outranks admission: a request routed to an excluded target
/// must come back `StaleMap` (forcing a map refresh) rather than `Busy`
/// (inviting a pointless retry at the same engine).
#[test]
fn stale_map_outranks_busy_on_excluded_targets() {
    let mut sim = Sim::new(13);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, testbed(Some(0), None));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        client.connect(&sim).await.unwrap();

        // fake a newer map that excludes engine 1's local target 0
        let p = client
            .call(
                &sim,
                1,
                Request::Ping {
                    version: 2,
                    excluded: vec![0],
                },
            )
            .await;
        assert!(
            matches!(p, Ok(Response::Pong)),
            "ping must be answered: {p:?}"
        );

        let ex = client.call(&sim, 1, raw_update(0, KIB)).await;
        assert!(
            matches!(ex, Ok(Response::Err(DaosError::StaleMap { version: 2 }))),
            "excluded target must answer StaleMap even at queue cap 0: {ex:?}"
        );
        let other = client.call(&sim, 1, raw_update(1, KIB)).await;
        assert!(
            is_busy(&other),
            "non-excluded target still sheds: {other:?}"
        );
        let stats = cluster.engine(1).admission_stats();
        assert_eq!(stats.shed_queue, 1, "the StaleMap reply is not a shed");
    });
}

/// `queue_cap = 1` admits strictly serial traffic without ever shedding,
/// and under a concurrent burst the counters conserve: every arrival is
/// exactly one of admitted / shed, and the byte budget drains to zero.
#[test]
fn queue_cap_one_serial_traffic_never_sheds_and_burst_counters_conserve() {
    let mut sim = Sim::new(14);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, testbed(Some(1), None));
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.unwrap();
        pool.create_container(&sim, 1).await.unwrap();

        // sequential awaited requests: depth is always 0 at arrival
        for i in 0..4 {
            let r = client.call(&sim, 1, raw_update(0, (i + 1) * KIB)).await;
            assert!(!is_busy(&r), "serial op {i} must be admitted: {r:?}");
        }
        let stats = cluster.engine(1).admission_stats();
        assert_eq!((stats.admitted, stats.shed_queue), (4, 0));

        // concurrent burst at one target: at most one in service + the
        // depth probe sheds the pile-up; nothing is lost or double-counted
        const BURST: u64 = 8;
        let futs: Vec<_> = (0..BURST)
            .map(|_| {
                let c = DaosClient::new(Rc::clone(&cluster), 0);
                let s = sim.clone();
                async move { is_busy(&c.call(&s, 1, raw_update(0, 64 * KIB)).await) }
            })
            .collect();
        let shed_replies = join_all(&sim, futs).await.iter().filter(|&&b| b).count() as u64;
        let stats = cluster.engine(1).admission_stats();
        assert_eq!(
            stats.admitted + stats.shed_queue,
            4 + BURST,
            "every arrival is exactly one of admitted/shed: {stats:?}"
        );
        assert_eq!(
            stats.shed_queue, shed_replies,
            "each shed produced one Busy reply"
        );
        assert!(stats.shed_queue > 0, "a cap-1 burst of {BURST} must shed");
        assert_eq!(stats.inflight_bytes, 0, "byte budget must drain to zero");
    });
}
