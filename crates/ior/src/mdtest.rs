//! An mdtest-style metadata benchmark: per-rank create / stat / unlink
//! storms, covering the paper's §I motivation (object stores vs POSIX
//! metadata scalability).

use std::rc::Rc;

use daos_placement::ObjectClass;
use daos_sim::executor::join_all;
use daos_sim::time::SimDuration;
use daos_sim::Sim;

use crate::daos_env::DaosTestbed;

/// Which layer the metadata ops go through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MdBackend {
    /// Native `libdfs` calls.
    Dfs,
    /// POSIX through DFuse.
    Dfuse,
}

/// Rates from one mdtest run.
#[derive(Clone, Copy, Debug)]
pub struct MdtestReport {
    pub ranks: u32,
    pub files_per_rank: u32,
    pub create_time: SimDuration,
    pub stat_time: SimDuration,
    pub unlink_time: SimDuration,
}

impl MdtestReport {
    fn rate(&self, t: SimDuration) -> f64 {
        let ops = self.ranks as f64 * self.files_per_rank as f64;
        if t.as_secs_f64() == 0.0 {
            0.0
        } else {
            ops / t.as_secs_f64()
        }
    }
    /// File creates per second.
    pub fn creates_per_s(&self) -> f64 {
        self.rate(self.create_time)
    }
    /// Stats per second.
    pub fn stats_per_s(&self) -> f64 {
        self.rate(self.stat_time)
    }
    /// Unlinks per second.
    pub fn unlinks_per_s(&self) -> f64 {
        self.rate(self.unlink_time)
    }
}

/// Run mdtest on a DAOS testbed: each rank creates, stats, then unlinks
/// `files_per_rank` zero-byte files in its own directory.
pub async fn mdtest(
    sim: &Sim,
    env: &Rc<DaosTestbed>,
    backend: MdBackend,
    ppn: u32,
    files_per_rank: u32,
) -> Result<MdtestReport, daos_core::DaosError> {
    let ranks = env.client_nodes() * ppn;

    // setup: per-rank directories
    for r in 0..ranks {
        let node = env.node_of_rank(r, ppn) as usize;
        match backend {
            MdBackend::Dfs => env.dfs[node].mkdir(sim, &format!("/md.{r}")).await?,
            MdBackend::Dfuse => env.dfuse[node].mkdir(sim, &format!("/md.{r}")).await?,
        }
    }

    async fn phase(
        sim: &Sim,
        env: &Rc<DaosTestbed>,
        backend: MdBackend,
        ppn: u32,
        ranks: u32,
        files: u32,
        op: u8,
    ) -> Result<SimDuration, daos_core::DaosError> {
        let t0 = sim.now();
        let futs: Vec<_> = (0..ranks)
            .map(|r| {
                let env = Rc::clone(env);
                let sim = sim.clone();
                async move {
                    let node = env.node_of_rank(r, ppn) as usize;
                    for i in 0..files {
                        let path = format!("/md.{r}/f.{i:06}");
                        match (backend, op) {
                            (MdBackend::Dfs, 0) => {
                                env.dfs[node]
                                    .create(&sim, &path, ObjectClass::S1, 1 << 20)
                                    .await?;
                            }
                            (MdBackend::Dfs, 1) => {
                                env.dfs[node].stat(&sim, &path).await?;
                            }
                            (MdBackend::Dfs, _) => {
                                env.dfs[node].unlink(&sim, &path).await?;
                            }
                            (MdBackend::Dfuse, 0) => {
                                env.dfuse[node]
                                    .open(&sim, &path, daos_dfuse::OpenFlags::create())
                                    .await?;
                            }
                            (MdBackend::Dfuse, 1) => {
                                env.dfuse[node].stat(&sim, &path).await?;
                            }
                            (MdBackend::Dfuse, _) => {
                                env.dfuse[node].unlink(&sim, &path).await?;
                            }
                        }
                    }
                    Ok::<(), daos_core::DaosError>(())
                }
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        Ok(sim.now() - t0)
    }

    let create_time = phase(sim, env, backend, ppn, ranks, files_per_rank, 0).await?;
    let stat_time = phase(sim, env, backend, ppn, ranks, files_per_rank, 1).await?;
    let unlink_time = phase(sim, env, backend, ppn, ranks, files_per_rank, 2).await?;

    Ok(MdtestReport {
        ranks,
        files_per_rank,
        create_time,
        stat_time,
        unlink_time,
    })
}

/// mdtest on the PFS baseline (every op is an MDS round trip).
pub async fn mdtest_pfs(
    sim: &Sim,
    fs: &Rc<daos_pfs::Pfs>,
    ppn: u32,
    files_per_rank: u32,
) -> Result<MdtestReport, String> {
    let ranks = fs.config().client_nodes * ppn;

    async fn phase(
        sim: &Sim,
        fs: &Rc<daos_pfs::Pfs>,
        ppn: u32,
        ranks: u32,
        files: u32,
        op: u8,
    ) -> Result<SimDuration, String> {
        let t0 = sim.now();
        let futs: Vec<_> = (0..ranks)
            .map(|r| {
                let fs = Rc::clone(fs);
                let sim = sim.clone();
                async move {
                    for i in 0..files {
                        let path = format!("/md.{r}/f.{i:06}");
                        match op {
                            0 => {
                                fs.open(&sim, r / ppn, r as u64, &path, true).await?;
                            }
                            1 => {
                                fs.stat(&sim, r / ppn, &path).await?;
                            }
                            _ => {
                                fs.unlink(&sim, r / ppn, &path).await?;
                            }
                        }
                    }
                    Ok::<(), String>(())
                }
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        Ok(sim.now() - t0)
    }

    let create_time = phase(sim, fs, ppn, ranks, files_per_rank, 0).await?;
    let stat_time = phase(sim, fs, ppn, ranks, files_per_rank, 1).await?;
    let unlink_time = phase(sim, fs, ppn, ranks, files_per_rank, 2).await?;

    Ok(MdtestReport {
        ranks,
        files_per_rank,
        create_time,
        stat_time,
        unlink_time,
    })
}
