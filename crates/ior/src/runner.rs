//! The benchmark engine: builds one I/O context per rank for the selected
//! API, then drives barrier-bracketed write and read phases.

use std::rc::Rc;

use daos_core::DaosError;
use daos_dfuse::OpenFlags;
use daos_hdf5::{Dataset, H5Config, H5File, H5Vfd, Layout};
use daos_mpiio::{Hints, MpiFile, RankFile};
use daos_placement::ObjectId;
use daos_sim::executor::join_all;
use daos_sim::Sim;
use daos_vos::Payload;

use crate::daos_env::DaosTestbed;
use crate::{data_seed, Api, IorParams, IorReport};

/// Per-rank I/O context.
enum RankIo {
    Posix(daos_dfuse::PosixFile),
    Dfs(daos_dfs::DfsFile),
    Mpiio { file: Rc<MpiFile>, collective: bool },
    Hdf5 { file: Rc<H5File>, ds: Rc<Dataset> },
    Daos(daos_core::ArrayHandle),
}

impl RankIo {
    async fn write(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        match self {
            RankIo::Posix(f) => f.pwrite(sim, off, data).await,
            RankIo::Dfs(f) => f.write(sim, off, data).await,
            RankIo::Mpiio { file, collective } => {
                if *collective {
                    file.write_at_all(sim, off, data).await
                } else {
                    file.write_at(sim, off, data).await
                }
            }
            RankIo::Hdf5 { ds, .. } => ds.write(sim, off, data).await,
            RankIo::Daos(a) => a.write(sim, off, data).await,
        }
    }

    async fn read(
        &self,
        sim: &Sim,
        off: u64,
        len: u64,
    ) -> Result<Vec<daos_vos::tree::ReadSeg>, DaosError> {
        match self {
            RankIo::Posix(f) => f.pread(sim, off, len).await,
            RankIo::Dfs(f) => f.read(sim, off, len).await,
            RankIo::Mpiio { file, collective } => {
                if *collective {
                    file.read_at_all(sim, off, len).await
                } else {
                    file.read_at(sim, off, len).await
                }
            }
            RankIo::Hdf5 { ds, .. } => ds.read(sim, off, len).await,
            RankIo::Daos(a) => a.read(sim, off, len).await,
        }
    }

    /// End-of-write-phase metadata work (HDF5 flushes its cache).
    async fn flush(&self, sim: &Sim) -> Result<(), DaosError> {
        if let RankIo::Hdf5 { file, .. } = self {
            file.flush(sim).await?;
        }
        Ok(())
    }
}

fn file_path(params: &IorParams, rank: u32) -> String {
    if params.file_per_process {
        format!("/ior.{rank:05}")
    } else {
        "/ior.shared".to_string()
    }
}

/// Build the rank's I/O context (setup phase, untimed like IOR's
/// `open` outside `-O` timing).
async fn build_rank_io(
    sim: &Sim,
    env: &Rc<DaosTestbed>,
    world: &Rc<daos_mpi::MpiWorld>,
    params: &IorParams,
    rank: u32,
) -> Result<RankIo, DaosError> {
    let node = env.node_of_rank(rank, params.ppn) as usize;
    let path = file_path(params, rank);
    let ranks = world.size() as u64;
    match params.api {
        Api::Posix { il } => {
            let mount = if il {
                &env.dfuse_il[node]
            } else {
                &env.dfuse[node]
            };
            let f = mount
                .open(
                    sim,
                    &path,
                    OpenFlags {
                        create: true,
                        class: Some(params.oclass),
                        chunk_size: Some(params.chunk_size),
                    },
                )
                .await?;
            Ok(RankIo::Posix(f))
        }
        Api::Dfs => {
            let f = env.dfs[node]
                .create(sim, &path, params.oclass, params.chunk_size)
                .await?;
            Ok(RankIo::Dfs(f))
        }
        Api::Mpiio { collective } => {
            let f = env.dfuse[node]
                .open(
                    sim,
                    &path,
                    OpenFlags {
                        create: true,
                        class: Some(params.oclass),
                        chunk_size: Some(params.chunk_size),
                    },
                )
                .await?;
            let hints = Hints::default();
            let mf = if params.file_per_process {
                MpiFile::new_independent(world.rank(rank as usize), RankFile::Posix(f), hints)
            } else {
                MpiFile::open(sim, world.rank(rank as usize), RankFile::Posix(f), hints).await
            };
            Ok(RankIo::Mpiio {
                file: Rc::new(mf),
                collective: collective && !params.file_per_process,
            })
        }
        Api::Hdf5 => {
            let f = env.dfuse[node]
                .open(
                    sim,
                    &path,
                    OpenFlags {
                        create: true,
                        class: Some(params.oclass),
                        chunk_size: Some(params.chunk_size),
                    },
                )
                .await?;
            let h5cfg = H5Config::default();
            if params.file_per_process {
                // sec2 VFD, independent
                let h5 = H5File::create(sim, H5Vfd::Sec2(Box::new(f)), h5cfg).await?;
                let ds = h5
                    .create_dataset(
                        sim,
                        "data",
                        params.block_size * params.segments as u64,
                        Layout::Contiguous,
                    )
                    .await?;
                Ok(RankIo::Hdf5 {
                    file: h5,
                    ds: Rc::new(ds),
                })
            } else {
                // mpio VFD with independent transfers (IOR's default; pass
                // `collective` via MPI-IO hints to study two-phase I/O)
                let hints = Hints::default();
                let mf = Rc::new(
                    MpiFile::open(sim, world.rank(rank as usize), RankFile::Posix(f), hints).await,
                );
                let h5 = H5File::create(
                    sim,
                    H5Vfd::Mpio {
                        file: mf,
                        collective: false,
                    },
                    h5cfg,
                )
                .await?;
                let ds = h5
                    .create_dataset(
                        sim,
                        "data",
                        params.block_size * params.segments as u64 * ranks,
                        Layout::Contiguous,
                    )
                    .await?;
                Ok(RankIo::Hdf5 {
                    file: h5,
                    ds: Rc::new(ds),
                })
            }
        }
        Api::DaosArray => {
            let oid = if params.file_per_process {
                ObjectId::new(0xBEEF, 100 + rank as u64)
            } else {
                ObjectId::new(0xBEEF, 7)
            };
            let arr = env.containers[node]
                .object(oid, params.oclass)
                .array(params.chunk_size);
            Ok(RankIo::Daos(arr))
        }
    }
}

/// Drive one rank through a phase; returns the bytes actually moved
/// (less than the full plan only when a stonewall deadline fires).
async fn rank_io_phase(
    sim: Sim,
    io: Rc<RankIo>,
    params: IorParams,
    ranks: u64,
    rank: u64,
    is_write: bool,
    deadline: Option<daos_sim::time::SimTime>,
) -> Result<u64, DaosError> {
    // -C: read the data written by the next rank (fpp read contexts are
    // already that rank's file; here we flip the *data seed / offsets*)
    let data_rank = if !is_write && params.reorder_read {
        (rank + 1) % ranks
    } else {
        rank
    };
    // plan the (segment, transfer) visit order; -z shuffles it
    let tpb = params.transfers_per_block();
    let mut plan: Vec<(u64, u64)> = (0..params.segments as u64)
        .flat_map(|s| (0..tpb).map(move |k| (s, k)))
        .collect();
    if params.random_offsets {
        // deterministic Fisher-Yates keyed by rank
        let mut state = daos_placement::splitmix64(0x5EED ^ rank) | 1;
        for i in (1..plan.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            plan.swap(i, (state % (i as u64 + 1)) as usize);
        }
    }
    let mut moved = 0u64;
    for (s, k) in plan {
        if let Some(d) = deadline {
            if sim.now() >= d {
                break; // stonewalled
            }
        }
        let off = params.offset(ranks, data_rank, s, k);
        if is_write {
            let data = Payload::Pattern {
                seed: data_seed(data_rank, s, k),
                skew: 0,
                len: params.transfer_size,
            };
            io.write(&sim, off, data).await?;
        } else {
            let segs = io.read(&sim, off, params.transfer_size).await?;
            if params.verify {
                let want = Payload::Pattern {
                    seed: data_seed(data_rank, s, k),
                    skew: 0,
                    len: params.transfer_size,
                }
                .materialize();
                let got = daos_mpiio::assemble(&segs, off, params.transfer_size).materialize();
                if got != want {
                    return Err(DaosError::Other(format!(
                        "verification failed at rank {rank} seg {s} xfer {k}"
                    )));
                }
            }
        }
        moved += params.transfer_size;
    }
    if is_write {
        io.flush(&sim).await?;
    }
    Ok(moved)
}

/// Run one IOR configuration against a DAOS testbed.
pub async fn run(
    sim: &Sim,
    env: &Rc<DaosTestbed>,
    params: IorParams,
) -> Result<IorReport, DaosError> {
    let client_nodes = env.client_nodes();
    let ranks = client_nodes * params.ppn;
    let world = env.mpi_world(params.ppn);

    // ---- setup (untimed): create files, build contexts --------------
    // wave A: rank 0 creates the shared file's dirent so wave B opens race-free
    if !params.file_per_process {
        match params.api {
            Api::Posix { .. } | Api::Mpiio { .. } | Api::Hdf5 => {
                env.dfuse[0]
                    .open(
                        sim,
                        &file_path(&params, 0),
                        OpenFlags {
                            create: true,
                            class: Some(params.oclass),
                            chunk_size: Some(params.chunk_size),
                        },
                    )
                    .await?;
            }
            Api::Dfs => {
                env.dfs[0]
                    .create(
                        sim,
                        &file_path(&params, 0),
                        params.oclass,
                        params.chunk_size,
                    )
                    .await?;
            }
            Api::DaosArray => {}
        }
    }
    // wave B: every rank builds its context (collective opens included)
    let ios: Vec<Rc<RankIo>> = {
        let futs: Vec<_> = (0..ranks)
            .map(|r| {
                let env = Rc::clone(env);
                let world = Rc::clone(&world);
                let sim2 = sim.clone();
                async move { build_rank_io(&sim2, &env, &world, &params, r).await }
            })
            .collect();
        let mut out = Vec::with_capacity(ranks as usize);
        for r in join_all(sim, futs).await {
            out.push(Rc::new(r?));
        }
        out
    };

    // ---- write phase -------------------------------------------------
    let total_bytes = params.total_bytes(client_nodes);
    let mut write_time = daos_sim::time::SimDuration::ZERO;
    let mut bytes_written = 0u64;
    if params.do_write {
        let t0 = sim.now();
        let deadline = params.stonewall.map(|d| t0 + d);
        let futs: Vec<_> = ios
            .iter()
            .enumerate()
            .map(|(r, io)| {
                rank_io_phase(
                    sim.clone(),
                    Rc::clone(io),
                    params,
                    ranks as u64,
                    r as u64,
                    true,
                    deadline,
                )
            })
            .collect();
        for r in join_all(sim, futs).await {
            bytes_written += r?;
        }
        write_time = sim.now() - t0;
    }

    // ---- read phase ----------------------------------------------------
    let mut read_time = daos_sim::time::SimDuration::ZERO;
    let mut bytes_read = 0u64;
    if params.do_read {
        let t0 = sim.now();
        let deadline = params.stonewall.map(|d| t0 + d);
        let futs: Vec<_> = ios
            .iter()
            .enumerate()
            .map(|(r, io)| {
                rank_io_phase(
                    sim.clone(),
                    Rc::clone(io),
                    params,
                    ranks as u64,
                    r as u64,
                    false,
                    deadline,
                )
            })
            .collect();
        for r in join_all(sim, futs).await {
            bytes_read += r?;
        }
        read_time = sim.now() - t0;
    }

    Ok(IorReport {
        ranks,
        client_nodes,
        total_bytes,
        bytes_written,
        bytes_read,
        write_time,
        read_time,
    })
}
