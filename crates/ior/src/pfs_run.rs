//! IOR against the Lustre-like PFS baseline (POSIX API only): the
//! contrast experiment for the paper's closing observation.

use std::rc::Rc;

use daos_pfs::{Pfs, PfsFile};
use daos_sim::executor::join_all;
use daos_sim::Sim;
use daos_vos::Payload;

use crate::{data_seed, IorParams, IorReport};

async fn pfs_rank_phase(
    sim: Sim,
    f: PfsFile,
    params: IorParams,
    ranks: u64,
    rank: u64,
    is_write: bool,
) -> Result<(), String> {
    for s in 0..params.segments as u64 {
        for k in 0..params.transfers_per_block() {
            let off = params.offset(ranks, rank, s, k);
            if is_write {
                f.write(
                    &sim,
                    off,
                    Payload::Pattern {
                        seed: data_seed(rank, s, k),
                        skew: 0,
                        len: params.transfer_size,
                    },
                )
                .await?;
            } else {
                f.read(&sim, off, params.transfer_size).await?;
            }
        }
    }
    Ok(())
}

/// Run one IOR configuration on the PFS baseline (`params.api` ignored —
/// PFS is reached through POSIX).
pub async fn run_pfs(sim: &Sim, fs: &Rc<Pfs>, params: IorParams) -> Result<IorReport, String> {
    let client_nodes = fs.config().client_nodes;
    let ranks = client_nodes * params.ppn;

    // setup: open per-rank handles (rank identity = lock owner)
    let mut files = Vec::with_capacity(ranks as usize);
    for r in 0..ranks {
        let path = if params.file_per_process {
            format!("/ior.{r:05}")
        } else {
            "/ior.shared".to_string()
        };
        let f = fs.open(sim, r / params.ppn, r as u64, &path, true).await?;
        files.push(f);
    }

    let total_bytes = params.total_bytes(client_nodes);
    let mut write_time = daos_sim::time::SimDuration::ZERO;
    let mut bytes_written = 0;
    if params.do_write {
        bytes_written = total_bytes;
        let t0 = sim.now();
        let futs: Vec<_> = files
            .iter()
            .enumerate()
            .map(|(r, f)| {
                pfs_rank_phase(sim.clone(), f.clone(), params, ranks as u64, r as u64, true)
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        write_time = sim.now() - t0;
    }

    let mut read_time = daos_sim::time::SimDuration::ZERO;
    let mut bytes_read = 0;
    if params.do_read {
        bytes_read = total_bytes;
        let t0 = sim.now();
        let futs: Vec<_> = files
            .iter()
            .enumerate()
            .map(|(r, f)| {
                pfs_rank_phase(
                    sim.clone(),
                    f.clone(),
                    params,
                    ranks as u64,
                    r as u64,
                    false,
                )
            })
            .collect();
        for r in join_all(sim, futs).await {
            r?;
        }
        read_time = sim.now() - t0;
    }

    Ok(IorReport {
        ranks,
        client_nodes,
        total_bytes,
        bytes_written,
        bytes_read,
        write_time,
        read_time,
    })
}
