//! # daos-ior — a reimplementation of the IOR benchmark
//!
//! The paper's instrument (§III): every client process writes, then reads,
//! `block_size` bytes in `transfer_size` blocking operations, either to its
//! own file (*easy* / file-per-process, `-F`) or to a single shared file
//! (*hard*), through one of the access APIs under study:
//!
//! | IOR `-a` | here | path to DAOS |
//! |----------|------|--------------|
//! | `POSIX`  | [`Api::Posix`]  | DFuse mount (optionally the interception library) |
//! | `DFS`    | [`Api::Dfs`]    | `libdfs` |
//! | `MPIIO`  | [`Api::Mpiio`]  | ROMIO UFS driver over DFuse |
//! | `HDF5`   | [`Api::Hdf5`]   | mini-HDF5 over `sec2`(DFuse) / `mpio` |
//! | `DAOS`   | [`Api::DaosArray`] | native `daos_array` (the paper's future work) |
//!
//! Offsets follow IOR's *segmented* layout: in shared mode rank `r`,
//! segment `s` covers `(s*ranks + r) * block_size`. Phase times are the
//! barrier-to-barrier makespan over all ranks, like IOR's reported
//! bandwidth.
//!
//! [`mod@mdtest`] adds an mdtest-style metadata benchmark (create/stat/unlink
//! rates), covering the paper's metadata-performance motivation (§I).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

pub mod daos_env;
pub mod mdtest;
pub mod pfs_run;
pub mod runner;

pub use daos_env::DaosTestbed;
pub use mdtest::{mdtest, mdtest_pfs, MdBackend, MdtestReport};
pub use pfs_run::run_pfs;
pub use runner::run;

use daos_placement::ObjectClass;
use daos_sim::time::SimDuration;
use daos_sim::units::gib_per_sec;

/// Access API under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Api {
    /// POSIX through the DFuse mount; `il` enables the interception library.
    Posix { il: bool },
    /// Native `libdfs`.
    Dfs,
    /// MPI-IO over the DFuse mount; `collective` uses `write_at_all`.
    Mpiio { collective: bool },
    /// HDF5: `sec2` VFD (DFuse) in file-per-process mode, `mpio` VFD with
    /// collective transfers for the shared file — IOR/HDF5 convention.
    Hdf5,
    /// The native DAOS array API.
    DaosArray,
}

impl Api {
    /// IOR's `-a` name.
    pub fn name(&self) -> &'static str {
        match self {
            Api::Posix { il: false } => "POSIX",
            Api::Posix { il: true } => "POSIX+IL",
            Api::Dfs => "DFS",
            Api::Mpiio { .. } => "MPIIO",
            Api::Hdf5 => "HDF5",
            Api::DaosArray => "DAOS",
        }
    }
}

/// One IOR invocation's parameters.
#[derive(Clone, Copy, Debug)]
pub struct IorParams {
    pub api: Api,
    /// `-t`: bytes per I/O call.
    pub transfer_size: u64,
    /// `-b`: bytes per rank per segment.
    pub block_size: u64,
    /// `-s`: segments.
    pub segments: u32,
    /// `-F`: file per process (the paper's *easy* mode) vs shared (*hard*).
    pub file_per_process: bool,
    /// Processes per client node.
    pub ppn: u32,
    /// DAOS object class for created files.
    pub oclass: ObjectClass,
    /// DFS chunk size for created files.
    pub chunk_size: u64,
    /// Verify contents on read-back (tests; costs host time).
    pub verify: bool,
    pub do_write: bool,
    pub do_read: bool,
    /// `-z`: issue transfers in a random (deterministic, seeded) order
    /// instead of sequentially.
    pub random_offsets: bool,
    /// `-C`: in file-per-process read phases, rank r reads the file written
    /// by rank (r+1) mod N — IOR's cache-defeating reorder.
    pub reorder_read: bool,
    /// `-D`-style stonewall: stop a phase once this much simulated time has
    /// elapsed; bandwidth reflects the bytes actually moved.
    pub stonewall: Option<SimDuration>,
}

impl IorParams {
    /// The paper's bulk-I/O configuration: 1 MiB transfers, 16 MiB blocks.
    pub fn paper_default(api: Api, oclass: ObjectClass, fpp: bool, ppn: u32) -> Self {
        IorParams {
            api,
            transfer_size: 1 << 20,
            block_size: 16 << 20,
            segments: 1,
            file_per_process: fpp,
            ppn,
            oclass,
            chunk_size: 1 << 20,
            verify: false,
            do_write: true,
            do_read: true,
            random_offsets: false,
            reorder_read: false,
            stonewall: None,
        }
    }

    /// Total bytes moved per phase across all ranks.
    pub fn total_bytes(&self, client_nodes: u32) -> u64 {
        self.block_size * self.segments as u64 * self.ppn as u64 * client_nodes as u64
    }

    /// Transfers per rank per segment.
    pub fn transfers_per_block(&self) -> u64 {
        assert!(
            self.block_size.is_multiple_of(self.transfer_size),
            "block size must be a multiple of transfer size"
        );
        self.block_size / self.transfer_size
    }

    /// Byte offset of `(rank, segment, transfer)` in the target file.
    pub fn offset(&self, ranks: u64, rank: u64, segment: u64, transfer: u64) -> u64 {
        let base = if self.file_per_process {
            segment * self.block_size
        } else {
            (segment * ranks + rank) * self.block_size
        };
        base + transfer * self.transfer_size
    }
}

/// Results of one IOR run.
#[derive(Clone, Copy, Debug)]
pub struct IorReport {
    pub ranks: u32,
    pub client_nodes: u32,
    pub total_bytes: u64,
    /// Bytes actually written (may be less than `total_bytes` under a
    /// stonewall deadline).
    pub bytes_written: u64,
    /// Bytes actually read.
    pub bytes_read: u64,
    pub write_time: SimDuration,
    pub read_time: SimDuration,
}

impl IorReport {
    /// Write bandwidth in GiB/s (stonewall-aware).
    pub fn write_gib_s(&self) -> f64 {
        gib_per_sec(self.bytes_written, self.write_time.as_secs_f64())
    }
    /// Read bandwidth in GiB/s (stonewall-aware).
    pub fn read_gib_s(&self) -> f64 {
        gib_per_sec(self.bytes_read, self.read_time.as_secs_f64())
    }
}

/// Deterministic data seed for `(rank, segment, transfer)`.
pub fn data_seed(rank: u64, segment: u64, transfer: u64) -> u64 {
    daos_placement::splitmix64(rank ^ (segment << 24) ^ (transfer << 44) ^ 0x10D0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(fpp: bool) -> IorParams {
        IorParams {
            api: Api::Dfs,
            transfer_size: 4,
            block_size: 16,
            segments: 2,
            file_per_process: fpp,
            ppn: 2,
            oclass: ObjectClass::S1,
            chunk_size: 1 << 20,
            verify: false,
            do_write: true,
            do_read: true,
            random_offsets: false,
            reorder_read: false,
            stonewall: None,
        }
    }

    #[test]
    fn segmented_offsets_shared() {
        let p = params(false);
        // ranks=4: rank 1, segment 0, transfer 2 -> 1*16 + 2*4
        assert_eq!(p.offset(4, 1, 0, 2), 24);
        // segment 1 starts after all ranks' blocks
        assert_eq!(p.offset(4, 0, 1, 0), 64);
        assert_eq!(p.offset(4, 3, 1, 3), 64 + 48 + 12);
    }

    #[test]
    fn fpp_offsets_ignore_rank() {
        let p = params(true);
        assert_eq!(p.offset(4, 3, 0, 1), 4);
        assert_eq!(p.offset(4, 3, 1, 0), 16);
    }

    #[test]
    fn offsets_tile_the_file_exactly_once() {
        let p = params(false);
        let ranks = 4u64;
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..ranks {
            for s in 0..p.segments as u64 {
                for k in 0..p.transfers_per_block() {
                    let off = p.offset(ranks, r, s, k);
                    assert!(seen.insert(off), "offset {off} written twice");
                }
            }
        }
        let total: u64 = ranks * p.segments as u64 * p.block_size;
        assert_eq!(seen.len() as u64, total / p.transfer_size);
        assert_eq!(*seen.iter().max().unwrap(), total - p.transfer_size);
    }

    #[test]
    fn total_bytes_accounting() {
        let p = params(false);
        assert_eq!(p.total_bytes(3), 16 * 2 * 2 * 3);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_transfer_rejected() {
        let mut p = params(false);
        p.transfer_size = 5;
        let _ = p.transfers_per_block();
    }
}
