//! The DAOS-side benchmark environment: cluster, per-node clients,
//! per-node DFS mounts and DFuse daemons, and an MPI world.

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, ContainerHandle, DaosClient, DaosError, PoolHandle};
use daos_dfs::{Dfs, DfsConfig};
use daos_dfuse::{DfuseConfig, DfuseMount};
use daos_fabric::NodeId;
use daos_mpi::MpiWorld;
use daos_sim::Sim;

/// Container id used by all benchmark runs.
pub const BENCH_CONT: u64 = 42;

/// Everything a benchmark process needs, wired to one cluster.
pub struct DaosTestbed {
    pub cluster: Rc<Cluster>,
    /// One connected client per client node.
    pub clients: Vec<DaosClient>,
    pub pools: Vec<PoolHandle>,
    pub containers: Vec<ContainerHandle>,
    /// One DFS mount per client node.
    pub dfs: Vec<Rc<Dfs>>,
    /// One DFuse daemon per client node (no interception).
    pub dfuse: Vec<Rc<DfuseMount>>,
    /// One DFuse daemon per client node with the interception library.
    pub dfuse_il: Vec<Rc<DfuseMount>>,
}

impl DaosTestbed {
    /// Build the cluster and mount everything on every client node.
    pub async fn setup(
        sim: &Sim,
        cluster_cfg: ClusterConfig,
        dfs_cfg: DfsConfig,
        dfuse_cfg: DfuseConfig,
    ) -> Result<Rc<DaosTestbed>, DaosError> {
        Self::setup_salted(sim, cluster_cfg, dfs_cfg, dfuse_cfg, 0).await
    }

    /// Like [`DaosTestbed::setup`], with an iteration salt that shifts the
    /// DFS object-id space — and therefore every file's placement — so
    /// repeated runs average over placements like IOR `-i` iterations.
    pub async fn setup_salted(
        sim: &Sim,
        cluster_cfg: ClusterConfig,
        dfs_cfg: DfsConfig,
        dfuse_cfg: DfuseConfig,
        salt: u64,
    ) -> Result<Rc<DaosTestbed>, DaosError> {
        let cluster = Cluster::build(sim, cluster_cfg);
        let n = cluster_cfg.client_nodes;
        let mut clients = Vec::with_capacity(n as usize);
        let mut pools = Vec::with_capacity(n as usize);
        let mut containers = Vec::with_capacity(n as usize);
        let mut dfs = Vec::with_capacity(n as usize);
        let mut dfuse = Vec::with_capacity(n as usize);
        let mut dfuse_il = Vec::with_capacity(n as usize);
        for i in 0..n {
            let client = DaosClient::new(Rc::clone(&cluster), i);
            let pool = client.connect(sim).await?;
            let cont = pool.open_or_create(sim, BENCH_CONT).await?;
            let fsm = Dfs::mount(
                sim,
                &pool,
                BENCH_CONT,
                dfs_cfg,
                0xD0 + i as u64 + salt.wrapping_mul(0x9E3779B97F4A7C15),
            )
            .await?;
            dfuse.push(DfuseMount::new(Rc::clone(&fsm), dfuse_cfg));
            dfuse_il.push(DfuseMount::new(
                Rc::clone(&fsm),
                DfuseConfig {
                    interception: true,
                    ..dfuse_cfg
                },
            ));
            dfs.push(fsm);
            containers.push(cont);
            pools.push(pool);
            clients.push(client);
        }
        Ok(Rc::new(DaosTestbed {
            cluster,
            clients,
            pools,
            containers,
            dfs,
            dfuse,
            dfuse_il,
        }))
    }

    /// Client nodes in this testbed.
    pub fn client_nodes(&self) -> u32 {
        self.cluster.cfg.client_nodes
    }

    /// Build an MPI world with `ppn` ranks per client node.
    pub fn mpi_world(&self, ppn: u32) -> Rc<MpiWorld> {
        let nodes: Vec<NodeId> = (0..self.client_nodes() * ppn)
            .map(|r| self.cluster.client_node(r / ppn))
            .collect();
        MpiWorld::new(Rc::clone(&self.cluster.fabric), nodes)
    }

    /// The client node hosting `rank` at `ppn` ranks per node.
    pub fn node_of_rank(&self, rank: u32, ppn: u32) -> u32 {
        rank / ppn
    }
}
