//! # daos-workloads — application-specific I/O benchmarks
//!
//! The paper closes (§V): *"Future work will include … looking at some
//! application specific I/O benchmarks to evaluate the kind of performance
//! more varied usage patterns will experience."* This crate implements that
//! future work: three application workload generators that exercise the
//! stack the way real HPC applications do, rather than IOR's steady bulk
//! streams:
//!
//! * [`nwp`] — numerical weather prediction output: bursts of medium-sized
//!   semantically-indexed field objects per forecast step, immediately
//!   consumed by product generation (the ECMWF pattern, paper refs 7, 8, 20);
//! * [`checkpoint`] — compute/checkpoint cadence: the application computes
//!   (idle storage), then every rank dumps state through POSIX at once —
//!   bursty, latency-sensitive, shared- or private-file;
//! * [`producer_consumer`] — a coupled pipeline: one group writes tiles,
//!   another polls-and-reads them with a bounded lag, stressing mixed
//!   read/write behaviour that pure-phase benchmarks never show.
//!
//! Each workload returns a [`WorkloadReport`] with phase timings and
//! bandwidths; `daos-bench`'s `app_workloads` binary tabulates them across
//! interfaces.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::rc::Rc;

use daos_core::DaosError;
use daos_dfs::Dfs;
use daos_dfuse::{DfuseMount, OpenFlags};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::time::{SimDuration, SimTime};
use daos_sim::units::gib_per_sec;
use daos_sim::Sim;
use daos_vos::Payload;

/// How a workload reaches DAOS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Native object/array APIs.
    Native,
    /// `libdfs` file calls.
    Dfs,
    /// POSIX through DFuse.
    Posix,
}

impl Access {
    pub fn name(&self) -> &'static str {
        match self {
            Access::Native => "native",
            Access::Dfs => "dfs",
            Access::Posix => "posix",
        }
    }
}

/// Outcome of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    pub name: &'static str,
    pub access: Access,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub makespan: SimDuration,
    /// Time the storage system was actually being driven (excludes modelled
    /// compute phases), for utilisation-style metrics.
    pub io_time: SimDuration,
}

impl WorkloadReport {
    /// Aggregate bandwidth over the I/O-active time.
    pub fn io_gib_s(&self) -> f64 {
        gib_per_sec(
            self.bytes_written + self.bytes_read,
            self.io_time.as_secs_f64(),
        )
    }
    /// End-to-end effective bandwidth (includes compute gaps).
    pub fn effective_gib_s(&self) -> f64 {
        gib_per_sec(
            self.bytes_written + self.bytes_read,
            self.makespan.as_secs_f64(),
        )
    }
}

/// A per-rank binding to the storage system under one access mode.
#[derive(Clone)]
pub enum RankAccess {
    Native(daos_core::ContainerHandle),
    Dfs(Rc<Dfs>),
    Posix(Rc<DfuseMount>),
}

impl RankAccess {
    /// Write a whole named object/file of `len` bytes.
    pub async fn put(
        &self,
        sim: &Sim,
        name: &str,
        tag: u64,
        len: u64,
        class: ObjectClass,
    ) -> Result<(), DaosError> {
        let data = Payload::pattern(tag, len);
        match self {
            RankAccess::Native(cont) => {
                let oid = ObjectId::new(0xA9D, daos_placement::splitmix64(tag));
                cont.object(oid, class)
                    .array(1 << 20)
                    .write(sim, 0, data)
                    .await
            }
            RankAccess::Dfs(fs) => {
                let f = fs.create(sim, name, class, 1 << 20).await?;
                f.write(sim, 0, data).await
            }
            RankAccess::Posix(m) => {
                let f = m
                    .open(
                        sim,
                        name,
                        OpenFlags {
                            create: true,
                            class: Some(class),
                            chunk_size: Some(1 << 20),
                        },
                    )
                    .await?;
                f.pwrite(sim, 0, data).await
            }
        }
    }

    /// Read a whole named object/file back; returns bytes read.
    pub async fn get(
        &self,
        sim: &Sim,
        name: &str,
        tag: u64,
        len: u64,
        class: ObjectClass,
    ) -> Result<u64, DaosError> {
        let segs = match self {
            RankAccess::Native(cont) => {
                let oid = ObjectId::new(0xA9D, daos_placement::splitmix64(tag));
                cont.object(oid, class)
                    .array(1 << 20)
                    .read(sim, 0, len)
                    .await?
            }
            RankAccess::Dfs(fs) => {
                let f = fs.open(sim, name).await?;
                f.read(sim, 0, len).await?
            }
            RankAccess::Posix(m) => {
                let f = m.open(sim, name, OpenFlags::read()).await?;
                f.pread(sim, 0, len).await?
            }
        };
        Ok(segs
            .iter()
            .filter(|s| s.data.is_some())
            .map(|s| s.len)
            .sum())
    }

    /// Does the named object/file exist (polling primitive)?
    pub async fn exists(
        &self,
        sim: &Sim,
        name: &str,
        tag: u64,
        class: ObjectClass,
    ) -> Result<bool, DaosError> {
        match self {
            RankAccess::Native(cont) => {
                let oid = ObjectId::new(0xA9D, daos_placement::splitmix64(tag));
                Ok(cont.object(oid, class).array(1 << 20).size(sim).await? > 0)
            }
            RankAccess::Dfs(fs) => Ok(fs.lookup(sim, name).await?.is_some()),
            RankAccess::Posix(m) => Ok(m.stat(sim, name).await.is_ok()),
        }
    }
}

/// Parameters shared by the workloads.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    pub writers: u32,
    pub readers: u32,
    pub steps: u32,
    pub object_bytes: u64,
    pub objects_per_step: u32,
    /// Modelled compute time between output steps.
    pub compute: SimDuration,
    pub class: ObjectClass,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            writers: 16,
            readers: 8,
            steps: 3,
            object_bytes: 2 << 20,
            objects_per_step: 64,
            compute: SimDuration::from_ms(20),
            class: ObjectClass::S2,
        }
    }
}

fn since(sim: &Sim, t0: SimTime) -> SimDuration {
    sim.now() - t0
}

/// NWP field output + product generation (see module docs).
pub mod nwp {
    use super::*;

    /// Run the forecast-output/product-generation cycle.
    pub async fn run(
        sim: &Sim,
        access: Vec<RankAccess>,
        p: WorkloadParams,
    ) -> Result<WorkloadReport, DaosError> {
        let t0 = sim.now();
        let mut io_time = SimDuration::ZERO;
        let mut written = 0u64;
        let mut read = 0u64;
        for step in 0..p.steps {
            // compute phase
            sim.sleep(p.compute).await;
            // output burst: writers emit this step's fields
            let io0 = sim.now();
            let futs: Vec<_> = (0..p.writers)
                .map(|w| {
                    let acc = access[w as usize % access.len()].clone();
                    let sim = sim.clone();
                    async move {
                        let mut n = 0u64;
                        let mut f = w;
                        while f < p.objects_per_step {
                            let tag = (step as u64) << 32 | f as u64;
                            acc.put(
                                &sim,
                                &format!("/fields.{step}.{f}"),
                                tag,
                                p.object_bytes,
                                p.class,
                            )
                            .await?;
                            n += p.object_bytes;
                            f += p.writers;
                        }
                        Ok::<u64, DaosError>(n)
                    }
                })
                .collect();
            for r in join_all(sim, futs).await {
                written += r?;
            }
            // product generation: readers consume the fresh step
            let futs: Vec<_> = (0..p.readers)
                .map(|r| {
                    let acc = access[r as usize % access.len()].clone();
                    let sim = sim.clone();
                    async move {
                        let mut n = 0u64;
                        let mut f = r;
                        while f < p.objects_per_step {
                            let tag = (step as u64) << 32 | f as u64;
                            n += acc
                                .get(
                                    &sim,
                                    &format!("/fields.{step}.{f}"),
                                    tag,
                                    p.object_bytes,
                                    p.class,
                                )
                                .await?;
                            f += p.readers;
                        }
                        Ok::<u64, DaosError>(n)
                    }
                })
                .collect();
            for r in join_all(sim, futs).await {
                read += r?;
            }
            io_time += since(sim, io0);
        }
        Ok(WorkloadReport {
            name: "nwp",
            access: Access::Native, // caller overwrites
            bytes_written: written,
            bytes_read: read,
            makespan: since(sim, t0),
            io_time,
        })
    }
}

/// Compute/checkpoint cadence (see module docs).
pub mod checkpoint {
    use super::*;

    /// Run `steps` compute+checkpoint rounds; every writer dumps
    /// `object_bytes` per round.
    pub async fn run(
        sim: &Sim,
        access: Vec<RankAccess>,
        p: WorkloadParams,
    ) -> Result<WorkloadReport, DaosError> {
        let t0 = sim.now();
        let mut io_time = SimDuration::ZERO;
        let mut written = 0u64;
        for step in 0..p.steps {
            sim.sleep(p.compute).await;
            let io0 = sim.now();
            let futs: Vec<_> = (0..p.writers)
                .map(|w| {
                    let acc = access[w as usize % access.len()].clone();
                    let sim = sim.clone();
                    async move {
                        let tag = 0xC4E0_0000u64 | (step as u64) << 16 | w as u64;
                        acc.put(
                            &sim,
                            &format!("/ckpt.{step}.rank{w}"),
                            tag,
                            p.object_bytes,
                            p.class,
                        )
                        .await?;
                        Ok::<u64, DaosError>(p.object_bytes)
                    }
                })
                .collect();
            for r in join_all(sim, futs).await {
                written += r?;
            }
            io_time += since(sim, io0);
        }
        // restart: read the final checkpoint back
        let io0 = sim.now();
        let step = p.steps - 1;
        let mut read = 0u64;
        let futs: Vec<_> = (0..p.writers)
            .map(|w| {
                let acc = access[w as usize % access.len()].clone();
                let sim = sim.clone();
                async move {
                    let tag = 0xC4E0_0000u64 | (step as u64) << 16 | w as u64;
                    acc.get(
                        &sim,
                        &format!("/ckpt.{step}.rank{w}"),
                        tag,
                        p.object_bytes,
                        p.class,
                    )
                    .await
                }
            })
            .collect();
        for r in join_all(sim, futs).await {
            read += r?;
        }
        let io_total = io_time + since(sim, io0);
        Ok(WorkloadReport {
            name: "checkpoint",
            access: Access::Native,
            bytes_written: written,
            bytes_read: read,
            makespan: since(sim, t0),
            io_time: io_total,
        })
    }
}

/// Coupled producer/consumer pipeline (see module docs).
pub mod producer_consumer {
    use super::*;

    /// Producers emit tiles; consumers poll for and read each tile as soon
    /// as it appears, overlapping reads with ongoing writes.
    pub async fn run(
        sim: &Sim,
        access: Vec<RankAccess>,
        p: WorkloadParams,
    ) -> Result<WorkloadReport, DaosError> {
        let t0 = sim.now();
        let total_tiles = p.objects_per_step * p.steps;
        let producers: Vec<_> = (0..p.writers)
            .map(|w| {
                let acc = access[w as usize % access.len()].clone();
                let sim = sim.clone();
                sim.clone().spawn(async move {
                    let mut n = 0u64;
                    let mut t = w;
                    while t < total_tiles {
                        let tag = 0x90D0_0000u64 | t as u64;
                        acc.put(&sim, &format!("/tile.{t}"), tag, p.object_bytes, p.class)
                            .await?;
                        n += p.object_bytes;
                        t += p.writers;
                    }
                    Ok::<u64, DaosError>(n)
                })
            })
            .collect();
        let consumers: Vec<_> = (0..p.readers)
            .map(|r| {
                let acc = access[r as usize % access.len()].clone();
                let sim = sim.clone();
                sim.clone().spawn(async move {
                    let mut n = 0u64;
                    let mut t = r;
                    while t < total_tiles {
                        let tag = 0x90D0_0000u64 | t as u64;
                        let name = format!("/tile.{t}");
                        // poll until the producer publishes the tile
                        // (coarse interval: polling storms are exactly what
                        // coupled applications must avoid)
                        while !acc.exists(&sim, &name, tag, p.class).await? {
                            sim.sleep_ms(2).await;
                        }
                        n += acc.get(&sim, &name, tag, p.object_bytes, p.class).await?;
                        t += p.readers;
                    }
                    Ok::<u64, DaosError>(n)
                })
            })
            .collect();
        let mut written = 0u64;
        for h in producers {
            written += h.await?;
        }
        let mut read = 0u64;
        for h in consumers {
            read += h.await?;
        }
        let makespan = since(sim, t0);
        Ok(WorkloadReport {
            name: "producer_consumer",
            access: Access::Native,
            bytes_written: written,
            bytes_read: read,
            makespan,
            io_time: makespan, // fully overlapped: I/O active throughout
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_core::{Cluster, ClusterConfig, DaosClient};
    use daos_dfs::DfsConfig;
    use daos_dfuse::DfuseConfig;

    async fn accesses(sim: &Sim, which: Access) -> Vec<RankAccess> {
        let cluster = Cluster::build(sim, ClusterConfig::tiny(2));
        let mut out = Vec::new();
        for i in 0..2 {
            let client = DaosClient::new(Rc::clone(&cluster), i);
            let pool = client.connect(sim).await.unwrap();
            match which {
                Access::Native => {
                    out.push(RankAccess::Native(
                        pool.open_or_create(sim, 5).await.unwrap(),
                    ));
                }
                Access::Dfs => {
                    let fs = Dfs::mount(sim, &pool, 5, DfsConfig::default(), i as u64)
                        .await
                        .unwrap();
                    out.push(RankAccess::Dfs(fs));
                }
                Access::Posix => {
                    let fs = Dfs::mount(sim, &pool, 5, DfsConfig::default(), i as u64)
                        .await
                        .unwrap();
                    out.push(RankAccess::Posix(DfuseMount::new(
                        fs,
                        DfuseConfig::default(),
                    )));
                }
            }
        }
        out
    }

    fn small() -> WorkloadParams {
        WorkloadParams {
            writers: 4,
            readers: 2,
            steps: 2,
            object_bytes: 256 << 10,
            objects_per_step: 8,
            compute: SimDuration::from_ms(1),
            class: ObjectClass::S2,
        }
    }

    #[test]
    fn nwp_moves_every_field_on_all_access_modes() {
        for which in [Access::Native, Access::Dfs, Access::Posix] {
            let mut sim = Sim::new(0x1200 ^ which as u64);
            let rep = sim.block_on(move |sim| async move {
                let acc = accesses(&sim, which).await;
                nwp::run(&sim, acc, small()).await.unwrap()
            });
            let expect = 2 * 8 * (256u64 << 10);
            assert_eq!(rep.bytes_written, expect, "{which:?}");
            assert_eq!(rep.bytes_read, expect, "{which:?}");
            assert!(rep.io_gib_s() > 0.0);
            assert!(rep.makespan > rep.io_time, "compute must add makespan");
        }
    }

    #[test]
    fn checkpoint_restart_reads_what_it_wrote() {
        let mut sim = Sim::new(0x1201);
        let rep = sim.block_on(|sim| async move {
            let acc = accesses(&sim, Access::Posix).await;
            checkpoint::run(&sim, acc, small()).await.unwrap()
        });
        assert_eq!(rep.bytes_written, 2 * 4 * (256u64 << 10));
        assert_eq!(rep.bytes_read, 4 * (256u64 << 10));
    }

    #[test]
    fn producer_consumer_overlaps_and_completes() {
        let mut sim = Sim::new(0x1202);
        let rep = sim.block_on(|sim| async move {
            let acc = accesses(&sim, Access::Dfs).await;
            producer_consumer::run(&sim, acc, small()).await.unwrap()
        });
        let expect = 2 * 8 * (256u64 << 10);
        assert_eq!(rep.bytes_written, expect);
        assert_eq!(rep.bytes_read, expect);
        // pipeline overlap: makespan well under write-then-read serial time
        assert!(rep.effective_gib_s() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let go = || {
            let mut sim = Sim::new(0x1203);
            sim.block_on(|sim| async move {
                let acc = accesses(&sim, Access::Dfs).await;
                nwp::run(&sim, acc, small()).await.unwrap().makespan
            })
        };
        assert_eq!(go(), go());
    }
}
