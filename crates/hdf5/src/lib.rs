//! # daos-hdf5 — a miniature HDF5 library
//!
//! Implements the parts of HDF5 that shape its I/O behaviour on a
//! filesystem, with a real (simplified) file layout:
//!
//! * a 96-byte **superblock** at offset 0, updated on close;
//! * 512-byte **object headers** per group/dataset, allocated sequentially
//!   from the end-of-allocation pointer (so the *data* of the first dataset
//!   starts at an odd, page-unaligned offset — the property that makes
//!   HDF5-over-DFuse split every FUSE request in two; IOR does not set
//!   `H5Pset_alignment`);
//! * **contiguous** datasets (one extent after the header) and **chunked**
//!   datasets with a B-tree-v1-style chunk index (each first-touch of a
//!   chunk allocates space and dirties an index node);
//! * a **metadata cache**: object-header and index updates are buffered and
//!   flushed as small synchronous writes on `close`/`flush`;
//! * per-call library CPU (`h5_op_cpu`): dataspace/hyperslab checks, the
//!   global API lock, datatype dispatch.
//!
//! Two virtual file drivers: `sec2` (POSIX via DFuse) and `mpio`
//! (MPI-IO; datasets opened with `collective` transfer use
//! `write_at_all`/`read_at_all`, which is what HDF5 does for shared files).

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use daos_core::DaosError;
use daos_dfuse::PosixFile;
use daos_mpiio::MpiFile;
use daos_sim::time::SimDuration;
use daos_sim::Sim;
use daos_vos::tree::ReadSeg;
use daos_vos::Payload;

/// Superblock size (format v0).
pub const SUPERBLOCK: u64 = 96;
/// Object header allocation size.
pub const OBJ_HEADER: u64 = 512;
/// B-tree node allocation size (chunk index).
pub const BTREE_NODE: u64 = 544;

/// Library tuning.
#[derive(Clone, Copy, Debug)]
pub struct H5Config {
    /// Per-API-call CPU (lock, dataspace/datatype checks).
    pub h5_op_cpu: SimDuration,
    /// Chunk-index fanout (chunks per B-tree leaf).
    pub btree_fanout: u64,
}

impl Default for H5Config {
    fn default() -> Self {
        H5Config {
            h5_op_cpu: SimDuration::from_us(80),
            btree_fanout: 32,
        }
    }
}

/// Virtual file driver.
#[derive(Clone)]
pub enum H5Vfd {
    /// POSIX (`sec2`) through a DFuse file.
    Sec2(Box<PosixFile>),
    /// MPI-IO; `collective` selects `H5FD_MPIO_COLLECTIVE` transfers.
    Mpio { file: Rc<MpiFile>, collective: bool },
}

impl H5Vfd {
    async fn write(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        match self {
            H5Vfd::Sec2(f) => f.pwrite(sim, off, data).await,
            H5Vfd::Mpio { file, collective } => {
                if *collective {
                    file.write_at_all(sim, off, data).await
                } else {
                    file.write_at(sim, off, data).await
                }
            }
        }
    }
    async fn read(&self, sim: &Sim, off: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        match self {
            H5Vfd::Sec2(f) => f.pread(sim, off, len).await,
            H5Vfd::Mpio { file, collective } => {
                if *collective {
                    file.read_at_all(sim, off, len).await
                } else {
                    file.read_at(sim, off, len).await
                }
            }
        }
    }
    /// Metadata I/O is always independent (rank 0 writes metadata in HDF5's
    /// collective-metadata-off default).
    async fn write_meta(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        match self {
            H5Vfd::Sec2(f) => f.pwrite(sim, off, data).await,
            H5Vfd::Mpio { file, .. } => file.write_at(sim, off, data).await,
        }
    }
    async fn read_meta(&self, sim: &Sim, off: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        match self {
            H5Vfd::Sec2(f) => f.pread(sim, off, len).await,
            H5Vfd::Mpio { file, .. } => file.read_at(sim, off, len).await,
        }
    }
    fn is_mpio_rank0(&self) -> bool {
        match self {
            H5Vfd::Sec2(_) => true,
            H5Vfd::Mpio { file, .. } => file.rank().rank() == 0,
        }
    }
}

/// Dataset storage layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// One extent directly after the object header.
    Contiguous,
    /// Fixed-size chunks indexed by a B-tree.
    Chunked { chunk: u64 },
}

struct DatasetInfo {
    header_off: u64,
    data_off: u64, // contiguous layout only
    size: u64,
    layout: Layout,
    /// chunk index -> file offset of that chunk (chunked layout)
    chunks: BTreeMap<u64, u64>,
    header_dirty: bool,
    dirty_index_nodes: u64,
}

/// An HDF5 file.
pub struct H5File {
    vfd: H5Vfd,
    cfg: H5Config,
    eoa: Cell<u64>,
    datasets: RefCell<BTreeMap<String, Rc<RefCell<DatasetInfo>>>>,
    sb_dirty: Cell<bool>,
    /// Count of small metadata writes issued (observability for benches).
    meta_writes: Cell<u64>,
}

/// A handle to one dataset.
pub struct Dataset {
    file: Rc<H5File>,
    info: Rc<RefCell<DatasetInfo>>,
}

impl H5File {
    /// `H5Fcreate`: writes the superblock and root-group header.
    pub async fn create(sim: &Sim, vfd: H5Vfd, cfg: H5Config) -> Result<Rc<H5File>, DaosError> {
        let f = Rc::new(H5File {
            vfd,
            cfg,
            eoa: Cell::new(0),
            datasets: RefCell::new(BTreeMap::new()),
            sb_dirty: Cell::new(true),
            meta_writes: Cell::new(0),
        });
        sim.sleep(cfg.h5_op_cpu).await;
        if f.vfd.is_mpio_rank0() {
            // superblock + root group object header
            f.vfd
                .write_meta(sim, 0, Payload::pattern(0x5B, SUPERBLOCK))
                .await?;
            f.vfd
                .write_meta(sim, SUPERBLOCK, Payload::pattern(0x60, OBJ_HEADER))
                .await?;
            f.meta_writes.set(f.meta_writes.get() + 2);
        }
        f.eoa.set(SUPERBLOCK + OBJ_HEADER);
        Ok(f)
    }

    /// `H5Fopen`: superblock probe + root header read.
    pub async fn open(sim: &Sim, vfd: H5Vfd, cfg: H5Config) -> Result<Rc<H5File>, DaosError> {
        sim.sleep(cfg.h5_op_cpu).await;
        vfd.read_meta(sim, 0, SUPERBLOCK).await?;
        vfd.read_meta(sim, SUPERBLOCK, OBJ_HEADER).await?;
        Ok(Rc::new(H5File {
            vfd,
            cfg,
            eoa: Cell::new(SUPERBLOCK + OBJ_HEADER),
            datasets: RefCell::new(BTreeMap::new()),
            sb_dirty: Cell::new(false),
            meta_writes: Cell::new(0),
        }))
    }

    fn alloc(&self, bytes: u64) -> u64 {
        let off = self.eoa.get();
        self.eoa.set(off + bytes);
        off
    }

    /// Number of small metadata writes so far.
    pub fn meta_write_count(&self) -> u64 {
        self.meta_writes.get()
    }

    /// `H5Gcreate`: a group is just an object header (plus a heap entry,
    /// folded into the header write).
    pub async fn create_group(self: &Rc<Self>, sim: &Sim, _name: &str) -> Result<(), DaosError> {
        sim.sleep(self.cfg.h5_op_cpu).await;
        let off = self.alloc(OBJ_HEADER);
        if self.vfd.is_mpio_rank0() {
            self.vfd
                .write_meta(sim, off, Payload::pattern(0x6F, OBJ_HEADER))
                .await?;
            self.meta_writes.set(self.meta_writes.get() + 1);
        }
        self.sb_dirty.set(true);
        Ok(())
    }

    /// `H5Dcreate`: allocate and write the object header; contiguous data
    /// space is reserved immediately (early allocation, IOR's pattern).
    pub async fn create_dataset(
        self: &Rc<Self>,
        sim: &Sim,
        name: &str,
        size: u64,
        layout: Layout,
    ) -> Result<Dataset, DaosError> {
        sim.sleep(self.cfg.h5_op_cpu).await;
        let header_off = self.alloc(OBJ_HEADER);
        let data_off = match layout {
            Layout::Contiguous => self.alloc(size),
            Layout::Chunked { .. } => 0,
        };
        if self.vfd.is_mpio_rank0() {
            self.vfd
                .write_meta(sim, header_off, Payload::pattern(0x0D, OBJ_HEADER))
                .await?;
            self.meta_writes.set(self.meta_writes.get() + 1);
        }
        let info = Rc::new(RefCell::new(DatasetInfo {
            header_off,
            data_off,
            size,
            layout,
            chunks: BTreeMap::new(),
            header_dirty: false,
            dirty_index_nodes: 0,
        }));
        self.datasets
            .borrow_mut()
            .insert(name.to_string(), Rc::clone(&info));
        self.sb_dirty.set(true);
        Ok(Dataset {
            file: Rc::clone(self),
            info,
        })
    }

    /// `H5Dopen`: read the object header.
    pub async fn open_dataset(
        self: &Rc<Self>,
        sim: &Sim,
        name: &str,
    ) -> Result<Dataset, DaosError> {
        sim.sleep(self.cfg.h5_op_cpu).await;
        let info = self
            .datasets
            .borrow()
            .get(name)
            .cloned()
            .ok_or_else(|| DaosError::Other(format!("no dataset {name}")))?;
        let header_off = info.borrow().header_off;
        self.vfd.read_meta(sim, header_off, OBJ_HEADER).await?;
        Ok(Dataset {
            file: Rc::clone(self),
            info,
        })
    }

    /// `H5Fclose`: flush dirty metadata then release (collective on mpio).
    pub async fn close(self: Rc<Self>, sim: &Sim) -> Result<(), DaosError> {
        self.flush(sim).await
    }

    /// `H5Fflush`: write out dirty metadata (headers, index nodes,
    /// superblock); the handle stays usable.
    pub async fn flush(&self, sim: &Sim) -> Result<(), DaosError> {
        sim.sleep(self.cfg.h5_op_cpu).await;
        if self.vfd.is_mpio_rank0() {
            let infos: Vec<_> = self.datasets.borrow().values().cloned().collect();
            for info in infos {
                let (header_off, header_dirty) = {
                    let i = info.borrow();
                    (i.header_off, i.header_dirty)
                };
                if header_dirty {
                    self.vfd
                        .write_meta(sim, header_off, Payload::pattern(0x0E, OBJ_HEADER))
                        .await?;
                    self.meta_writes.set(self.meta_writes.get() + 1);
                    info.borrow_mut().header_dirty = false;
                }
                while info.borrow().dirty_index_nodes > 0 {
                    let off = self.eoa.get(); // index nodes live at eoa-ish
                    self.vfd
                        .write_meta(sim, off, Payload::pattern(0xB7, BTREE_NODE))
                        .await?;
                    self.meta_writes.set(self.meta_writes.get() + 1);
                    info.borrow_mut().dirty_index_nodes -= 1;
                }
            }
            if self.sb_dirty.get() {
                self.vfd
                    .write_meta(sim, 0, Payload::pattern(0x5B, SUPERBLOCK))
                    .await?;
                self.meta_writes.set(self.meta_writes.get() + 1);
                self.sb_dirty.set(false);
            }
        }
        if let H5Vfd::Mpio { file, .. } = &self.vfd {
            file.rank().barrier(sim).await;
        }
        Ok(())
    }
}

impl Dataset {
    /// Absolute file offset where this dataset's bytes live (contiguous).
    pub fn data_offset(&self) -> u64 {
        self.info.borrow().data_off
    }
    /// Dataset size in bytes.
    pub fn size(&self) -> u64 {
        self.info.borrow().size
    }

    /// `H5Dwrite` of a contiguous hyperslab at byte offset `off`.
    pub async fn write(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        sim.sleep(self.file.cfg.h5_op_cpu).await;
        let data_len = data.len();
        let layout = self.info.borrow().layout;
        match layout {
            Layout::Contiguous => {
                let base = self.info.borrow().data_off;
                self.file.vfd.write(sim, base + off, data).await?;
                self.info.borrow_mut().header_dirty = true; // mtime
            }
            Layout::Chunked { chunk } => {
                let mut cur = off;
                let end = off + data.len();
                while cur < end {
                    let ci = cur / chunk;
                    let in_chunk = cur % chunk;
                    let take = (chunk - in_chunk).min(end - cur);
                    let file_off = {
                        let mut info = self.info.borrow_mut();
                        match info.chunks.get(&ci) {
                            Some(&o) => o,
                            None => {
                                let o = self.file.alloc(chunk);
                                info.chunks.insert(ci, o);
                                // every btree_fanout new chunks dirty a node
                                if info.chunks.len() as u64 % self.file.cfg.btree_fanout == 1 {
                                    info.dirty_index_nodes += 1;
                                }
                                o
                            }
                        }
                    };
                    self.file
                        .vfd
                        .write(sim, file_off + in_chunk, data.slice(cur - off, take))
                        .await?;
                    cur += take;
                }
                self.info.borrow_mut().header_dirty = true;
            }
        }
        let mut info = self.info.borrow_mut();
        info.size = info.size.max(off + data_len);
        Ok(())
    }

    /// `H5Dread` of a contiguous hyperslab; returns segments rebased to
    /// dataset offsets.
    pub async fn read(&self, sim: &Sim, off: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        sim.sleep(self.file.cfg.h5_op_cpu).await;
        let layout = self.info.borrow().layout;
        match layout {
            Layout::Contiguous => {
                let base = self.info.borrow().data_off;
                let segs = self.file.vfd.read(sim, base + off, len).await?;
                Ok(segs
                    .into_iter()
                    .map(|s| ReadSeg {
                        offset: s.offset - base,
                        len: s.len,
                        data: s.data,
                    })
                    .collect())
            }
            Layout::Chunked { chunk } => {
                let mut out = Vec::new();
                let mut cur = off;
                let end = off + len;
                while cur < end {
                    let ci = cur / chunk;
                    let in_chunk = cur % chunk;
                    let take = (chunk - in_chunk).min(end - cur);
                    let file_off = self.info.borrow().chunks.get(&ci).copied();
                    match file_off {
                        Some(fo) => {
                            // chunk-index lookup costs a small meta read per
                            // btree_fanout chunks (node caching)
                            if ci.is_multiple_of(self.file.cfg.btree_fanout) {
                                self.file.vfd.read_meta(sim, fo, BTREE_NODE).await?;
                            }
                            let segs = self.file.vfd.read(sim, fo + in_chunk, take).await?;
                            out.extend(segs.into_iter().map(|s| ReadSeg {
                                offset: cur + (s.offset - (fo + in_chunk)),
                                len: s.len,
                                data: s.data,
                            }));
                        }
                        None => out.push(ReadSeg {
                            offset: cur,
                            len: take,
                            data: None,
                        }),
                    }
                    cur += take;
                }
                Ok(out)
            }
        }
    }

    /// `H5Acreate`/`H5Awrite`: attributes live in the object header; small
    /// ones just dirty it (flushed at the next flush/close).
    pub async fn write_attr(&self, sim: &Sim, _name: &str, _value: &[u8]) -> Result<(), DaosError> {
        sim.sleep(self.file.cfg.h5_op_cpu).await;
        self.info.borrow_mut().header_dirty = true;
        Ok(())
    }

    /// Materialising read (test helper).
    pub async fn read_bytes(&self, sim: &Sim, off: u64, len: u64) -> Result<Vec<u8>, DaosError> {
        let segs = self.read(sim, off, len).await?;
        let mut out = vec![0u8; len as usize];
        for s in segs {
            if let Some(d) = s.data {
                let m = d.materialize();
                let start = (s.offset - off) as usize;
                out[start..start + s.len as usize].copy_from_slice(&m);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_dataset_data_is_unaligned() {
        // the property that drives the paper's HDF5 result: 96 + 512 + 512
        // is nowhere near a 1 MiB boundary
        let data_start = SUPERBLOCK + OBJ_HEADER + OBJ_HEADER;
        assert_eq!(data_start, 1120);
        assert_ne!(data_start % (1 << 20), 0);
    }
}
