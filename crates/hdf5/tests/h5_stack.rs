//! HDF5-over-the-full-stack integration tests: the mini library writing
//! through DFuse into a simulated cluster, with byte-exact read-back for
//! contiguous and chunked layouts, metadata accounting, and the unaligned
//! data-offset property that drives the paper's Figure 1 HDF5 result.

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_dfs::{Dfs, DfsConfig};
use daos_dfuse::{DfuseConfig, DfuseMount, OpenFlags};
use daos_hdf5::{H5Config, H5File, H5Vfd, Layout, OBJ_HEADER, SUPERBLOCK};
use daos_sim::units::{KIB, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

async fn mount(sim: &Sim) -> Rc<DfuseMount> {
    let cluster = Cluster::build(sim, ClusterConfig::tiny(1));
    let client = DaosClient::new(cluster, 0);
    let pool = client.connect(sim).await.unwrap();
    let dfs = Dfs::mount(sim, &pool, 1, DfsConfig::default(), 9)
        .await
        .unwrap();
    DfuseMount::new(dfs, DfuseConfig::default())
}

#[test]
fn contiguous_dataset_round_trip() {
    let mut sim = Sim::new(0x115);
    sim.block_on(|sim| async move {
        let m = mount(&sim).await;
        let f = m.open(&sim, "/a.h5", OpenFlags::create()).await.unwrap();
        let h5 = H5File::create(&sim, H5Vfd::Sec2(Box::new(f)), H5Config::default())
            .await
            .unwrap();
        let ds = h5
            .create_dataset(&sim, "data", 2 * MIB, Layout::Contiguous)
            .await
            .unwrap();
        let payload = Payload::pattern(5, 2 * MIB);
        ds.write(&sim, 0, payload.clone()).await.unwrap();
        let got = ds.read_bytes(&sim, 0, 2 * MIB).await.unwrap();
        assert_eq!(got, payload.materialize().to_vec());
        // partial read at an odd offset
        let got = ds.read_bytes(&sim, 12345, 1000).await.unwrap();
        assert_eq!(got, payload.slice(12345, 1000).materialize().to_vec());
        h5.close(&sim).await.unwrap();
    });
}

#[test]
fn dataset_data_is_unaligned_in_the_file() {
    let mut sim = Sim::new(0x116);
    sim.block_on(|sim| async move {
        let m = mount(&sim).await;
        let f = m.open(&sim, "/b.h5", OpenFlags::create()).await.unwrap();
        let h5 = H5File::create(&sim, H5Vfd::Sec2(Box::new(f)), H5Config::default())
            .await
            .unwrap();
        let ds = h5
            .create_dataset(&sim, "data", MIB, Layout::Contiguous)
            .await
            .unwrap();
        assert_eq!(ds.data_offset(), SUPERBLOCK + 2 * OBJ_HEADER);
        assert_ne!(
            ds.data_offset() % (1 << 20),
            0,
            "IOR does not set H5Pset_alignment: data must start unaligned"
        );
    });
}

#[test]
fn chunked_dataset_round_trip_with_holes() {
    let mut sim = Sim::new(0x117);
    sim.block_on(|sim| async move {
        let m = mount(&sim).await;
        let f = m.open(&sim, "/c.h5", OpenFlags::create()).await.unwrap();
        let h5 = H5File::create(&sim, H5Vfd::Sec2(Box::new(f)), H5Config::default())
            .await
            .unwrap();
        let ds = h5
            .create_dataset(&sim, "data", 4 * MIB, Layout::Chunked { chunk: 256 * KIB })
            .await
            .unwrap();
        // write two discontiguous regions spanning chunk boundaries
        let p1 = Payload::pattern(1, 300 * KIB);
        let p2 = Payload::pattern(2, 200 * KIB);
        ds.write(&sim, 100 * KIB, p1.clone()).await.unwrap();
        ds.write(&sim, 2 * MIB + 17, p2.clone()).await.unwrap();
        let got1 = ds.read_bytes(&sim, 100 * KIB, 300 * KIB).await.unwrap();
        assert_eq!(got1, p1.materialize().to_vec());
        let got2 = ds.read_bytes(&sim, 2 * MIB + 17, 200 * KIB).await.unwrap();
        assert_eq!(got2, p2.materialize().to_vec());
        // hole between the regions reads as zeroes
        let hole = ds.read_bytes(&sim, MIB, 4 * KIB).await.unwrap();
        assert!(hole.iter().all(|&b| b == 0));
        h5.close(&sim).await.unwrap();
    });
}

#[test]
fn metadata_writes_happen_at_create_and_flush() {
    let mut sim = Sim::new(0x118);
    sim.block_on(|sim| async move {
        let m = mount(&sim).await;
        let f = m.open(&sim, "/d.h5", OpenFlags::create()).await.unwrap();
        let h5 = H5File::create(&sim, H5Vfd::Sec2(Box::new(f)), H5Config::default())
            .await
            .unwrap();
        // create: superblock + root header
        assert_eq!(h5.meta_write_count(), 2);
        let ds = h5
            .create_dataset(&sim, "data", MIB, Layout::Contiguous)
            .await
            .unwrap();
        assert_eq!(h5.meta_write_count(), 3);
        // attribute + data writes only dirty the cache...
        ds.write_attr(&sim, "units", b"K").await.unwrap();
        ds.write(&sim, 0, Payload::pattern(9, MIB)).await.unwrap();
        assert_eq!(h5.meta_write_count(), 3);
        // ...until flush pushes the dirty header + superblock
        h5.flush(&sim).await.unwrap();
        assert_eq!(h5.meta_write_count(), 5);
        // idempotent: clean cache, nothing more to write
        h5.flush(&sim).await.unwrap();
        assert_eq!(h5.meta_write_count(), 5);
    });
}

#[test]
fn groups_allocate_headers() {
    let mut sim = Sim::new(0x119);
    sim.block_on(|sim| async move {
        let m = mount(&sim).await;
        let f = m.open(&sim, "/e.h5", OpenFlags::create()).await.unwrap();
        let h5 = H5File::create(&sim, H5Vfd::Sec2(Box::new(f)), H5Config::default())
            .await
            .unwrap();
        h5.create_group(&sim, "/step1").await.unwrap();
        h5.create_group(&sim, "/step2").await.unwrap();
        let ds = h5
            .create_dataset(&sim, "/step1/t", MIB, Layout::Contiguous)
            .await
            .unwrap();
        // two group headers pushed the dataset's data further out
        assert_eq!(ds.data_offset(), SUPERBLOCK + 4 * OBJ_HEADER);
        assert_eq!(h5.meta_write_count(), 5);
    });
}

#[test]
fn two_datasets_do_not_overlap() {
    let mut sim = Sim::new(0x11A);
    sim.block_on(|sim| async move {
        let m = mount(&sim).await;
        let f = m.open(&sim, "/f.h5", OpenFlags::create()).await.unwrap();
        let h5 = H5File::create(&sim, H5Vfd::Sec2(Box::new(f)), H5Config::default())
            .await
            .unwrap();
        let a = h5
            .create_dataset(&sim, "a", MIB, Layout::Contiguous)
            .await
            .unwrap();
        let b = h5
            .create_dataset(&sim, "b", MIB, Layout::Contiguous)
            .await
            .unwrap();
        let pa = Payload::pattern(100, MIB);
        let pb = Payload::pattern(200, MIB);
        a.write(&sim, 0, pa.clone()).await.unwrap();
        b.write(&sim, 0, pb.clone()).await.unwrap();
        assert_eq!(a.read_bytes(&sim, 0, MIB).await.unwrap(), pa.materialize());
        assert_eq!(b.read_bytes(&sim, 0, MIB).await.unwrap(), pb.materialize());
        assert!(b.data_offset() >= a.data_offset() + MIB);
        // reopen via open_dataset reads the header and sees the same extents
        let a2 = h5.open_dataset(&sim, "a").await.unwrap();
        assert_eq!(a2.data_offset(), a.data_offset());
        assert_eq!(a2.size(), MIB);
    });
}
