//! # daos-dfuse — the DFuse user-space filesystem layer
//!
//! DFuse exposes a DFS container as a POSIX mount point. The costs this
//! layer adds over calling `libdfs` directly — the heart of the paper's
//! interface comparison — are modelled explicitly:
//!
//! * **kernel crossings**: every FUSE request pays a syscall + FUSE queue
//!   round trip (`kernel_crossing`, ~4 µs);
//! * **request splitting**: the kernel caps FUSE I/O at `max_req` bytes
//!   (1 MiB) and cuts requests at `max_req`-*aligned* file offsets (page
//!   cache write-back granularity). A perfectly aligned 1 MiB write is one
//!   request; the same write at offset 2048 (an HDF5 file with a header)
//!   becomes **two sequential requests** — this is the main mechanism behind
//!   HDF5's poor showing through DFuse in the paper's Figure 1;
//! * **daemon concurrency**: one DFuse daemon with a bounded service pool
//!   per mount (per client node);
//! * optionally, the **interception library** (`libioil`): data I/O on
//!   intercepted descriptors bypasses the kernel and goes straight to DFS.
//!
//! No data is cached (`dfuse --disable-caching`, as in the paper's runs):
//! every POSIX I/O reaches DAOS.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::cell::Cell;
use std::rc::Rc;

use daos_core::DaosError;
use daos_dfs::{Dfs, DfsFile, Stat};
use daos_placement::ObjectClass;
use daos_sim::time::SimDuration;
use daos_sim::{Semaphore, Sim};
use daos_vos::tree::ReadSeg;
use daos_vos::Payload;

/// Cut `[offset, offset+len)` at `max_req`-aligned file offsets, the way
/// the kernel FUSE layer fragments I/O (page-cache write-back windows).
pub fn split_aligned(max_req: u64, offset: u64, len: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut cur = offset;
    let end = offset + len;
    while cur < end {
        let boundary = (cur / max_req + 1) * max_req;
        let take = boundary.min(end) - cur;
        out.push((cur, take));
        cur += take;
    }
    out
}

/// DFuse tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DfuseConfig {
    /// Kernel FUSE request size cap (and split alignment).
    pub max_req: u64,
    /// Cost of one user→kernel→daemon→kernel→user round trip.
    pub kernel_crossing: SimDuration,
    /// DFuse daemon service threads per mount.
    pub daemon_threads: usize,
    /// Interception library (`libioil`): read/write bypass the kernel.
    pub interception: bool,
}

impl Default for DfuseConfig {
    fn default() -> Self {
        DfuseConfig {
            max_req: 1 << 20,
            kernel_crossing: SimDuration::from_us(4),
            daemon_threads: 16,
            interception: false,
        }
    }
}

/// Counters for one mount.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfuseStats {
    pub fuse_requests: u64,
    pub intercepted_ops: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
}

/// A DFuse mount point on one client node.
pub struct DfuseMount {
    dfs: Rc<Dfs>,
    cfg: DfuseConfig,
    daemon: Semaphore,
    reqs: Cell<u64>,
    il_ops: Cell<u64>,
    wr_bytes: Cell<u64>,
    rd_bytes: Cell<u64>,
}

/// Open flags for [`DfuseMount::open`].
#[derive(Clone, Copy, Debug)]
pub struct OpenFlags {
    pub create: bool,
    /// Class for newly created files (`None` = mount default).
    pub class: Option<ObjectClass>,
    /// Chunk size for newly created files (`None` = mount default).
    pub chunk_size: Option<u64>,
}

impl OpenFlags {
    /// Read-only open of an existing file.
    pub fn read() -> Self {
        OpenFlags {
            create: false,
            class: None,
            chunk_size: None,
        }
    }
    /// Create-if-missing with defaults.
    pub fn create() -> Self {
        OpenFlags {
            create: true,
            class: None,
            chunk_size: None,
        }
    }
    /// Create with an explicit object class.
    pub fn create_with(class: ObjectClass) -> Self {
        OpenFlags {
            create: true,
            class: Some(class),
            chunk_size: None,
        }
    }
}

/// An open POSIX file descriptor on the mount.
#[derive(Clone)]
pub struct PosixFile {
    mount: Rc<DfuseMount>,
    file: DfsFile,
}

impl DfuseMount {
    /// Mount `dfs` with `cfg`.
    pub fn new(dfs: Rc<Dfs>, cfg: DfuseConfig) -> Rc<DfuseMount> {
        Rc::new(DfuseMount {
            dfs,
            daemon: Semaphore::new(cfg.daemon_threads),
            cfg,
            reqs: Cell::new(0),
            il_ops: Cell::new(0),
            wr_bytes: Cell::new(0),
            rd_bytes: Cell::new(0),
        })
    }

    /// This mount's configuration.
    pub fn config(&self) -> &DfuseConfig {
        &self.cfg
    }
    /// The DFS namespace behind the mount.
    pub fn dfs(&self) -> &Rc<Dfs> {
        &self.dfs
    }
    /// Counters.
    pub fn stats(&self) -> DfuseStats {
        DfuseStats {
            fuse_requests: self.reqs.get(),
            intercepted_ops: self.il_ops.get(),
            bytes_written: self.wr_bytes.get(),
            bytes_read: self.rd_bytes.get(),
        }
    }

    /// One metadata FUSE request (open/stat/mkdir/...): crossing + daemon.
    async fn meta_req(&self, sim: &Sim) -> daos_sim::SemaphorePermit {
        sim.sleep(self.cfg.kernel_crossing).await;
        self.reqs.set(self.reqs.get() + 1);
        self.daemon.acquire().await
    }

    /// Split `[offset, offset+len)` at `max_req`-aligned boundaries.
    fn split(&self, offset: u64, len: u64) -> Vec<(u64, u64)> {
        split_aligned(self.cfg.max_req, offset, len)
    }

    /// POSIX `open(2)`.
    pub async fn open(
        self: &Rc<Self>,
        sim: &Sim,
        path: &str,
        flags: OpenFlags,
    ) -> Result<PosixFile, DaosError> {
        let _t = self.meta_req(sim).await;
        let file = if flags.create {
            let class = flags.class.unwrap_or(self.dfs.config().file_class);
            let chunk = flags.chunk_size.unwrap_or(self.dfs.config().chunk_size);
            self.dfs.create(sim, path, class, chunk).await?
        } else {
            self.dfs.open(sim, path).await?
        };
        Ok(PosixFile {
            mount: Rc::clone(self),
            file,
        })
    }

    /// POSIX `mkdir(2)`.
    pub async fn mkdir(self: &Rc<Self>, sim: &Sim, path: &str) -> Result<(), DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.mkdir(sim, path).await
    }

    /// POSIX `stat(2)`.
    pub async fn stat(self: &Rc<Self>, sim: &Sim, path: &str) -> Result<Stat, DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.stat(sim, path).await
    }

    /// POSIX `readdir(3)`.
    pub async fn readdir(self: &Rc<Self>, sim: &Sim, path: &str) -> Result<Vec<String>, DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.readdir(sim, path).await
    }

    /// POSIX `unlink(2)`.
    pub async fn unlink(self: &Rc<Self>, sim: &Sim, path: &str) -> Result<(), DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.unlink(sim, path).await
    }

    /// POSIX `rename(2)`.
    pub async fn rename(self: &Rc<Self>, sim: &Sim, from: &str, to: &str) -> Result<(), DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.rename(sim, from, to).await
    }

    /// POSIX `symlink(2)`.
    pub async fn symlink(
        self: &Rc<Self>,
        sim: &Sim,
        path: &str,
        target: &str,
    ) -> Result<(), DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.symlink(sim, path, target).await
    }

    /// POSIX `truncate(2)`.
    pub async fn truncate(
        self: &Rc<Self>,
        sim: &Sim,
        path: &str,
        size: u64,
    ) -> Result<(), DaosError> {
        let _t = self.meta_req(sim).await;
        self.dfs.truncate(sim, path, size).await
    }
}

impl PosixFile {
    /// The underlying DFS file (interception library's view).
    pub fn dfs_file(&self) -> &DfsFile {
        &self.file
    }

    /// POSIX `pwrite(2)`.
    ///
    /// Without interception the kernel cuts the write at `max_req`-aligned
    /// boundaries and issues the pieces **sequentially** (FUSE direct-io
    /// write-back behaviour) — an unaligned 1 MiB write costs two full
    /// round trips.
    pub async fn pwrite(&self, sim: &Sim, offset: u64, data: Payload) -> Result<(), DaosError> {
        let m = &self.mount;
        m.wr_bytes.set(m.wr_bytes.get() + data.len());
        if m.cfg.interception {
            m.il_ops.set(m.il_ops.get() + 1);
            return self.file.write(sim, offset, data).await;
        }
        for (piece_off, piece_len) in m.split(offset, data.len()) {
            sim.sleep(m.cfg.kernel_crossing).await;
            m.reqs.set(m.reqs.get() + 1);
            let _t = m.daemon.acquire().await;
            let piece = data.slice(piece_off - offset, piece_len);
            self.file.write(sim, piece_off, piece).await?;
        }
        Ok(())
    }

    /// POSIX `pread(2)`; same splitting rules as writes.
    pub async fn pread(&self, sim: &Sim, offset: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        let m = &self.mount;
        m.rd_bytes.set(m.rd_bytes.get() + len);
        if m.cfg.interception {
            m.il_ops.set(m.il_ops.get() + 1);
            return self.file.read(sim, offset, len).await;
        }
        let mut segs = Vec::new();
        for (piece_off, piece_len) in m.split(offset, len) {
            sim.sleep(m.cfg.kernel_crossing).await;
            m.reqs.set(m.reqs.get() + 1);
            let _t = m.daemon.acquire().await;
            segs.extend(self.file.read(sim, piece_off, piece_len).await?);
        }
        Ok(segs)
    }

    /// Materialising read (test helper).
    pub async fn pread_bytes(
        &self,
        sim: &Sim,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, DaosError> {
        let segs = self.pread(sim, offset, len).await?;
        let mut out = vec![0u8; len as usize];
        for s in segs {
            if let Some(d) = s.data {
                let m = d.materialize();
                let start = (s.offset - offset) as usize;
                out[start..start + s.len as usize].copy_from_slice(&m);
            }
        }
        Ok(out)
    }

    /// POSIX `fstat(2)` size query.
    pub async fn size(&self, sim: &Sim) -> Result<u64, DaosError> {
        sim.sleep(self.mount.cfg.kernel_crossing).await;
        self.file.size(sim).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_alignment_rules() {
        let mib = 1u64 << 20;
        // aligned 1 MiB: one piece
        assert_eq!(split_aligned(mib, 0, mib), vec![(0, mib)]);
        assert_eq!(split_aligned(mib, 5 * mib, mib), vec![(5 * mib, mib)]);
        // unaligned 1 MiB: two pieces cut at the boundary
        assert_eq!(
            split_aligned(mib, 2048, mib),
            vec![(2048, mib - 2048), (mib, 2048)]
        );
        // large aligned write: N pieces
        assert_eq!(split_aligned(mib, 0, 3 * mib).len(), 3);
        // small write inside one window: one piece
        assert_eq!(split_aligned(mib, 100, 200), vec![(100, 200)]);
    }
}
