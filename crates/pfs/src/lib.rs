//! # daos-pfs — a Lustre-like parallel filesystem baseline
//!
//! The paper's §IV closes on the observation that on DAOS, shared-file and
//! file-per-process I/O perform alike, "in stark contrast to the
//! performance standard parallel filesystems provide". This crate is that
//! standard parallel filesystem, modelled with the three mechanisms that
//! produce the contrast:
//!
//! * a **single metadata server** (MDS): every open/create/stat is one
//!   FIFO-served RPC — file-per-process create storms serialise here;
//! * **striped OSTs**: file data striped `stripe_size` round-robin over
//!   `stripe_count` object storage targets, each a bandwidth-limited
//!   device behind the shared fabric;
//! * an **LDLM-style extent lock manager** per (file, OST) pair: writers
//!   take PW locks that Lustre optimistically expands to the largest free
//!   extent; a conflicting writer forces a **revoke round trip** (callback
//!   latency + dirty flush) before it can proceed. Interleaved shared-file
//!   writes ping-pong these locks on every transfer, serialising OST
//!   service — the classic shared-file collapse. Readers take PR locks,
//!   which are mutually compatible.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use daos_fabric::{Fabric, FabricConfig, NodeId};
use daos_sim::time::SimDuration;
use daos_sim::units::Bandwidth;
use daos_sim::{Pipe, Semaphore, SharedPipe, Sim};
use daos_vos::Payload;

/// Lock mode on a file extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Protected read — compatible with other PR locks.
    Pr,
    /// Protected write — exclusive.
    Pw,
}

/// Testbed parameters.
#[derive(Clone, Copy, Debug)]
pub struct PfsConfig {
    /// Number of object storage targets.
    pub ost_count: u32,
    /// Per-OST write bandwidth.
    pub ost_write_bw: Bandwidth,
    /// Per-OST read bandwidth.
    pub ost_read_bw: Bandwidth,
    /// Stripe unit.
    pub stripe_size: u64,
    /// Default stripe count for new files.
    pub stripe_count: u32,
    /// MDS service time per metadata op.
    pub mds_op: SimDuration,
    /// LDLM enqueue service time (uncontended).
    pub lock_op: SimDuration,
    /// Cost of revoking a conflicting lock (callback + client flush).
    pub revoke_cost: SimDuration,
    /// Client nodes on the fabric.
    pub client_nodes: u32,
    /// Fabric parameters (shared with the DAOS testbed for fairness).
    pub fabric: FabricConfig,
}

impl Default for PfsConfig {
    /// A flash-era Lustre comparable in raw capacity to the DAOS testbed.
    fn default() -> Self {
        PfsConfig {
            ost_count: 16,
            ost_write_bw: Bandwidth::gib_per_sec(2.2),
            ost_read_bw: Bandwidth::gib_per_sec(3.0),
            stripe_size: 1 << 20,
            stripe_count: 1,
            mds_op: SimDuration::from_us(120),
            lock_op: SimDuration::from_us(30),
            revoke_cost: SimDuration::from_us(600),
            client_nodes: 1,
            fabric: FabricConfig::default(),
        }
    }
}

/// File identifier.
pub type Fid = u64;

struct GrantedLock {
    owner: u64,
    lo: u64,
    hi: u64,
    mode: LockMode,
}

struct OstState {
    write_pipe: SharedPipe,
    read_pipe: SharedPipe,
    /// (fid) -> extent locks on this OST's object of that file.
    locks: RefCell<BTreeMap<Fid, Vec<GrantedLock>>>,
    /// LDLM service serialisation.
    ldlm: Semaphore,
}

struct FileMeta {
    fid: Fid,
    stripe_count: u32,
    size: Cell<u64>,
}

/// The filesystem: one MDS, many OSTs, a lock manager per OST.
pub struct Pfs {
    cfg: PfsConfig,
    fabric: Rc<Fabric>,
    mds: Semaphore,
    mds_pipe: SharedPipe,
    osts: Vec<OstState>,
    namespace: RefCell<BTreeMap<String, Rc<FileMeta>>>,
    next_fid: Cell<Fid>,
    revokes: Cell<u64>,
    lock_rpcs: Cell<u64>,
}

/// Statistics counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PfsStats {
    pub lock_rpcs: u64,
    pub revokes: u64,
}

/// An open file descriptor (per client process).
#[derive(Clone)]
pub struct PfsFile {
    fs: Rc<Pfs>,
    meta: Rc<FileMeta>,
    /// Lock-owner identity (client process id).
    owner: u64,
    /// Client fabric node.
    node: NodeId,
}

impl Pfs {
    /// Build the filesystem. Fabric layout: OSTs on nodes `0..ost_count`,
    /// the MDS on node `ost_count`, client node `i` on `ost_count + 1 + i`.
    pub fn build(cfg: PfsConfig) -> Rc<Pfs> {
        let fabric = Fabric::new((cfg.ost_count + 1 + cfg.client_nodes) as usize, cfg.fabric);
        let osts = (0..cfg.ost_count)
            .map(|i| OstState {
                write_pipe: Pipe::new(
                    format!("ost{i}.wr"),
                    cfg.ost_write_bw,
                    SimDuration::from_us(40),
                ),
                read_pipe: Pipe::new(
                    format!("ost{i}.rd"),
                    cfg.ost_read_bw,
                    SimDuration::from_us(60),
                ),
                locks: RefCell::new(BTreeMap::new()),
                ldlm: Semaphore::new(1),
            })
            .collect();
        Rc::new(Pfs {
            fabric,
            mds: Semaphore::new(1),
            mds_pipe: Pipe::new("mds", Bandwidth::gib_per_sec(8.0), SimDuration::from_us(20)),
            osts,
            namespace: RefCell::new(BTreeMap::new()),
            next_fid: Cell::new(1),
            revokes: Cell::new(0),
            lock_rpcs: Cell::new(0),
            cfg,
        })
    }

    /// The filesystem's configuration.
    pub fn config(&self) -> &PfsConfig {
        &self.cfg
    }
    /// Lock-traffic counters.
    pub fn stats(&self) -> PfsStats {
        PfsStats {
            lock_rpcs: self.lock_rpcs.get(),
            revokes: self.revokes.get(),
        }
    }
    /// Fabric node of client node `i`.
    pub fn client_node(&self, i: u32) -> NodeId {
        (self.cfg.ost_count + 1 + i) as NodeId
    }
    fn mds_node(&self) -> NodeId {
        self.cfg.ost_count as NodeId
    }

    async fn mds_op(&self, sim: &Sim, client: NodeId) {
        // request to MDS, FIFO service, reply
        self.fabric.message(sim, client, self.mds_node(), 256).await;
        let _t = self.mds.acquire().await;
        self.mds_pipe.occupy(sim, self.cfg.mds_op).await;
        drop(_t);
        self.fabric.message(sim, self.mds_node(), client, 256).await;
    }

    /// Create (or open existing) a file; every call is an MDS round trip.
    pub async fn open(
        self: &Rc<Self>,
        sim: &Sim,
        client_node_idx: u32,
        owner: u64,
        path: &str,
        create: bool,
    ) -> Result<PfsFile, String> {
        let node = self.client_node(client_node_idx);
        self.mds_op(sim, node).await;
        let meta = {
            let mut ns = self.namespace.borrow_mut();
            match ns.get(path) {
                Some(m) => Rc::clone(m),
                None if create => {
                    let fid = self.next_fid.get();
                    self.next_fid.set(fid + 1);
                    let m = Rc::new(FileMeta {
                        fid,
                        stripe_count: self.cfg.stripe_count.min(self.cfg.ost_count),
                        size: Cell::new(0),
                    });
                    ns.insert(path.to_string(), Rc::clone(&m));
                    m
                }
                None => return Err(format!("no such file: {path}")),
            }
        };
        Ok(PfsFile {
            fs: Rc::clone(self),
            meta,
            owner,
            node,
        })
    }

    /// `stat(2)`: one MDS round trip (+ OST glimpse, folded into mds_op).
    pub async fn stat(&self, sim: &Sim, client_node_idx: u32, path: &str) -> Result<u64, String> {
        let node = self.client_node(client_node_idx);
        self.mds_op(sim, node).await;
        self.namespace
            .borrow()
            .get(path)
            .map(|m| m.size.get())
            .ok_or_else(|| format!("no such file: {path}"))
    }

    /// `unlink(2)`.
    pub async fn unlink(&self, sim: &Sim, client_node_idx: u32, path: &str) -> Result<(), String> {
        let node = self.client_node(client_node_idx);
        self.mds_op(sim, node).await;
        self.namespace
            .borrow_mut()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| format!("no such file: {path}"))
    }

    /// Acquire an extent lock on `(fid, ost)`; returns after any revokes.
    #[allow(clippy::too_many_arguments)]
    async fn ldlm_enqueue(
        &self,
        sim: &Sim,
        client: NodeId,
        ost: usize,
        fid: Fid,
        lo: u64,
        hi: u64,
        mode: LockMode,
        owner: u64,
    ) {
        // fast path: the owner already holds a covering, compatible lock
        {
            let locks = self.osts[ost].locks.borrow();
            if let Some(ls) = locks.get(&fid) {
                if ls.iter().any(|l| {
                    l.owner == owner
                        && l.lo <= lo
                        && l.hi >= hi
                        && (l.mode == LockMode::Pw || l.mode == mode)
                }) {
                    return; // cached grant, no RPC
                }
            }
        }
        self.lock_rpcs.set(self.lock_rpcs.get() + 1);
        self.fabric.message(sim, client, ost as NodeId, 256).await;
        let _svc = self.osts[ost].ldlm.acquire().await;
        sim.sleep(self.cfg.lock_op).await;

        // revoke every incompatible grant
        let conflicts: Vec<(u64, u64, u64)> = {
            let locks = self.osts[ost].locks.borrow();
            locks
                .get(&fid)
                .map(|ls| {
                    ls.iter()
                        .filter(|l| {
                            l.lo < hi
                                && l.hi > lo
                                && l.owner != owner
                                && (l.mode == LockMode::Pw || mode == LockMode::Pw)
                        })
                        .map(|l| (l.owner, l.lo, l.hi))
                        .collect()
                })
                .unwrap_or_default()
        };
        for _ in &conflicts {
            self.revokes.set(self.revokes.get() + 1);
            sim.sleep(self.cfg.revoke_cost).await;
        }
        {
            let mut locks = self.osts[ost].locks.borrow_mut();
            let ls = locks.entry(fid).or_default();
            ls.retain(|l| {
                !conflicts
                    .iter()
                    .any(|&(o, clo, chi)| l.owner == o && l.lo == clo && l.hi == chi)
            });
            // optimistic expansion: grow the grant to the largest gap free
            // of other owners' locks (Lustre grants up to OBD_OBJECT_EOF)
            let mut glo = 0u64;
            let mut ghi = u64::MAX;
            for l in ls.iter() {
                if l.owner == owner {
                    continue;
                }
                if l.hi <= lo {
                    glo = glo.max(l.hi);
                } else if l.lo >= hi {
                    ghi = ghi.min(l.lo);
                }
            }
            ls.push(GrantedLock {
                owner,
                lo: glo,
                hi: ghi,
                mode,
            });
        }
        self.fabric.message(sim, ost as NodeId, client, 256).await;
    }
}

impl PfsFile {
    /// The file's current size.
    pub fn size(&self) -> u64 {
        self.meta.size.get()
    }

    /// Stripe pieces of `[off, off+len)`: `(ost, piece_off, piece_len)`.
    fn stripes(&self, off: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let ss = self.fs.cfg.stripe_size;
        let sc = self.meta.stripe_count as u64;
        let mut out = Vec::new();
        let mut cur = off;
        let end = off + len;
        while cur < end {
            let stripe = cur / ss;
            let in_stripe = cur % ss;
            let take = (ss - in_stripe).min(end - cur);
            let ost = ((stripe % sc) + (self.meta.fid % self.fs.cfg.ost_count as u64))
                % self.fs.cfg.ost_count as u64;
            out.push((ost as usize, cur, take));
            cur += take;
        }
        out
    }

    /// `pwrite(2)`: per-stripe PW lock + fabric transfer + OST service.
    pub async fn write(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), String> {
        for (ost, poff, plen) in self.stripes(off, data.len()) {
            self.fs
                .ldlm_enqueue(
                    sim,
                    self.node,
                    ost,
                    self.meta.fid,
                    poff,
                    poff + plen,
                    LockMode::Pw,
                    self.owner,
                )
                .await;
            self.fs
                .fabric
                .message(sim, self.node, ost as NodeId, plen + 256)
                .await;
            self.fs.osts[ost].write_pipe.transfer(sim, plen).await;
            self.fs
                .fabric
                .message(sim, ost as NodeId, self.node, 128)
                .await;
        }
        let end = off + data.len();
        if end > self.meta.size.get() {
            self.meta.size.set(end);
        }
        Ok(())
    }

    /// `pread(2)`: per-stripe PR lock + OST service + transfer back.
    pub async fn read(&self, sim: &Sim, off: u64, len: u64) -> Result<u64, String> {
        let mut got = 0;
        for (ost, poff, plen) in self.stripes(off, len) {
            self.fs
                .ldlm_enqueue(
                    sim,
                    self.node,
                    ost,
                    self.meta.fid,
                    poff,
                    poff + plen,
                    LockMode::Pr,
                    self.owner,
                )
                .await;
            self.fs
                .fabric
                .message(sim, self.node, ost as NodeId, 256)
                .await;
            self.fs.osts[ost].read_pipe.transfer(sim, plen).await;
            self.fs
                .fabric
                .message(sim, ost as NodeId, self.node, plen + 128)
                .await;
            got += plen;
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_sim::executor::join_all;
    use daos_sim::units::MIB;

    fn build(clients: u32, stripes: u32) -> (Sim, Rc<Pfs>) {
        let sim = Sim::new(3);
        let fs = Pfs::build(PfsConfig {
            client_nodes: clients,
            stripe_count: stripes,
            ..Default::default()
        });
        (sim, fs)
    }

    #[test]
    fn create_write_read_round_trip() {
        let (mut sim, fs) = build(1, 2);
        sim.block_on(|sim| {
            let fs = Rc::clone(&fs);
            async move {
                let f = fs.open(&sim, 0, 1, "/a", true).await.unwrap();
                f.write(&sim, 0, Payload::pattern(1, 4 * MIB))
                    .await
                    .unwrap();
                assert_eq!(f.size(), 4 * MIB);
                let got = f.read(&sim, 0, 4 * MIB).await.unwrap();
                assert_eq!(got, 4 * MIB);
                assert_eq!(fs.stat(&sim, 0, "/a").await.unwrap(), 4 * MIB);
                fs.unlink(&sim, 0, "/a").await.unwrap();
                assert!(fs.stat(&sim, 0, "/a").await.is_err());
            }
        });
    }

    #[test]
    fn fpp_writers_do_not_conflict() {
        let (mut sim, fs) = build(4, 1);
        sim.block_on(|sim| {
            let fs = Rc::clone(&fs);
            async move {
                let futs: Vec<_> = (0..8u64)
                    .map(|r| {
                        let fs = Rc::clone(&fs);
                        let sim = sim.clone();
                        async move {
                            let f = fs
                                .open(&sim, (r % 4) as u32, r, &format!("/f{r}"), true)
                                .await
                                .unwrap();
                            for k in 0..8u64 {
                                f.write(&sim, k * MIB, Payload::pattern(r, MIB))
                                    .await
                                    .unwrap();
                            }
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
            }
        });
        assert_eq!(fs.stats().revokes, 0, "file-per-process must not revoke");
    }

    #[test]
    fn shared_file_writers_ping_pong_locks() {
        let (mut sim, fs) = build(4, 4);
        let elapsed_shared = sim.block_on(|sim| {
            let fs = Rc::clone(&fs);
            async move {
                let t0 = sim.now();
                let futs: Vec<_> = (0..8u64)
                    .map(|r| {
                        let fs = Rc::clone(&fs);
                        let sim = sim.clone();
                        async move {
                            let f = fs
                                .open(&sim, (r % 4) as u32, r, "/shared", true)
                                .await
                                .unwrap();
                            for k in 0..8u64 {
                                f.write(&sim, (r * 8 + k) * MIB, Payload::pattern(r, MIB))
                                    .await
                                    .unwrap();
                            }
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                (sim.now() - t0).as_ns()
            }
        });
        let st = fs.stats();
        assert!(st.revokes > 8, "interleaved writers must revoke: {st:?}");

        // same volume, file per process: must be significantly faster
        let (mut sim2, fs2) = build(4, 4);
        let elapsed_fpp = sim2.block_on(|sim| {
            let fs = Rc::clone(&fs2);
            async move {
                let t0 = sim.now();
                let futs: Vec<_> = (0..8u64)
                    .map(|r| {
                        let fs = Rc::clone(&fs);
                        let sim = sim.clone();
                        async move {
                            let f = fs
                                .open(&sim, (r % 4) as u32, r, &format!("/f{r}"), true)
                                .await
                                .unwrap();
                            for k in 0..8u64 {
                                f.write(&sim, k * MIB, Payload::pattern(r, MIB))
                                    .await
                                    .unwrap();
                            }
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                (sim.now() - t0).as_ns()
            }
        });
        assert!(
            elapsed_shared > elapsed_fpp * 12 / 10,
            "shared {elapsed_shared} must be slower than fpp {elapsed_fpp}"
        );
    }

    #[test]
    fn readers_share_locks() {
        let (mut sim, fs) = build(2, 2);
        sim.block_on(|sim| {
            let fs = Rc::clone(&fs);
            async move {
                let w = fs.open(&sim, 0, 99, "/r", true).await.unwrap();
                w.write(&sim, 0, Payload::pattern(0, 8 * MIB))
                    .await
                    .unwrap();
                let before = fs.stats().revokes;
                let futs: Vec<_> = (0..4u64)
                    .map(|r| {
                        let fs = Rc::clone(&fs);
                        let sim = sim.clone();
                        async move {
                            let f = fs.open(&sim, (r % 2) as u32, r, "/r", false).await.unwrap();
                            f.read(&sim, 0, 8 * MIB).await.unwrap();
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                let after = fs.stats().revokes;
                // first reader revokes the writer's PW once per OST at most;
                // readers must not revoke each other
                assert!(
                    after - before <= 2,
                    "reader-vs-reader revokes detected: {}",
                    after - before
                );
            }
        });
    }

    #[test]
    fn stripes_cover_range_exactly() {
        let (mut sim, fs) = build(1, 4);
        sim.block_on(|sim| {
            let fs = Rc::clone(&fs);
            async move {
                let f = fs.open(&sim, 0, 1, "/s", true).await.unwrap();
                let pieces = f.stripes(MIB / 2, 3 * MIB);
                let total: u64 = pieces.iter().map(|p| p.2).sum();
                assert_eq!(total, 3 * MIB);
                // pieces are contiguous
                let mut cur = MIB / 2;
                for (_, off, len) in &pieces {
                    assert_eq!(*off, cur);
                    cur += len;
                }
                // spread across more than one OST
                let osts: std::collections::BTreeSet<_> = pieces.iter().map(|p| p.0).collect();
                assert!(osts.len() > 1);
            }
        });
    }
}
