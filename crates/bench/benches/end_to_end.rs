//! End-to-end Criterion benchmarks: full IOR runs per interface on a
//! small cluster, measuring *host* time per simulated experiment — i.e.
//! how expensive the reproduction itself is to run. (The paper's figures
//! come from the `fig*` binaries; this tracks simulator performance so
//! regressions in the repo's own hot paths are caught.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use daos_core::ClusterConfig;
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed, IorParams};
use daos_placement::ObjectClass;
use daos_sim::units::MIB;
use daos_sim::Sim;

fn one_run(api: Api, fpp: bool) -> f64 {
    let mut sim = Sim::new(0xE2E);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            ClusterConfig::tiny(2),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        let p = IorParams {
            api,
            transfer_size: MIB,
            block_size: 8 * MIB,
            segments: 1,
            file_per_process: fpp,
            ppn: 4,
            oclass: ObjectClass::S2,
            chunk_size: MIB,
            verify: false,
            do_write: true,
            do_read: true,
            random_offsets: false,
            reorder_read: false,
            stonewall: None,
        };
        let r = run(&sim, &env, p).await.expect("run");
        r.write_gib_s() + r.read_gib_s()
    })
}

fn bench_ior(c: &mut Criterion) {
    let mut g = c.benchmark_group("ior_sim");
    g.sample_size(10);
    for (name, api) in [
        ("dfs", Api::Dfs),
        ("posix", Api::Posix { il: false }),
        ("mpiio", Api::Mpiio { collective: false }),
        ("hdf5", Api::Hdf5),
        ("daos_array", Api::DaosArray),
    ] {
        g.bench_function(format!("{name}_fpp"), |b| {
            b.iter(|| black_box(one_run(api, true)))
        });
    }
    g.bench_function("dfs_shared", |b| {
        b.iter(|| black_box(one_run(Api::Dfs, false)))
    });
    g.finish();
}

criterion_group!(benches, bench_ior);
criterion_main!(benches);
