//! Criterion microbenchmarks for the hot data structures and the DES
//! kernel: how fast the *simulator itself* runs, and the cost of the core
//! algorithms (extent overlay, placement, RAFT replication).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use daos_placement::{jump_consistent_hash, place, ObjectClass, ObjectId, PoolMap};
use daos_raft::testing::Cluster as RaftCluster;
use daos_sim::time::SimDuration;
use daos_sim::units::{Bandwidth, MIB};
use daos_sim::{Pipe, Sim};
use daos_vos::tree::ExtentTree;
use daos_vos::Payload;

fn bench_extent_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("extent_tree");
    g.bench_function("insert_1k_sequential", |b| {
        b.iter(|| {
            let mut t = ExtentTree::new();
            for i in 0..1000u64 {
                t.insert(i * 4096, i + 1, Payload::pattern(i, 4096));
            }
            black_box(t.extent_count())
        })
    });
    g.bench_function("read_overlay_100_writes", |b| {
        let mut t = ExtentTree::new();
        let mut s = 0x1234u64;
        for e in 1..=100u64 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            t.insert(s % 100_000, e, Payload::pattern(e, 8192));
        }
        b.iter(|| black_box(t.read(0, 120_000, 100).len()))
    });
    g.bench_function("aggregate_200_overwrites", |b| {
        b.iter_with_setup(
            || {
                let mut t = ExtentTree::new();
                for e in 1..=200u64 {
                    t.insert(0, e, Payload::pattern(e, 64 * 1024));
                }
                t
            },
            |mut t| black_box(t.aggregate(200)),
        )
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    let map = PoolMap::new(16, 8);
    g.bench_function("place_s1", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(place(ObjectId::new(i, i), ObjectClass::S1, &map))
        })
    });
    g.bench_function("place_sx_128_targets", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(place(ObjectId::new(i, i), ObjectClass::SX, &map))
        })
    });
    g.bench_function("jump_hash", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            black_box(jump_consistent_hash(k, 128))
        })
    });
    g.finish();
}

fn bench_payload(c: &mut Criterion) {
    let mut g = c.benchmark_group("payload");
    g.throughput(Throughput::Bytes(MIB));
    g.bench_function("pattern_materialize_1mib", |b| {
        let p = Payload::pattern(7, MIB);
        b.iter(|| black_box(p.materialize().len()))
    });
    g.bench_function("pattern_slice_1mib", |b| {
        let p = Payload::pattern(7, 4 * MIB);
        b.iter(|| black_box(p.slice(MIB, MIB).len()))
    });
    g.finish();
}

fn bench_raft(c: &mut Criterion) {
    let mut g = c.benchmark_group("raft");
    g.bench_function("propose_commit_3_replicas", |b| {
        b.iter_with_setup(
            || {
                let mut cl: RaftCluster<u64> = RaftCluster::new(3, 0xBE);
                cl.run_until_leader(500);
                cl
            },
            |mut cl| {
                for i in 0..32u64 {
                    cl.propose(i);
                    cl.run(3);
                }
                black_box(cl.applied.values().next().unwrap().len())
            },
        )
    });
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_kernel");
    g.bench_function("spawn_sleep_10k_tasks", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.block_on(|sim| async move {
                let futs: Vec<_> = (0..10_000u64)
                    .map(|i| {
                        let s = sim.clone();
                        async move {
                            s.sleep_ns(i % 977).await;
                        }
                    })
                    .collect();
                daos_sim::executor::join_all(&sim, futs).await;
            });
            black_box(())
        })
    });
    g.bench_function("pipe_10k_transfers", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            sim.block_on(|sim| async move {
                let pipe = Pipe::new(
                    "bench",
                    Bandwidth::gib_per_sec(10.0),
                    SimDuration::from_us(1),
                );
                for _ in 0..10_000 {
                    pipe.transfer(&sim, 4096).await;
                }
            });
            black_box(())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_extent_tree,
    bench_placement,
    bench_payload,
    bench_raft,
    bench_sim_kernel
);
criterion_main!(benches);
