//! The `regress` gate's job slate: every reduced-scale figure decomposed
//! into independent, seeded, single-threaded jobs on the [`crate::exec`]
//! runner.
//!
//! The serial `regress` ran its figures one after another, and CI
//! latency was bounded by the 16-node cells. Here each figure cell — an
//! IOR sweep point, a PFS-contrast cell, the IO500 composite, a fault or
//! rot timeline, a checksum-overhead point — is one job with a fixed
//! seed, so the whole gate fans out across host threads. Reduction is by
//! *(series, scale, metric)* key into `BTreeMap`-backed reports, applied
//! in submission order, so the seven `BenchReport`s (and everything
//! derived from them: JSON, drift tables, invariant verdicts) are
//! byte-identical regardless of thread count or schedule.
//!
//! Heavy jobs (largest node counts) are submitted first so a straggler
//! 16-node cell overlaps the tail of small cells — submission order is a
//! scheduling hint only, never an output order dependency.
//!
//! Scales: [`reduced`] is the CI gate (exactly the pre-executor regress
//! workload, cell for cell, seed for seed — committed baselines stay
//! valid); [`smoke`] is a miniature of the same slate for the
//! schedule-independence tests and the CI `--threads 1` cross-check.

use daos_placement::ObjectClass;
use daos_sim::units::MIB;

use crate::exec::Slate;
use crate::figures::{
    csum_overhead_point_sized, daos_point, fault_timeline, figure_apis, figure_classes,
    grid_points, pfs_point, record_fault_timeline, record_rot_timeline, record_sweep, rot_timeline,
    run_io500_sized, FaultTimeline, RotTimeline, FIG1_SEED, FIG2_SEED, PPN, REDUCED_NODES,
    REDUCED_REPEATS,
};
use crate::report::{config_hash, BenchReport, Fragment, Record};
use crate::traffic::{
    record_traffic_cell, traffic_cluster, traffic_modes, traffic_point, TrafficCell, TrafficParams,
    TRAFFIC_SEED,
};
use crate::{paper_cluster, paper_params, run_point_with, Measurement};

/// Scale knobs for one regress slate run.
#[derive(Clone, Debug)]
pub struct SlateScale {
    /// Figure / PFS-contrast node axis (ascending).
    pub nodes: Vec<u32>,
    /// Placement repeats per figure cell.
    pub repeats: u64,
    /// Per-rank block override for figure cells; `None` = the paper's
    /// 32 MiB ([`crate::paper_params`]).
    pub fig_block: Option<u64>,
    /// Processes per node for the figure cells.
    pub fig_ppn: u32,
    /// Per-rank block for the PFS-contrast cells.
    pub pfs_block: u64,
    /// Processes per node for the PFS-contrast cells.
    pub pfs_ppn: u32,
    /// IO500 composite: client nodes, ppn, per-rank block.
    pub io500_nodes: u32,
    pub io500_ppn: u32,
    pub io500_block: u64,
    /// Fault timeline: client nodes, ppn, bytes per rank.
    pub fault_nodes: u32,
    pub fault_ppn: u32,
    pub fault_per_rank: u64,
    /// Checksum-overhead cells: client nodes, ppn, per-rank block.
    pub csum_nodes: u32,
    pub csum_ppn: u32,
    pub csum_block: u64,
    /// Open-loop traffic sweep scale (cluster, window, load axis).
    pub traffic: TrafficParams,
}

/// The CI gate's reduced scale — exactly the workload the serial regress
/// ran: same cells, same seeds, same volumes, so the committed baselines
/// in `results/baselines/` compare unchanged.
pub fn reduced() -> SlateScale {
    SlateScale {
        nodes: REDUCED_NODES.to_vec(),
        repeats: REDUCED_REPEATS,
        fig_block: None,
        fig_ppn: PPN,
        pfs_block: 16 << 20,
        pfs_ppn: PPN,
        io500_nodes: 4,
        io500_ppn: 8,
        io500_block: 16 << 20,
        fault_nodes: 2,
        fault_ppn: 4,
        fault_per_rank: 4 * MIB,
        csum_nodes: 2,
        csum_ppn: 4,
        csum_block: 8 * MIB,
        traffic: TrafficParams::reduced(),
    }
}

/// A miniature of the same slate (every figure, every job kind, tiny
/// volumes) for the schedule-independence tests and CI cross-checks —
/// cheap enough to run at several thread counts in a debug test.
pub fn smoke() -> SlateScale {
    SlateScale {
        nodes: vec![1, 2],
        repeats: 1,
        fig_block: Some(MIB),
        fig_ppn: 4,
        pfs_block: MIB,
        pfs_ppn: 4,
        io500_nodes: 2,
        io500_ppn: 2,
        io500_block: MIB,
        fault_nodes: 2,
        fault_ppn: 2,
        fault_per_rank: MIB,
        csum_nodes: 2,
        csum_ppn: 2,
        csum_block: MIB,
        traffic: TrafficParams::smoke(),
    }
}

/// One job's contribution, tagged with where it lands; reduction keys on
/// these tags, never on completion (or even submission) position.
enum JobOut {
    /// A Figure 1 / Figure 2 sweep cell (`fig` = 1 or 2).
    FigCell { fig: u8, m: Measurement },
    /// One PFS-contrast cell; `kind` indexes [pfs-fpp, pfs-shared,
    /// daos-fpp, daos-shared].
    PfsCell {
        nodes: u32,
        kind: usize,
        write_gib_s: f64,
        read_gib_s: f64,
        revokes: u64,
    },
    /// The IO500 composite's records.
    Io500(Fragment),
    /// The engine-crash timeline (kept whole for the shape checks).
    Fault(FaultTimeline),
    /// One checksum-overhead cell.
    Csum {
        fpp: bool,
        csum: bool,
        write: f64,
        read: f64,
    },
    /// One bit-rot timeline (kept whole for the shape checks).
    Rot(RotTimeline),
    /// One open-loop traffic cell (kept whole for the per-cell checks).
    Traffic(TrafficCell),
}

const PFS_SERIES: [&str; 4] = ["pfs-fpp", "pfs-shared", "daos-fpp", "daos-shared"];

/// Everything one slate run produces: the seven figure reports (wall_secs
/// left at 0.0 — they are fully schedule-independent), the timeline rows
/// the robustness checks need, and the runner's own wall-time
/// accounting (schedule-dependent by nature, reported out-of-band).
pub struct RegressRun {
    pub fig1: BenchReport,
    pub fig2: BenchReport,
    pub pfs: BenchReport,
    pub io500: BenchReport,
    pub fault: BenchReport,
    pub scrub: BenchReport,
    pub traffic: BenchReport,
    /// Fault timelines in submission order, for the shape checks.
    pub fault_rows: Vec<FaultTimeline>,
    /// Rot timelines in submission order, for the shape checks.
    pub rot_rows: Vec<RotTimeline>,
    /// Traffic cells in submission order, for the per-cell checks.
    pub traffic_rows: Vec<TrafficCell>,
    /// Per-job `(label, wall_secs)` in submission order.
    pub timings: Vec<(String, f64)>,
    /// Sum of per-job wall times ≈ what a `--threads 1` run costs.
    pub serial_secs: f64,
    /// Host wall time of the whole slate at the chosen thread count.
    pub elapsed_secs: f64,
    /// Thread count the slate ran with.
    pub threads: usize,
}

impl RegressRun {
    /// The seven figure reports, in the gate's fixed order.
    pub fn reports(&self) -> [&BenchReport; 7] {
        [
            &self.fig1,
            &self.fig2,
            &self.pfs,
            &self.io500,
            &self.fault,
            &self.scrub,
            &self.traffic,
        ]
    }

    /// Mutable view, same order (the `regress` binary stamps wall
    /// times into the fresh artifacts before writing them).
    pub fn reports_mut(&mut self) -> [&mut BenchReport; 7] {
        [
            &mut self.fig1,
            &mut self.fig2,
            &mut self.pfs,
            &mut self.io500,
            &mut self.fault,
            &mut self.scrub,
            &mut self.traffic,
        ]
    }

    /// Serial-equivalent seconds attributed to one figure's jobs, from
    /// the label prefix (`fig1/…`, `pfs/…`, …).
    pub fn figure_serial_secs(&self, prefix: &str) -> f64 {
        self.timings
            .iter()
            .filter(|(label, _)| label.starts_with(prefix))
            .map(|(_, s)| s)
            .sum()
    }
}

/// Build and run the whole regress slate at `scale` across `threads`
/// host threads. Panics (with the offending job's label) if any job
/// panics — the gate must fail loudly, not partially.
pub fn run_regress_slate(scale: &SlateScale, threads: usize) -> RegressRun {
    let mut slate: Slate<'_, JobOut> = Slate::new();

    // Heaviest first: overloaded traffic points and the figure/PFS cells
    // at the largest node counts dominate the gate's critical path.
    for mode in traffic_modes() {
        for &load in scale.traffic.loads.iter().rev() {
            let params = scale.traffic;
            slate.push(format!("traffic/{}/{load}", mode.series()), move || {
                JobOut::Traffic(traffic_point(mode, load, params))
            });
        }
    }
    for &n in scale.nodes.iter().rev() {
        for fig in [1u8, 2u8] {
            let (fpp, seed) = if fig == 1 {
                (true, FIG1_SEED)
            } else {
                (false, FIG2_SEED)
            };
            for point in grid_points(&figure_apis(), &figure_classes(), &[n]) {
                let fig_block = scale.fig_block;
                let fig_ppn = scale.fig_ppn;
                let repeats = scale.repeats;
                slate.push(
                    format!("fig{fig}/{}-{}/{n}n", point.api.name(), point.oclass),
                    move || {
                        let mut params = paper_params(point.api, point.oclass, fpp, fig_ppn);
                        if let Some(b) = fig_block {
                            params.block_size = b;
                        }
                        JobOut::FigCell {
                            fig,
                            m: run_point_with(point, params, seed, repeats),
                        }
                    },
                );
            }
        }
        for (kind, series) in PFS_SERIES.iter().enumerate() {
            let block = scale.pfs_block;
            let ppn = scale.pfs_ppn;
            slate.push(format!("pfs/{series}/{n}n"), move || {
                let fpp = kind % 2 == 0;
                let (rep, revokes) = if kind < 2 {
                    pfs_point(n, fpp, block, ppn)
                } else {
                    (daos_point(n, fpp, block, ppn), 0)
                };
                JobOut::PfsCell {
                    nodes: n,
                    kind,
                    write_gib_s: rep.write_gib_s(),
                    read_gib_s: rep.read_gib_s(),
                    revokes,
                }
            });
        }
    }

    {
        let (n, ppn, block) = (scale.io500_nodes, scale.io500_ppn, scale.io500_block);
        slate.push(format!("io500/{n}n"), move || {
            let mut frag = Fragment::new();
            run_io500_sized(&mut frag, n, ppn, block);
            JobOut::Io500(frag)
        });
    }

    {
        let (n, ppn, per_rank) = (scale.fault_nodes, scale.fault_ppn, scale.fault_per_rank);
        slate.push("fault/RP_2GX", move || {
            JobOut::Fault(fault_timeline(ObjectClass::RP_2GX, n, ppn, per_rank))
        });
    }

    // checksum overhead: fpp × csum grid, same seed per cell as the
    // serial gate (the sim seed is fixed inside csum_overhead_point)
    for fpp in [true, false] {
        for csum in [true, false] {
            let (n, ppn, block) = (scale.csum_nodes, scale.csum_ppn, scale.csum_block);
            slate.push(
                format!(
                    "scrub/csum-{}-{}",
                    if fpp { "easy" } else { "hard" },
                    if csum { "on" } else { "off" }
                ),
                move || {
                    let (write, read) = csum_overhead_point_sized(csum, fpp, n, ppn, block);
                    JobOut::Csum {
                        fpp,
                        csum,
                        write,
                        read,
                    }
                },
            );
        }
    }

    for scrub_mode in [false, true] {
        slate.push(
            format!(
                "scrub/rot-RP_2GX-{}",
                if scrub_mode {
                    "scrubber"
                } else {
                    "client-read"
                }
            ),
            move || {
                JobOut::Rot(rot_timeline(
                    ObjectClass::RP_2GX,
                    scrub_mode,
                    0x5C2B ^ scrub_mode as u64,
                ))
            },
        );
    }

    // ---- run ----------------------------------------------------------
    // simlint: allow(D02) whole-slate wall-time provenance; reported out-of-band, never compared against baselines
    let t0 = std::time::Instant::now();
    let results = slate
        .run(threads)
        .unwrap_or_else(|p| panic!("regress slate {p}"));
    let elapsed_secs = t0.elapsed().as_secs_f64();

    // ---- ordered reduction -------------------------------------------
    let mut run = RegressRun {
        fig1: BenchReport::new("fig1_fpp", FIG1_SEED),
        fig2: BenchReport::new("fig2_shared", FIG2_SEED),
        pfs: BenchReport::new("pfs_contrast", 0x1F5),
        io500: BenchReport::new("io500", 0x10500),
        fault: BenchReport::new("fault_sweep", 0xFA17),
        scrub: BenchReport::new("scrub_sweep", 0x5C2B),
        traffic: BenchReport::new("traffic_sweep", TRAFFIC_SEED),
        fault_rows: Vec::new(),
        rot_rows: Vec::new(),
        traffic_rows: Vec::new(),
        timings: Vec::new(),
        serial_secs: 0.0,
        elapsed_secs,
        threads,
    };
    let top = *scale.nodes.iter().max().expect("non-empty node axis");
    let (mut fig1_ms, mut fig2_ms) = (Vec::new(), Vec::new());
    for job in results {
        run.serial_secs += job.wall_secs;
        run.timings.push((job.label, job.wall_secs));
        match job.value {
            JobOut::FigCell { fig: 1, m } => fig1_ms.push(m),
            JobOut::FigCell { m, .. } => fig2_ms.push(m),
            JobOut::PfsCell {
                nodes,
                kind,
                write_gib_s,
                read_gib_s,
                revokes,
            } => {
                let series = PFS_SERIES[kind];
                run.pfs.record(series, nodes, "write_gib_s", write_gib_s);
                run.pfs.record(series, nodes, "read_gib_s", read_gib_s);
                if kind == 1 {
                    run.pfs
                        .record(series, nodes, "lock_revokes", revokes as f64);
                }
            }
            JobOut::Io500(frag) => frag.replay_into(&mut run.io500),
            JobOut::Fault(t) => {
                record_fault_timeline(&mut run.fault, &t);
                run.fault_rows.push(t);
            }
            JobOut::Csum {
                fpp,
                csum,
                write,
                read,
            } => {
                let label = if fpp {
                    "easy-fpp-1m"
                } else {
                    "hard-shared-64k"
                };
                let suffix = if csum { "on" } else { "off" };
                run.scrub.record(
                    label,
                    scale.csum_nodes,
                    &format!("write_csum_{suffix}"),
                    write,
                );
                run.scrub.record(
                    label,
                    scale.csum_nodes,
                    &format!("read_csum_{suffix}"),
                    read,
                );
            }
            JobOut::Traffic(c) => {
                record_traffic_cell(&mut run.traffic, &c);
                run.traffic_rows.push(c);
            }
            JobOut::Rot(t) => {
                record_rot_timeline(&mut run.scrub, &t);
                run.rot_rows.push(t);
            }
        }
    }
    record_sweep(&mut run.fig1, &fig1_ms, top);
    record_sweep(&mut run.fig2, &fig2_ms, top);
    run.pfs.set_config_hash(config_hash(&paper_cluster(top)));
    run.traffic
        .set_config_hash(config_hash(&traffic_cluster(&scale.traffic, true)));
    run
}
