//! # daos-bench — experiment harness for the paper's evaluation
//!
//! Each binary in `src/bin/` regenerates one figure or table from
//! *DAOS as HPC Storage: Exploring Interfaces* (CLUSTER 2023); this library
//! holds the shared sweep and reporting machinery:
//!
//! * [`ExperimentPoint`] — one (api, object class, client-node count) cell;
//! * [`exec`] — the deterministic parallel job runner: an ordered
//!   [`exec::Slate`] of `(label, seeded closure)` jobs fanned across host
//!   threads with results reduced **in submission order**, so every
//!   artifact is byte-identical at any thread count (`--threads` /
//!   `BENCH_THREADS`; `1` = serial);
//! * [`run_sweep`] — executes every point as slate jobs (one
//!   deterministic `Sim` per point — simulations are independent, so
//!   this is the embarrassingly parallel axis);
//! * [`slate`] — the `regress` gate's full job slate (every reduced
//!   figure decomposed into independent cells) plus its per-job
//!   wall-time accounting;
//! * [`figures`] — scale-parameterized runners for every figure, shared
//!   between the full binaries and the reduced-scale `regress` harness;
//! * [`Reporter`] — per-binary ledger: records metrics into a
//!   schema-versioned [`report::BenchReport`] (written as
//!   `BENCH_<name>.json`), counts PASS/FAIL shape checks, and gates the
//!   process exit code so every binary fails loudly in CI;
//! * [`baseline`] — tolerance-band comparison against committed baselines;
//! * [`invariants`] — the paper's R1–R5 qualitative results as
//!   machine-checked predicates;
//! * CSV emission and a terminal ASCII chart so the figure's *shape* is
//!   visible without leaving the shell.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;

use daos_core::ClusterConfig;
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed, IorParams, IorReport};
use daos_placement::ObjectClass;
use daos_sim::Sim;

pub mod baseline;
pub mod exec;
pub mod figures;
pub mod invariants;
pub mod report;
pub mod slate;
pub mod traffic;

use report::BenchReport;

/// One cell of a figure: a full IOR run at one scale.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentPoint {
    pub api: Api,
    pub oclass: ObjectClass,
    pub client_nodes: u32,
}

/// A measured cell.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub point: ExperimentPoint,
    pub report: IorReport,
}

impl Measurement {
    /// Series label as it would appear in the paper's legend.
    pub fn series(&self) -> String {
        format!("{}-{}", self.point.api.name(), self.point.oclass)
    }
}

/// The paper's testbed parameters for one sweep point.
pub fn paper_cluster(client_nodes: u32) -> ClusterConfig {
    ClusterConfig::nextgenio(client_nodes)
}

/// The paper's IOR parameters (bulk I/O: 1 MiB transfers).
pub fn paper_params(api: Api, oclass: ObjectClass, fpp: bool, ppn: u32) -> IorParams {
    let mut p = IorParams::paper_default(api, oclass, fpp, ppn);
    p.block_size = 32 << 20;
    p
}

/// Execute one point in a fresh simulation (deterministic per point);
/// phase times are averaged over `repeats` placements (distinct seeds ->
/// distinct placements, like IOR's `-i` iterations in the paper's runs).
pub fn run_point(
    point: ExperimentPoint,
    fpp: bool,
    ppn: u32,
    seed: u64,
    repeats: u64,
) -> Measurement {
    run_point_with(
        point,
        paper_params(point.api, point.oclass, fpp, ppn),
        seed,
        repeats,
    )
}

/// [`run_point`] with explicit IOR parameters: the figure cells use
/// [`paper_params`]; the determinism regression test keeps the exact
/// same machinery (salted testbed, per-repeat seed derivation) at a
/// smaller I/O volume.
pub fn run_point_with(
    point: ExperimentPoint,
    params: IorParams,
    seed: u64,
    repeats: u64,
) -> Measurement {
    run_point_in(
        paper_cluster(point.client_nodes),
        point,
        params,
        seed,
        repeats,
    )
}

/// [`run_point_with`] on an explicit testbed: the paper-figure cells use
/// [`paper_cluster`]; the beyond-paper scale sweep weak-scales the
/// server side alongside the client axis.
pub fn run_point_in(
    cluster: ClusterConfig,
    point: ExperimentPoint,
    params: IorParams,
    seed: u64,
    repeats: u64,
) -> Measurement {
    let mut acc: Option<IorReport> = None;
    for it in 0..repeats {
        let mut sim = Sim::new(seed ^ ((point.client_nodes as u64) << 32) ^ (it << 56));
        let report = sim.block_on(move |sim| async move {
            let env = DaosTestbed::setup_salted(
                &sim,
                cluster,
                DfsConfig::default(),
                DfuseConfig::default(),
                it,
            )
            .await
            .expect("testbed setup");
            run(&sim, &env, params).await.expect("ior run")
        });
        acc = Some(match acc {
            None => report,
            Some(a) => IorReport {
                write_time: a.write_time + report.write_time,
                read_time: a.read_time + report.read_time,
                ..a
            },
        });
    }
    let mut report = acc.unwrap();
    report.write_time = report.write_time / repeats;
    report.read_time = report.read_time / repeats;
    Measurement { point, report }
}

/// Run every point as independent jobs on the slate executor
/// ([`exec::Slate`]), parallel across host threads, reduced in
/// submission order — output is byte-identical at any thread count.
pub fn run_sweep(
    points: Vec<ExperimentPoint>,
    fpp: bool,
    ppn: u32,
    seed: u64,
    repeats: u64,
) -> Vec<Measurement> {
    run_sweep_threads(points, fpp, ppn, seed, repeats, exec::threads())
}

/// [`run_sweep`] with an explicit thread count (the schedule-independence
/// tests pin 1, 2 and 8; binaries resolve [`exec::threads`]).
pub fn run_sweep_threads(
    points: Vec<ExperimentPoint>,
    fpp: bool,
    ppn: u32,
    seed: u64,
    repeats: u64,
    threads: usize,
) -> Vec<Measurement> {
    let mut slate = exec::Slate::new();
    for point in points {
        slate.push(
            format!(
                "{}-{}/{}n",
                point.api.name(),
                point.oclass,
                point.client_nodes
            ),
            move || run_point(point, fpp, ppn, seed, repeats),
        );
    }
    slate
        .run(threads)
        .unwrap_or_else(|p| panic!("sweep {p}"))
        .into_iter()
        .map(|r| r.value)
        .collect()
}

/// Emit a figure as CSV: `series,client_nodes,write_gib_s,read_gib_s`.
pub fn print_csv(title: &str, ms: &[Measurement]) {
    println!("# {title}");
    println!("series,client_nodes,write_gib_s,read_gib_s");
    for m in ms {
        println!(
            "{},{},{:.3},{:.3}",
            m.series(),
            m.point.client_nodes,
            m.report.write_gib_s(),
            m.report.read_gib_s()
        );
    }
}

/// Group measurements into series -> (client_nodes -> bandwidth).
pub fn series_table(ms: &[Measurement], read: bool) -> BTreeMap<String, BTreeMap<u32, f64>> {
    let mut out: BTreeMap<String, BTreeMap<u32, f64>> = BTreeMap::new();
    for m in ms {
        let bw = if read {
            m.report.read_gib_s()
        } else {
            m.report.write_gib_s()
        };
        out.entry(m.series())
            .or_default()
            .insert(m.point.client_nodes, bw);
    }
    out
}

/// Render a rough ASCII chart (one row per series per scale).
pub fn print_ascii_chart(title: &str, ms: &[Measurement], read: bool) {
    let table = series_table(ms, read);
    let max = table
        .values()
        .flat_map(|s| s.values())
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-9);
    println!("\n== {title} ({}) ==", if read { "read" } else { "write" });
    for (series, pts) in &table {
        println!("{series}");
        for (nodes, bw) in pts {
            let bar = "#".repeat(((bw / max) * 50.0).round() as usize);
            println!("  {nodes:>3} nodes | {bar:<50} {bw:7.2} GiB/s");
        }
    }
}

/// Per-binary reporting ledger: metrics accumulate into a
/// [`BenchReport`], shape checks print PASS/FAIL lines, and [`finish`]
/// writes `BENCH_<name>.json` and turns any failed check into a nonzero
/// exit — every benchmark binary gates CI through this one path.
///
/// [`finish`]: Reporter::finish
pub struct Reporter {
    report: BenchReport,
    failed: u64,
    total_checks: u64,
    start: std::time::Instant,
}

impl Reporter {
    /// New ledger for the benchmark `name`, stamped with its root seed.
    pub fn new(name: &str, seed: u64) -> Reporter {
        Reporter {
            report: BenchReport::new(name, seed),
            failed: 0,
            total_checks: 0,
            // simlint: allow(D02) wall-time provenance stamp for BENCH_<name>.json; never feeds back into the simulation
            start: std::time::Instant::now(),
        }
    }

    /// The report being accumulated (figure runners record into this).
    pub fn report_mut(&mut self) -> &mut BenchReport {
        &mut self.report
    }

    /// Record one metric value directly.
    pub fn record(&mut self, series: &str, scale: u32, metric: &str, value: f64) {
        self.report.record(series, scale, metric, value);
    }

    /// Shape assertion against the paper's qualitative results; prints
    /// PASS/FAIL rather than panicking, and counts failures so
    /// [`Reporter::finish`] can gate CI on them.
    pub fn check(&mut self, label: &str, ok: bool) {
        self.total_checks += 1;
        if !ok {
            self.failed += 1;
        }
        println!("[{}] {label}", if ok { "PASS" } else { "FAIL" });
    }

    /// Number of failed checks so far.
    pub fn failures(&self) -> u64 {
        self.failed
    }

    /// Stamp the wall time and hand back the report (used by `regress`,
    /// which aggregates several reports before deciding its exit code).
    pub fn into_report(mut self) -> BenchReport {
        self.report.wall_secs = self.start.elapsed().as_secs_f64();
        self.report
    }

    /// Terminate the binary: write `BENCH_<name>.json`, then exit 0 if
    /// every [`Reporter::check`] passed, 1 otherwise.
    ///
    /// The JSON lands in `$DAOS_BENCH_OUT` if set, else `results/` if that
    /// directory exists (i.e. when run from the repo root), else nowhere.
    pub fn finish(self) -> ! {
        let failed = self.failed;
        let report = self.into_report();
        if let Some(dir) = json_out_dir() {
            match report.write_to(&dir) {
                Ok(path) => eprintln!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write BENCH_{}.json: {e}", report.name);
                    std::process::exit(1);
                }
            }
        }
        if failed > 0 {
            eprintln!("{failed} check(s) failed");
            std::process::exit(1);
        }
        std::process::exit(0);
    }
}

/// Where benchmark binaries drop their `BENCH_<name>.json`.
pub fn json_out_dir() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("DAOS_BENCH_OUT") {
        if dir.is_empty() {
            return None; // explicit opt-out
        }
        return Some(PathBuf::from(dir));
    }
    let results = PathBuf::from("results");
    results.is_dir().then_some(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_sim::time::SimDuration;

    fn meas(api: Api, class: ObjectClass, nodes: u32, wr: f64, rd: f64) -> Measurement {
        let gib = (1u64 << 30) as f64;
        Measurement {
            point: ExperimentPoint {
                api,
                oclass: class,
                client_nodes: nodes,
            },
            report: IorReport {
                ranks: nodes * 16,
                client_nodes: nodes,
                total_bytes: 1 << 30,
                bytes_written: 1 << 30,
                bytes_read: 1 << 30,
                write_time: SimDuration::from_secs_f64(1.0 / wr * (1u64 << 30) as f64 / gib),
                read_time: SimDuration::from_secs_f64(1.0 / rd * (1u64 << 30) as f64 / gib),
            },
        }
    }

    #[test]
    fn series_labels_match_paper_legend() {
        let m = meas(Api::Dfs, ObjectClass::S2, 4, 10.0, 20.0);
        assert_eq!(m.series(), "DFS-S2");
        let m = meas(Api::Hdf5, ObjectClass::SX, 4, 1.0, 1.0);
        assert_eq!(m.series(), "HDF5-SX");
    }

    #[test]
    fn series_table_groups_and_selects_phase() {
        let ms = vec![
            meas(Api::Dfs, ObjectClass::S1, 1, 5.0, 9.0),
            meas(Api::Dfs, ObjectClass::S1, 2, 10.0, 18.0),
            meas(Api::Dfs, ObjectClass::S2, 1, 6.0, 11.0),
        ];
        let wr = series_table(&ms, false);
        assert_eq!(wr.len(), 2);
        assert!((wr["DFS-S1"][&2] - 10.0).abs() < 0.1);
        let rd = series_table(&ms, true);
        assert!((rd["DFS-S2"][&1] - 11.0).abs() < 0.1);
    }

    #[test]
    fn paper_params_are_bulk_io() {
        let p = paper_params(Api::Dfs, ObjectClass::S2, true, 16);
        assert_eq!(p.transfer_size, 1 << 20);
        assert_eq!(p.block_size % p.transfer_size, 0);
        assert!(p.file_per_process);
    }

    #[test]
    fn reporter_counts_failures_and_records() {
        let mut rep = Reporter::new("unit", 7);
        rep.check("passes", true);
        rep.check("fails", false);
        rep.record("s", 4, "write_gib_s", 12.5);
        assert_eq!(rep.failures(), 1);
        let report = rep.into_report();
        assert_eq!(report.get("s", 4, "write_gib_s"), Some(12.5));
        assert_eq!(report.name, "unit");
        assert_eq!(report.seed, 7);
    }
}
