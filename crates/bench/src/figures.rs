//! Scale-parameterized figure runners, shared between the full-scale
//! figure binaries and the reduced-scale `regress` harness.
//!
//! Each runner executes one experiment at a caller-chosen scale, records
//! its cells into any [`Record`] sink (a [`crate::report::BenchReport`]
//! directly, or a [`crate::report::Fragment`] from a parallel slate
//! job), and returns the raw measurements so
//! binaries can keep their CSV/ASCII-chart output. Seeds are fixed per
//! figure, so a reduced sweep's cells at a given node count are produced
//! by the *same* simulations as the full figure's cells there (modulo the
//! repeat count used for averaging).

use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient, RetryPolicy};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{
    mdtest, run, run_pfs, Api, DaosTestbed, IorParams, IorReport, MdBackend, MdtestReport,
};
use daos_pfs::{Pfs, PfsConfig};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::fault::FaultAction;
use daos_sim::time::SimDuration;
use daos_sim::units::{gib_per_sec, KIB, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

use crate::exec::Slate;
use crate::report::{config_hash, Record};
use crate::{paper_cluster, paper_params, run_sweep, ExperimentPoint, Measurement};

/// The figure binaries' full scale axis.
pub const FULL_NODES: [u32; 5] = [1, 2, 4, 8, 16];
/// The reduced CI axis: the two scales every R1–R5 invariant reads.
pub const REDUCED_NODES: [u32; 2] = [1, 16];
/// Averaged placements per point at full scale (IOR `-i`).
pub const FULL_REPEATS: u64 = 5;
/// Placements per point at reduced scale. One is enough for the CI
/// gate: the sim is deterministic, so repeats only widen the placement
/// average, and the tolerance bands absorb that difference.
pub const REDUCED_REPEATS: u64 = 1;

/// Processes per client node in every figure sweep (the paper's layout).
pub const PPN: u32 = 16;

/// Repeat count for the standalone sweep binaries (`oclass_sweep`,
/// `daos_api`, `calibrate`, …): the `BENCH_REPEATS` environment variable
/// overrides — CI smoke runs set `BENCH_REPEATS=1` to get
/// [`REDUCED_REPEATS`]-scale runs consistently — else [`FULL_REPEATS`].
pub fn sweep_repeats() -> u64 {
    std::env::var("BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(FULL_REPEATS)
}

/// Cross product of the paper's interface × object-class grid.
pub fn grid_points(apis: &[Api], classes: &[ObjectClass], nodes: &[u32]) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for &api in apis {
        for &oclass in classes {
            for &n in nodes {
                points.push(ExperimentPoint {
                    api,
                    oclass,
                    client_nodes: n,
                });
            }
        }
    }
    points
}

/// The three interfaces of Figures 1 and 2.
pub fn figure_apis() -> [Api; 3] {
    [Api::Dfs, Api::Mpiio { collective: false }, Api::Hdf5]
}

/// The three object classes of Figures 1 and 2.
pub fn figure_classes() -> [ObjectClass; 3] {
    [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX]
}

pub(crate) fn record_sweep(report: &mut impl Record, ms: &[Measurement], top_nodes: u32) {
    report.set_config_hash(config_hash(&paper_cluster(top_nodes)));
    for m in ms {
        report.record(
            &m.series(),
            m.point.client_nodes,
            "write_gib_s",
            m.report.write_gib_s(),
        );
        report.record(
            &m.series(),
            m.point.client_nodes,
            "read_gib_s",
            m.report.read_gib_s(),
        );
    }
}

/// Figure 1's root seed (each cell salts it with scale and repeat).
pub const FIG1_SEED: u64 = 0xF161;
/// Figure 2's root seed.
pub const FIG2_SEED: u64 = 0xF162;

/// Figure 1 (IOR file-per-process) over the given scale axis.
pub fn run_fig1(report: &mut impl Record, nodes: &[u32], repeats: u64) -> Vec<Measurement> {
    let points = grid_points(&figure_apis(), &figure_classes(), nodes);
    let ms = run_sweep(points, true, PPN, FIG1_SEED, repeats);
    record_sweep(report, &ms, *nodes.iter().max().unwrap());
    ms
}

/// Figure 2 (IOR shared-file) over the given scale axis.
pub fn run_fig2(report: &mut impl Record, nodes: &[u32], repeats: u64) -> Vec<Measurement> {
    let points = grid_points(&figure_apis(), &figure_classes(), nodes);
    let ms = run_sweep(points, false, PPN, FIG2_SEED, repeats);
    record_sweep(report, &ms, *nodes.iter().max().unwrap());
    ms
}

// ---------------------------------------------------------------------
// Beyond the paper's scale: 64-512 client nodes
// ---------------------------------------------------------------------

/// Scale axis past the paper's testbed (its figures stop at 16 client
/// nodes / 8 servers).
pub const SCALE_NODES: [u32; 4] = [64, 128, 256, 512];
/// Root seed for the beyond-paper scale sweep.
pub const SCALE_SEED: u64 = 0x5CA1E;
/// Per-rank block at scale. The figure reads per-node bandwidth *trends*
/// (crossover, asymptote), which converge well below the paper's
/// 32 MiB per rank; weak-scaling the aggregate with a 4 MiB per-rank
/// block keeps 512 nodes x 16 ppn tractable.
pub const SCALE_BLOCK: u64 = 4 << 20;

/// Weak-scaled testbed past the paper: hold the paper's 2:1
/// client:server node ratio (16 clients on 8 servers) as the client axis
/// grows, so every engine stays in the per-engine load regime the model
/// was calibrated in. A fixed 8-server testbed under 512 client nodes
/// measures nothing but unbounded queueing — every RPC deadline is
/// reachable — which is a traffic_sweep result, not a scaling one.
pub fn scale_cluster(client_nodes: u32) -> ClusterConfig {
    let mut c = paper_cluster(client_nodes);
    c.server_nodes = (client_nodes / 2).max(8);
    c
}

/// The DFS scale grid past the paper's reach: S2 (the small-scale write
/// leader) vs SX (the contended-write leader) locates the R2 crossover;
/// fpp vs shared locates the R5 shared-file asymptote. One slate job per
/// cell, heaviest (largest node count) first; reduction order is the
/// submission order so reports are byte-identical at any thread count.
///
/// The shared-file column runs SX only: S2 stripes one object over two
/// targets, so a shared S2 file at thousands of ranks is a fixed-size
/// funnel whose queueing delay grows with the client count until any
/// finite RPC deadline trips — the same reason the paper's own
/// shared-file runs use SX.
pub fn run_scale_sweep(
    report: &mut impl Record,
    nodes: &[u32],
    threads: usize,
    repeats: u64,
) -> Vec<(String, Measurement)> {
    let mut slate = Slate::new();
    let mut order = Vec::new();
    for &n in nodes.iter().rev() {
        for fpp in [true, false] {
            for oclass in [ObjectClass::S2, ObjectClass::SX] {
                if !fpp && oclass == ObjectClass::S2 {
                    continue;
                }
                let point = ExperimentPoint {
                    api: Api::Dfs,
                    oclass,
                    client_nodes: n,
                };
                let suffix = if fpp { "fpp" } else { "shared" };
                order.push(suffix);
                slate.push(format!("scale/DFS-{oclass}-{suffix}/{n}n"), move || {
                    let mut p = paper_params(Api::Dfs, oclass, fpp, PPN);
                    p.block_size = SCALE_BLOCK;
                    crate::run_point_in(scale_cluster(n), point, p, SCALE_SEED, repeats)
                });
            }
        }
    }
    let cells = slate
        .run(threads)
        .unwrap_or_else(|p| panic!("scale sweep {p}"));
    report.set_config_hash(config_hash(&scale_cluster(
        *nodes.iter().max().expect("non-empty scale axis"),
    )));
    let mut out = Vec::new();
    for (cell, suffix) in cells.into_iter().zip(order) {
        let m = cell.value;
        let series = format!("{}-{suffix}", m.series());
        report.record(
            &series,
            m.point.client_nodes,
            "write_gib_s",
            m.report.write_gib_s(),
        );
        report.record(
            &series,
            m.point.client_nodes,
            "read_gib_s",
            m.report.read_gib_s(),
        );
        out.push((series, m));
    }
    out
}

// ---------------------------------------------------------------------
// PFS contrast
// ---------------------------------------------------------------------

/// One scale point of the "stark contrast" experiment.
pub struct PfsContrastRow {
    pub nodes: u32,
    pub pfs_fpp: IorReport,
    pub pfs_shared: IorReport,
    /// LDLM extent-lock revokes during the shared PFS run.
    pub revokes: u64,
    pub daos_fpp: IorReport,
    pub daos_shared: IorReport,
}

impl PfsContrastRow {
    /// Shared/FPP write ratios: (pfs, daos). 1.0 = no shared-file penalty.
    pub fn ratios(&self) -> (f64, f64) {
        (
            self.pfs_shared.write_gib_s() / self.pfs_fpp.write_gib_s(),
            self.daos_shared.write_gib_s() / self.daos_fpp.write_gib_s(),
        )
    }
}

/// Per-rank block size of the contrast cells (lock ping-pong makes big
/// runs slow); smoke-scale runs pass something smaller.
pub const PFS_BLOCK: u64 = 16 << 20;

/// One PFS cell: IOR on the Lustre-like filesystem, returning the run
/// report and the LDLM extent-lock revoke count.
pub(crate) fn pfs_point(nodes: u32, fpp: bool, block: u64, ppn: u32) -> (IorReport, u64) {
    let mut sim = Sim::new(0x1F5 ^ nodes as u64);
    sim.block_on(move |sim| async move {
        let fs = Pfs::build(PfsConfig {
            client_nodes: nodes,
            stripe_count: 4,
            ..Default::default()
        });
        let mut p = paper_params(Api::Posix { il: false }, ObjectClass::S1, fpp, ppn);
        p.block_size = block;
        let r = run_pfs(&sim, &fs, p).await.expect("pfs run");
        (r, fs.stats().revokes)
    })
}

/// One DAOS cell of the contrast experiment.
pub(crate) fn daos_point(nodes: u32, fpp: bool, block: u64, ppn: u32) -> IorReport {
    let mut sim = Sim::new(0x1F6 ^ nodes as u64);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(nodes),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        let mut p = paper_params(Api::Dfs, ObjectClass::SX, fpp, ppn);
        p.block_size = block;
        run(&sim, &env, p).await.expect("daos run")
    })
}

/// The same IOR workloads on DAOS and on the Lustre-like PFS, FPP and
/// shared, at each scale. Rows run as independent jobs on the shared
/// slate executor (four seeded sims per scale, one per cell).
pub fn run_pfs_contrast(report: &mut impl Record, nodes: &[u32]) -> Vec<PfsContrastRow> {
    run_pfs_contrast_sized(report, nodes, crate::exec::threads(), PFS_BLOCK, PPN)
}

/// [`run_pfs_contrast`] with explicit thread count, block size and ppn —
/// the schedule-independence tests drive this directly at several thread
/// counts and a smoke scale.
pub fn run_pfs_contrast_sized(
    report: &mut impl Record,
    nodes: &[u32],
    threads: usize,
    block: u64,
    ppn: u32,
) -> Vec<PfsContrastRow> {
    // per scale, in submission order: pfs-fpp, pfs-shared, daos-fpp,
    // daos-shared — the reducer below reassembles rows in chunks of 4
    let mut slate = Slate::new();
    for &n in nodes {
        for fpp in [true, false] {
            slate.push(
                format!(
                    "pfs_contrast/pfs-{}/{n}n",
                    if fpp { "fpp" } else { "shared" }
                ),
                move || pfs_point(n, fpp, block, ppn),
            );
        }
        for fpp in [true, false] {
            slate.push(
                format!(
                    "pfs_contrast/daos-{}/{n}n",
                    if fpp { "fpp" } else { "shared" }
                ),
                move || {
                    let r = daos_point(n, fpp, block, ppn);
                    (r, 0u64)
                },
            );
        }
    }
    let cells = slate
        .run(threads)
        .unwrap_or_else(|p| panic!("pfs contrast {p}"));

    let mut rows = Vec::new();
    for (&n, chunk) in nodes.iter().zip(cells.chunks_exact(4)) {
        let row = PfsContrastRow {
            nodes: n,
            pfs_fpp: chunk[0].value.0,
            pfs_shared: chunk[1].value.0,
            revokes: chunk[1].value.1,
            daos_fpp: chunk[2].value.0,
            daos_shared: chunk[3].value.0,
        };
        for (series, rep) in [
            ("pfs-fpp", &row.pfs_fpp),
            ("pfs-shared", &row.pfs_shared),
            ("daos-fpp", &row.daos_fpp),
            ("daos-shared", &row.daos_shared),
        ] {
            report.record(series, n, "write_gib_s", rep.write_gib_s());
            report.record(series, n, "read_gib_s", rep.read_gib_s());
        }
        report.record("pfs-shared", n, "lock_revokes", row.revokes as f64);
        rows.push(row);
    }
    report.set_config_hash(config_hash(&paper_cluster(*nodes.iter().max().unwrap())));
    rows
}

// ---------------------------------------------------------------------
// IO500-style composite
// ---------------------------------------------------------------------

/// One IO500-style run: easy/hard IOR phases, mdtest, geometric means.
pub struct Io500Result {
    pub easy: IorReport,
    pub hard: IorReport,
    pub md: MdtestReport,
    pub bw_score: f64,
    pub md_score: f64,
    pub total: f64,
}

/// ior-easy + ior-hard + mdtest-easy, combined with the IO500 geometric
/// mean, at one scale.
pub fn run_io500(report: &mut impl Record, nodes: u32, ppn: u32) -> Io500Result {
    run_io500_sized(report, nodes, ppn, 16 << 20)
}

/// [`run_io500`] with an explicit per-rank block size (smoke scale).
pub fn run_io500_sized(report: &mut impl Record, nodes: u32, ppn: u32, block: u64) -> Io500Result {
    let mut sim = Sim::new(0x10500);
    let (easy, hard, md) = sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(nodes),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        // ior-easy: file-per-process, free choice of class -> S2
        let easy = run(&sim, &env, {
            let mut p = paper_params(Api::Dfs, ObjectClass::S2, true, ppn);
            p.block_size = block;
            p
        })
        .await
        .expect("ior easy");
        // ior-hard: single shared file -> SX
        let hard = run(&sim, &env, {
            let mut p = paper_params(Api::Dfs, ObjectClass::SX, false, ppn);
            p.block_size = block;
            p
        })
        .await
        .expect("ior hard");
        // mdtest-easy through the native DFS API
        let md = mdtest(&sim, &env, MdBackend::Dfs, ppn, 48)
            .await
            .expect("mdtest");
        (easy, hard, md)
    });

    let geo = |vals: &[f64]| (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
    let bw_score = geo(&[
        easy.write_gib_s(),
        easy.read_gib_s(),
        hard.write_gib_s(),
        hard.read_gib_s(),
    ]);
    let md_score = geo(&[
        md.creates_per_s() / 1000.0,
        md.stats_per_s() / 1000.0,
        md.unlinks_per_s() / 1000.0,
    ]);
    let total = (bw_score * md_score).sqrt();

    report.set_config_hash(config_hash(&paper_cluster(nodes)));
    report.record("ior-easy", nodes, "write_gib_s", easy.write_gib_s());
    report.record("ior-easy", nodes, "read_gib_s", easy.read_gib_s());
    report.record("ior-hard", nodes, "write_gib_s", hard.write_gib_s());
    report.record("ior-hard", nodes, "read_gib_s", hard.read_gib_s());
    report.record("mdtest", nodes, "create_kiops", md.creates_per_s() / 1000.0);
    report.record("mdtest", nodes, "stat_kiops", md.stats_per_s() / 1000.0);
    report.record("mdtest", nodes, "unlink_kiops", md.unlinks_per_s() / 1000.0);
    report.record("score", nodes, "bw_gib_s", bw_score);
    report.record("score", nodes, "md_kiops", md_score);
    report.record("score", nodes, "io500", total);

    Io500Result {
        easy,
        hard,
        md,
        bw_score,
        md_score,
        total,
    }
}

// ---------------------------------------------------------------------
// Fault timeline (engine crash / exclude / rebuild / reintegrate)
// ---------------------------------------------------------------------

/// Engine to kill in the fault timeline: outside the pool-service replica
/// set (engines 0..3 on the paper testbed).
pub const FAULT_VICTIM: usize = 5;

/// Bandwidths along the failure timeline, GiB/s.
pub struct FaultTimeline {
    pub class: ObjectClass,
    pub client_nodes: u32,
    pub write: f64,
    pub healthy: f64,
    pub during: f64,
    pub rebuilt: f64,
    pub reintegrated: f64,
    pub map_version: u32,
    pub chunks_repaired: u64,
}

/// Run the engine-failure timeline for one object class: healthy write +
/// read, crash, degraded reads, rebuild, reintegration.
pub fn fault_timeline(class: ObjectClass, nodes: u32, ppn: u32, per_rank: u64) -> FaultTimeline {
    let mut sim = Sim::new(0xFA17);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, paper_cluster(nodes));
        let ranks = nodes * ppn;
        let clients: Vec<_> = (0..nodes)
            .map(|n| {
                DaosClient::new(Rc::clone(&cluster), n).with_retry(RetryPolicy {
                    // above healthy queueing delay at this load, small
                    // enough that a dead engine doesn't stall the sweep
                    rpc_timeout: SimDuration::from_ms(50),
                    base_backoff: SimDuration::from_ms(1),
                    max_backoff: SimDuration::from_ms(16),
                    max_attempts: 40,
                    ..RetryPolicy::default()
                })
            })
            .collect();
        let pool = clients[0].connect(&sim).await.expect("connect");
        pool.create_container(&sim, 1).await.expect("container");
        // a container handle per client node so traffic originates from
        // every client rail, as in the IOR runs
        let mut conts = Vec::new();
        for c in &clients {
            let p = c.connect(&sim).await.expect("connect");
            conts.push(p.open_container(&sim, 1).await.expect("open"));
        }
        let arrays: Vec<_> = (0..ranks)
            .map(|r| {
                conts[(r / ppn) as usize]
                    .object(ObjectId::new(0xFA, r as u64), class)
                    .array(MIB)
            })
            .collect();

        // healthy write
        let t0 = sim.now();
        let futs: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(r, a)| {
                let a = a.clone();
                let sim = sim.clone();
                async move {
                    for k in 0..per_rank / MIB {
                        a.write(&sim, k * MIB, Payload::pattern(r as u64, MIB))
                            .await
                            .expect("write");
                    }
                }
            })
            .collect();
        join_all(&sim, futs).await;
        let write = gib_per_sec(ranks as u64 * per_rank, (sim.now() - t0).as_secs_f64());

        let read_all = |sim: Sim, arrays: Vec<daos_core::ArrayHandle>| async move {
            let t0 = sim.now();
            let futs: Vec<_> = arrays
                .into_iter()
                .map(|a| {
                    let sim = sim.clone();
                    async move {
                        for k in 0..per_rank / MIB {
                            a.read(&sim, k * MIB, MIB).await.expect("read");
                        }
                    }
                })
                .collect();
            join_all(&sim, futs).await;
            gib_per_sec(ranks as u64 * per_rank, (sim.now() - t0).as_secs_f64())
        };

        let healthy = read_all(sim.clone(), arrays.clone()).await;

        // the engine dies; reads immediately after ride timeouts, replica
        // failover / EC reconstruction, then the heartbeat exclusion
        cluster.apply_fault(&sim, FaultAction::Crash { node: FAULT_VICTIM });
        let during = read_all(sim.clone(), arrays.clone()).await;

        // wait for the exclusion to commit and the rebuild to drain
        while cluster.pool_map().version() == 1 {
            clients[0].refresh_pool_map(&sim).await;
            sim.sleep_ms(5).await;
        }
        cluster.quiesce_rebuild(&sim).await;
        let rebuilt = read_all(sim.clone(), arrays.clone()).await;

        // bring the engine back and reintegrate its targets
        cluster.apply_fault(&sim, FaultAction::Restart { node: FAULT_VICTIM });
        let tpe = cluster.cfg.targets_per_engine;
        let targets: Vec<u32> =
            (FAULT_VICTIM as u32 * tpe..(FAULT_VICTIM as u32 + 1) * tpe).collect();
        clients[0]
            .control(&sim, daos_core::Request::PoolReintegrate { targets })
            .await
            .expect("reintegrate");
        clients[0].refresh_pool_map(&sim).await;
        cluster.quiesce_rebuild(&sim).await;
        let reintegrated = read_all(sim.clone(), arrays).await;
        let map_version = cluster.pool_map().version();

        FaultTimeline {
            class,
            client_nodes: nodes,
            write,
            healthy,
            during,
            rebuilt,
            reintegrated,
            map_version,
            chunks_repaired: cluster.rebuild_stats().chunks_repaired,
        }
    })
}

/// Record one fault timeline into a report (series = object class).
pub fn record_fault_timeline(report: &mut impl Record, t: &FaultTimeline) {
    let s = t.class.to_string();
    let n = t.client_nodes;
    report.record(&s, n, "write_gib_s", t.write);
    report.record(&s, n, "read_healthy", t.healthy);
    report.record(&s, n, "read_during_failure", t.during);
    report.record(&s, n, "read_after_rebuild", t.rebuilt);
    report.record(&s, n, "read_after_reintegration", t.reintegrated);
    report.record(&s, n, "map_version", t.map_version as f64);
    report.record(&s, n, "chunks_repaired", t.chunks_repaired as f64);
}

/// The timeline shape checks every fault-sweep run must satisfy,
/// against a shared [`crate::Reporter`] so full and reduced runs gate
/// identically.
pub fn check_fault_timeline(rep: &mut crate::Reporter, t: &FaultTimeline) {
    rep.check(
        &format!(
            "{}: failure detected, exclusion committed, data repaired",
            t.class
        ),
        t.map_version >= 2 && t.chunks_repaired > 0,
    );
    rep.check(
        &format!(
            "{}: reads survive the failure window (degraded vs healthy)",
            t.class
        ),
        t.during > 0.0 && t.during < t.healthy,
    );
    rep.check(
        &format!(
            "{}: post-rebuild bandwidth recovers to >60% of healthy",
            t.class
        ),
        t.rebuilt > 0.6 * t.healthy,
    );
    rep.check(
        &format!(
            "{}: reintegration restores >60% of healthy bandwidth",
            t.class
        ),
        t.reintegrated > 0.6 * t.healthy,
    );
}

// ---------------------------------------------------------------------
// Integrity timeline (checksum overhead + bit-rot detection)
// ---------------------------------------------------------------------

/// One IOR run (easy = file-per-process 1 MiB, hard = shared 64 KiB)
/// with the checksum engine on or off; scrubber disabled so the ratio
/// isolates the verify-on-write / csum-on-fetch cost. Returns
/// (write GiB/s, read GiB/s).
pub fn csum_overhead_point(csum: bool, fpp: bool, nodes: u32, ppn: u32) -> (f64, f64) {
    csum_overhead_point_sized(csum, fpp, nodes, ppn, 8 * MIB)
}

/// [`csum_overhead_point`] with an explicit per-rank block (smoke scale).
pub fn csum_overhead_point_sized(
    csum: bool,
    fpp: bool,
    nodes: u32,
    ppn: u32,
    block: u64,
) -> (f64, f64) {
    let mut sim = Sim::new(0x5C2B);
    sim.block_on(move |sim| async move {
        let mut cfg = paper_cluster(nodes);
        cfg.engine.vos.csum_enabled = csum;
        cfg.engine.scrub_interval = None;
        let env = DaosTestbed::setup(&sim, cfg, DfsConfig::default(), DfuseConfig::default())
            .await
            .expect("testbed");
        let mut p = IorParams::paper_default(Api::Dfs, ObjectClass::S2, fpp, ppn);
        p.block_size = block;
        if !fpp {
            p.transfer_size = 64 * KIB;
        }
        let r = run(&sim, &env, p).await.expect("ior");
        (r.write_gib_s(), r.read_gib_s())
    })
}

/// One rot-injection timeline measurement.
pub struct RotTimeline {
    pub class: ObjectClass,
    pub mode: &'static str,
    pub rot_extents: u64,
    pub detect_ms: f64,
    pub reported: u64,
    pub repairs_ok: u64,
    /// Every byte read back equal to what was written.
    pub equal: bool,
    /// The rotted target verifies clean after repairs (scrub mode only:
    /// client-triggered repair only heals the copies reads chose).
    pub clean: bool,
}

/// Write 2 MiB at full redundancy, rot every extent on the busiest
/// target, then detect either through a client read (`scrub = false`) or
/// by leaving the cluster idle so only the background scrubber can find
/// it (`scrub = true`).
pub fn rot_timeline(class: ObjectClass, scrub: bool, seed: u64) -> RotTimeline {
    let mut sim = Sim::new(seed);
    sim.block_on(move |sim| async move {
        let mut cfg = ClusterConfig::tiny(1);
        cfg.server_nodes = 4;
        cfg.targets_per_engine = 2;
        cfg.engine.scrub_interval = scrub.then(|| SimDuration::from_ms(5));
        cfg.engine.scrub_chunks = 64;
        let tpe = cfg.targets_per_engine;
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.expect("connect");
        let cont = pool.create_container(&sim, 1).await.expect("container");
        let arr = cont.object(ObjectId::new(0x5C, 1), class).array(64 * KIB);
        let data = Payload::pattern(29, 2 * MIB);
        arr.write(&sim, 0, data.clone()).await.expect("write");

        // replica choice is deterministic per chunk, so a priming read
        // tells us exactly which copies client reads fetch; rot the target
        // serving the most of them so the client-read mode actually
        // touches the damage (scrub mode ignores the distinction)
        let before: Vec<u64> = (0..cluster.cfg.engine_count() * tpe)
            .map(|t| cluster.engine(t / tpe).target(t % tpe).counters().fetches)
            .collect();
        arr.read_bytes(&sim, 0, 2 * MIB).await.expect("prime read");
        let victim = (0..cluster.cfg.engine_count() * tpe)
            .max_by_key(|&t| {
                cluster.engine(t / tpe).target(t % tpe).counters().fetches - before[t as usize]
            })
            .unwrap();
        let t_rot = sim.now().as_ns();
        cluster.apply_fault(
            &sim,
            FaultAction::BitRot {
                target: victim as usize,
                fraction_ppm: 1_000_000,
            },
        );
        let rot_extents = cluster.corruption_stats().rot_injected;

        let mut equal = true;
        if scrub {
            // zero client traffic: only the scrubber can find the rot
            for _ in 0..100 {
                sim.sleep_ms(5).await;
                if cluster.corruption_stats().reported > 0 {
                    break;
                }
            }
        } else {
            // reads that land on the rotten copies fail over / reconstruct
            let got = arr.read_bytes(&sim, 0, 2 * MIB).await.expect("read");
            equal = got == data.materialize().to_vec();
        }
        let detect_ms = cluster
            .corruption_stats()
            .first_report_ns
            .map(|t| (t.saturating_sub(t_rot)) as f64 / 1e6)
            .unwrap_or(f64::NAN);
        cluster.quiesce_repairs(&sim).await;

        // in scrub mode the scrubber keeps finding what repairs haven't
        // reached yet: iterate until a full manual pass over the victim
        // verifies clean (client mode leaves unread copies rotten)
        let mut clean = false;
        if scrub {
            let tgt = cluster.engine(victim / tpe).target(victim % tpe);
            for _ in 0..40 {
                sim.sleep_ms(10).await;
                cluster.quiesce_repairs(&sim).await;
                let mut findings = 0u64;
                loop {
                    let r = tgt.scrub_step(&sim, 1024).await;
                    findings += r.findings.len() as u64;
                    if r.wrapped {
                        break;
                    }
                }
                if findings == 0 {
                    clean = true;
                    break;
                }
            }
            let got = arr.read_bytes(&sim, 0, 2 * MIB).await.expect("read");
            equal = got == data.materialize().to_vec();
        }

        let st = cluster.corruption_stats();
        RotTimeline {
            class,
            mode: if scrub { "scrubber" } else { "client-read" },
            rot_extents,
            detect_ms,
            reported: st.reported,
            repairs_ok: st.repairs_ok,
            equal,
            clean,
        }
    })
}

/// Record one rot timeline (series = `<class>/<mode>`, scale-less).
pub fn record_rot_timeline(report: &mut impl Record, t: &RotTimeline) {
    let s = format!("{}/{}", t.class, t.mode);
    report.record(&s, 0, "rot_extents", t.rot_extents as f64);
    report.record(&s, 0, "detect_ms", t.detect_ms);
    report.record(&s, 0, "reported", t.reported as f64);
    report.record(&s, 0, "repairs_ok", t.repairs_ok as f64);
    report.record(&s, 0, "bytes_equal", t.equal as u64 as f64);
    report.record(&s, 0, "media_clean", t.clean as u64 as f64);
}

/// The integrity checks every rot timeline must satisfy.
pub fn check_rot_timeline(rep: &mut crate::Reporter, t: &RotTimeline) {
    rep.check(
        &format!("{} {}: rot injected and detected", t.class, t.mode),
        t.rot_extents > 0 && t.reported > 0 && t.detect_ms.is_finite(),
    );
    rep.check(
        &format!("{} {}: targeted repairs landed", t.class, t.mode),
        t.repairs_ok > 0,
    );
    rep.check(
        &format!("{} {}: all bytes read back identical", t.class, t.mode),
        t.equal,
    );
    if t.mode == "scrubber" {
        rep.check(
            &format!(
                "{} {}: rotted target scrubs clean after repair",
                t.class, t.mode
            ),
            t.clean,
        );
    }
}
