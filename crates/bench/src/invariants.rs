//! The paper's qualitative results (R1–R5), encoded as machine-checked
//! invariants over [`BenchReport`]s.
//!
//! These are the orderings and crossovers *"DAOS as HPC Storage: Exploring
//! Interfaces"* reports and `EXPERIMENTS.md` reproduces; the `regress`
//! harness evaluates them on every run so no PR can silently invert a
//! figure even if each individual number stays inside its tolerance band.
//! Each predicate reads the smallest and largest scales present in the
//! report, so the same code checks the full figure grids and the reduced
//! CI sweep alike.

use crate::report::BenchReport;

/// Outcome of one invariant evaluation.
#[derive(Clone, Debug)]
pub struct InvariantResult {
    /// Stable id, e.g. `R2`.
    pub id: &'static str,
    /// The claim being checked, as prose.
    pub desc: &'static str,
    pub pass: bool,
    /// The numbers the verdict was computed from (or what was missing).
    pub detail: String,
}

impl InvariantResult {
    fn ok(id: &'static str, desc: &'static str, detail: String) -> Self {
        InvariantResult {
            id,
            desc,
            pass: true,
            detail,
        }
    }

    fn fail(id: &'static str, desc: &'static str, detail: String) -> Self {
        InvariantResult {
            id,
            desc,
            pass: false,
            detail,
        }
    }
}

/// Smallest and largest client-node scales present in the report.
fn scale_range(report: &BenchReport) -> Option<(u32, u32)> {
    let mut lo = u32::MAX;
    let mut hi = 0;
    for scales in report.series.values() {
        for &n in scales.keys() {
            lo = lo.min(n);
            hi = hi.max(n);
        }
    }
    (hi > 0).then_some((lo, hi))
}

/// Fetch a metric or produce a `fail` with a missing-cell message.
fn need(report: &BenchReport, series: &str, scale: u32, metric: &str) -> Result<f64, String> {
    report
        .get(series, scale, metric)
        .ok_or_else(|| format!("missing {series}/{scale}/{metric} in BENCH_{}", report.name))
}

macro_rules! take {
    ($id:expr, $desc:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => return InvariantResult::fail($id, $desc, msg),
        }
    };
}

/// R1 — "a small amount of object sharding (S2) gives the best
/// performance for reading data": S2 FPP reads beat fully-sharded SX
/// reads at the largest scale (stream-window thrash penalizes SX).
pub fn r1_s2_reads_best(fig1: &BenchReport) -> InvariantResult {
    const ID: &str = "R1";
    const DESC: &str = "S2 FPP reads beat SX at the largest scale";
    let (_, top) = match scale_range(fig1) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let s2 = take!(ID, DESC, need(fig1, "DFS-S2", top, "read_gib_s"));
    let sx = take!(ID, DESC, need(fig1, "DFS-SX", top, "read_gib_s"));
    let detail = format!("{top} nodes: S2 read {s2:.2} vs SX read {sx:.2} GiB/s");
    if s2 > sx {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R2 — the SX write crossover: full sharding is the best writer under
/// high contention (largest scale) but *slower* than S2 for few writers
/// (smallest scale).
pub fn r2_sx_write_crossover(fig1: &BenchReport) -> InvariantResult {
    const ID: &str = "R2";
    const DESC: &str = "SX write crossover: loses to S2 at small scale, wins at large";
    let (lo, top) = match scale_range(fig1) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let sx_lo = take!(ID, DESC, need(fig1, "DFS-SX", lo, "write_gib_s"));
    let s2_lo = take!(ID, DESC, need(fig1, "DFS-S2", lo, "write_gib_s"));
    let sx_hi = take!(ID, DESC, need(fig1, "DFS-SX", top, "write_gib_s"));
    let s2_hi = take!(ID, DESC, need(fig1, "DFS-S2", top, "write_gib_s"));
    let s1_hi = take!(ID, DESC, need(fig1, "DFS-S1", top, "write_gib_s"));
    let detail = format!(
        "{lo} node(s): SX {sx_lo:.2} vs S2 {s2_lo:.2}; {top} nodes: SX {sx_hi:.2} vs S2 {s2_hi:.2} / S1 {s1_hi:.2} GiB/s"
    );
    if sx_lo < s2_lo && sx_hi > s2_hi && sx_hi > s1_hi {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R3 — "HDF5 using the DFuse mount gives much lower performance, both
/// for read and write" while MPI-IO over DFuse tracks DFS: at the
/// smallest scale HDF5 trails MPI-IO by >5% on both phases, and MPI-IO
/// stays within ±10% of DFS.
pub fn r3_hdf5_dfuse_penalty(fig1: &BenchReport) -> InvariantResult {
    const ID: &str = "R3";
    const DESC: &str = "HDF5-over-DFuse trails MPI-IO/DFS; MPI-IO tracks DFS";
    let (lo, _) = match scale_range(fig1) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let h_w = take!(ID, DESC, need(fig1, "HDF5-S1", lo, "write_gib_s"));
    let h_r = take!(ID, DESC, need(fig1, "HDF5-S1", lo, "read_gib_s"));
    let m_w = take!(ID, DESC, need(fig1, "MPIIO-S1", lo, "write_gib_s"));
    let m_r = take!(ID, DESC, need(fig1, "MPIIO-S1", lo, "read_gib_s"));
    let d_w = take!(ID, DESC, need(fig1, "DFS-S1", lo, "write_gib_s"));
    let detail = format!(
        "{lo} node(s): HDF5 {h_w:.2}w/{h_r:.2}r vs MPIIO {m_w:.2}w/{m_r:.2}r vs DFS {d_w:.2}w GiB/s"
    );
    let hdf5_penalized = h_w < 0.95 * m_w && h_r < 0.95 * m_r;
    let mpiio_close = (m_w / d_w - 1.0).abs() < 0.10;
    if hdf5_penalized && mpiio_close {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R4 — shared-file interface parity: the DFS API leads the shared-file
/// write field at scale (within 2% of the best — the paper's margin is
/// razor-thin, "similar performance achieved across interfaces"), with
/// MPI-IO and HDF5 over DFuse within 15% for both phases.
pub fn r4_shared_interface_parity(fig2: &BenchReport) -> InvariantResult {
    const ID: &str = "R4";
    const DESC: &str = "shared-file: DFS within 2% of best write, all interfaces within 15%";
    let (_, top) = match scale_range(fig2) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let d_w = take!(ID, DESC, need(fig2, "DFS-SX", top, "write_gib_s"));
    let m_w = take!(ID, DESC, need(fig2, "MPIIO-SX", top, "write_gib_s"));
    let h_w = take!(ID, DESC, need(fig2, "HDF5-SX", top, "write_gib_s"));
    let d_r = take!(ID, DESC, need(fig2, "DFS-SX", top, "read_gib_s"));
    let m_r = take!(ID, DESC, need(fig2, "MPIIO-SX", top, "read_gib_s"));
    let h_r = take!(ID, DESC, need(fig2, "HDF5-SX", top, "read_gib_s"));
    let detail = format!(
        "{top} nodes write: DFS {d_w:.2} MPIIO {m_w:.2} HDF5 {h_w:.2}; read: {d_r:.2}/{m_r:.2}/{h_r:.2} GiB/s"
    );
    let dfs_highest = d_w >= 0.98 * m_w.max(h_w);
    let parity = m_w > 0.85 * d_w && h_w > 0.85 * d_w && m_r > 0.85 * d_r && h_r > 0.85 * d_r;
    if dfs_highest && parity {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R5 — the "stark contrast" claim: on DAOS a shared file writes at
/// ≥80% of file-per-process, while the Lustre-like PFS collapses below
/// 50%, and the DAOS ratio is at least 3× the PFS ratio.
pub fn r5_pfs_collapse(pfs_contrast: &BenchReport) -> InvariantResult {
    const ID: &str = "R5";
    const DESC: &str = "DAOS shared/FPP >= 0.8, PFS < 0.5, DAOS ratio >= 3x PFS";
    let (_, top) = match scale_range(pfs_contrast) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let p_fpp = take!(ID, DESC, need(pfs_contrast, "pfs-fpp", top, "write_gib_s"));
    let p_sh = take!(
        ID,
        DESC,
        need(pfs_contrast, "pfs-shared", top, "write_gib_s")
    );
    let d_fpp = take!(ID, DESC, need(pfs_contrast, "daos-fpp", top, "write_gib_s"));
    let d_sh = take!(
        ID,
        DESC,
        need(pfs_contrast, "daos-shared", top, "write_gib_s")
    );
    let pfs_ratio = p_sh / p_fpp;
    let daos_ratio = d_sh / d_fpp;
    let detail =
        format!("{top} nodes shared/fpp write ratio: daos {daos_ratio:.2} vs pfs {pfs_ratio:.2}");
    if daos_ratio > 0.8 && pfs_ratio < 0.5 && daos_ratio >= 3.0 * pfs_ratio {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// Evaluate R1–R5 against the three figure reports.
pub fn evaluate_all(
    fig1: &BenchReport,
    fig2: &BenchReport,
    pfs_contrast: &BenchReport,
) -> Vec<InvariantResult> {
    vec![
        r1_s2_reads_best(fig1),
        r2_sx_write_crossover(fig1),
        r3_hdf5_dfuse_penalty(fig1),
        r4_shared_interface_parity(fig2),
        r5_pfs_collapse(pfs_contrast),
    ]
}
