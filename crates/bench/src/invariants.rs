//! The paper's qualitative results (R1–R5), encoded as machine-checked
//! invariants over [`BenchReport`]s.
//!
//! These are the orderings and crossovers *"DAOS as HPC Storage: Exploring
//! Interfaces"* reports and `EXPERIMENTS.md` reproduces; the `regress`
//! harness evaluates them on every run so no PR can silently invert a
//! figure even if each individual number stays inside its tolerance band.
//! Each predicate reads the smallest and largest scales present in the
//! report, so the same code checks the full figure grids and the reduced
//! CI sweep alike.

use crate::report::BenchReport;

/// Outcome of one invariant evaluation.
#[derive(Clone, Debug)]
pub struct InvariantResult {
    /// Stable id, e.g. `R2`.
    pub id: &'static str,
    /// The claim being checked, as prose.
    pub desc: &'static str,
    pub pass: bool,
    /// The numbers the verdict was computed from (or what was missing).
    pub detail: String,
}

impl InvariantResult {
    fn ok(id: &'static str, desc: &'static str, detail: String) -> Self {
        InvariantResult {
            id,
            desc,
            pass: true,
            detail,
        }
    }

    fn fail(id: &'static str, desc: &'static str, detail: String) -> Self {
        InvariantResult {
            id,
            desc,
            pass: false,
            detail,
        }
    }
}

/// Smallest and largest client-node scales present in the report.
fn scale_range(report: &BenchReport) -> Option<(u32, u32)> {
    let mut lo = u32::MAX;
    let mut hi = 0;
    for scales in report.series.values() {
        for &n in scales.keys() {
            lo = lo.min(n);
            hi = hi.max(n);
        }
    }
    (hi > 0).then_some((lo, hi))
}

/// Fetch a metric or produce a `fail` with a missing-cell message.
fn need(report: &BenchReport, series: &str, scale: u32, metric: &str) -> Result<f64, String> {
    report
        .get(series, scale, metric)
        .ok_or_else(|| format!("missing {series}/{scale}/{metric} in BENCH_{}", report.name))
}

macro_rules! take {
    ($id:expr, $desc:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(msg) => return InvariantResult::fail($id, $desc, msg),
        }
    };
}

/// R1 — "a small amount of object sharding (S2) gives the best
/// performance for reading data": S2 FPP reads beat fully-sharded SX
/// reads at the largest scale (stream-window thrash penalizes SX).
pub fn r1_s2_reads_best(fig1: &BenchReport) -> InvariantResult {
    const ID: &str = "R1";
    const DESC: &str = "S2 FPP reads beat SX at the largest scale";
    let (_, top) = match scale_range(fig1) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let s2 = take!(ID, DESC, need(fig1, "DFS-S2", top, "read_gib_s"));
    let sx = take!(ID, DESC, need(fig1, "DFS-SX", top, "read_gib_s"));
    let detail = format!("{top} nodes: S2 read {s2:.2} vs SX read {sx:.2} GiB/s");
    if s2 > sx {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R2 — the SX write crossover: full sharding is the best writer under
/// high contention (largest scale) but *slower* than S2 for few writers
/// (smallest scale).
pub fn r2_sx_write_crossover(fig1: &BenchReport) -> InvariantResult {
    const ID: &str = "R2";
    const DESC: &str = "SX write crossover: loses to S2 at small scale, wins at large";
    let (lo, top) = match scale_range(fig1) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let sx_lo = take!(ID, DESC, need(fig1, "DFS-SX", lo, "write_gib_s"));
    let s2_lo = take!(ID, DESC, need(fig1, "DFS-S2", lo, "write_gib_s"));
    let sx_hi = take!(ID, DESC, need(fig1, "DFS-SX", top, "write_gib_s"));
    let s2_hi = take!(ID, DESC, need(fig1, "DFS-S2", top, "write_gib_s"));
    let s1_hi = take!(ID, DESC, need(fig1, "DFS-S1", top, "write_gib_s"));
    let detail = format!(
        "{lo} node(s): SX {sx_lo:.2} vs S2 {s2_lo:.2}; {top} nodes: SX {sx_hi:.2} vs S2 {s2_hi:.2} / S1 {s1_hi:.2} GiB/s"
    );
    if sx_lo < s2_lo && sx_hi > s2_hi && sx_hi > s1_hi {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R3 — "HDF5 using the DFuse mount gives much lower performance, both
/// for read and write" while MPI-IO over DFuse tracks DFS: at the
/// smallest scale HDF5 trails MPI-IO by >5% on both phases, and MPI-IO
/// stays within ±10% of DFS.
pub fn r3_hdf5_dfuse_penalty(fig1: &BenchReport) -> InvariantResult {
    const ID: &str = "R3";
    const DESC: &str = "HDF5-over-DFuse trails MPI-IO/DFS; MPI-IO tracks DFS";
    let (lo, _) = match scale_range(fig1) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let h_w = take!(ID, DESC, need(fig1, "HDF5-S1", lo, "write_gib_s"));
    let h_r = take!(ID, DESC, need(fig1, "HDF5-S1", lo, "read_gib_s"));
    let m_w = take!(ID, DESC, need(fig1, "MPIIO-S1", lo, "write_gib_s"));
    let m_r = take!(ID, DESC, need(fig1, "MPIIO-S1", lo, "read_gib_s"));
    let d_w = take!(ID, DESC, need(fig1, "DFS-S1", lo, "write_gib_s"));
    let detail = format!(
        "{lo} node(s): HDF5 {h_w:.2}w/{h_r:.2}r vs MPIIO {m_w:.2}w/{m_r:.2}r vs DFS {d_w:.2}w GiB/s"
    );
    let hdf5_penalized = h_w < 0.95 * m_w && h_r < 0.95 * m_r;
    let mpiio_close = (m_w / d_w - 1.0).abs() < 0.10;
    if hdf5_penalized && mpiio_close {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R4 — shared-file interface parity: the DFS API leads the shared-file
/// write field at scale (within 2% of the best — the paper's margin is
/// razor-thin, "similar performance achieved across interfaces"), with
/// MPI-IO and HDF5 over DFuse within 15% for both phases.
pub fn r4_shared_interface_parity(fig2: &BenchReport) -> InvariantResult {
    const ID: &str = "R4";
    const DESC: &str = "shared-file: DFS within 2% of best write, all interfaces within 15%";
    let (_, top) = match scale_range(fig2) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let d_w = take!(ID, DESC, need(fig2, "DFS-SX", top, "write_gib_s"));
    let m_w = take!(ID, DESC, need(fig2, "MPIIO-SX", top, "write_gib_s"));
    let h_w = take!(ID, DESC, need(fig2, "HDF5-SX", top, "write_gib_s"));
    let d_r = take!(ID, DESC, need(fig2, "DFS-SX", top, "read_gib_s"));
    let m_r = take!(ID, DESC, need(fig2, "MPIIO-SX", top, "read_gib_s"));
    let h_r = take!(ID, DESC, need(fig2, "HDF5-SX", top, "read_gib_s"));
    let detail = format!(
        "{top} nodes write: DFS {d_w:.2} MPIIO {m_w:.2} HDF5 {h_w:.2}; read: {d_r:.2}/{m_r:.2}/{h_r:.2} GiB/s"
    );
    let dfs_highest = d_w >= 0.98 * m_w.max(h_w);
    let parity = m_w > 0.85 * d_w && h_w > 0.85 * d_w && m_r > 0.85 * d_r && h_r > 0.85 * d_r;
    if dfs_highest && parity {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R2x — the R2 crossover relocated beyond the paper's reach. On the
/// paper's fixed 8-server testbed SX overtakes S2 for fpp writes by 16
/// client nodes (R2). On the weak-scaled testbed — servers growing with
/// clients, per-engine contention held at the calibrated level — S2's
/// smaller per-file fan-out keeps it ahead again until the aggregate
/// metadata/striping overheads of the wider class amortize: the check
/// asserts the lead changes hands from S2 to SX exactly once along the
/// 64–512-node axis, and reports where.
pub fn r2x_scale_crossover(scale: &BenchReport) -> InvariantResult {
    const ID: &str = "R2x";
    const DESC: &str = "fpp-write lead flips S2 -> SX exactly once along the 64-512-node axis";
    let nodes: Vec<u32> = scale
        .series
        .get("DFS-SX-fpp")
        .map(|m| m.keys().copied().collect())
        .unwrap_or_default();
    if nodes.len() < 2 {
        return InvariantResult::fail(ID, DESC, "need >= 2 scales in DFS-SX-fpp".into());
    }
    let mut leads = Vec::new();
    for &n in &nodes {
        let sx = take!(ID, DESC, need(scale, "DFS-SX-fpp", n, "write_gib_s"));
        let s2 = take!(ID, DESC, need(scale, "DFS-S2-fpp", n, "write_gib_s"));
        leads.push((n, sx, s2));
    }
    let flips: Vec<usize> = leads
        .windows(2)
        .enumerate()
        .filter(|(_, w)| (w[0].1 > w[0].2) != (w[1].1 > w[1].2))
        .map(|(i, _)| i)
        .collect();
    let s2_first = leads[0].1 <= leads[0].2;
    let sx_last = leads[leads.len() - 1].1 > leads[leads.len() - 1].2;
    let detail = match flips.as_slice() {
        [i] => {
            let (below, sx_b, s2_b) = leads[*i];
            let (at, sx_a, s2_a) = leads[*i + 1];
            format!(
                "S2 leads through {below} nodes ({s2_b:.1} vs SX {sx_b:.1}), SX from {at} \
                 ({sx_a:.1} vs S2 {s2_a:.1}) — crossover in ({below}, {at}] client nodes"
            )
        }
        _ => format!(
            "{} lead change(s): {}",
            flips.len(),
            leads
                .iter()
                .map(|(n, sx, s2)| format!("{n}n SX {sx:.1}/S2 {s2:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    };
    if s2_first && sx_last && flips.len() == 1 {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R5x — the shared-file asymptote beyond the paper: DAOS's shared-file
/// write parity (the R5 claim at 16 nodes) must persist at 64–512 nodes
/// and *flatten* — the shared/fpp ratio stops moving (within 10%)
/// between the two largest scales.
pub fn r5x_shared_asymptote(scale: &BenchReport) -> InvariantResult {
    const ID: &str = "R5x";
    const DESC: &str = "SX shared/fpp write ratio >= 0.8 at 64-512 nodes and flat at the top";
    let nodes: Vec<u32> = scale
        .series
        .get("DFS-SX-shared")
        .map(|m| m.keys().copied().collect())
        .unwrap_or_default();
    if nodes.len() < 2 {
        return InvariantResult::fail(ID, DESC, "need >= 2 scales in DFS-SX-shared".into());
    }
    let mut ratios = Vec::new();
    for &n in &nodes {
        let sh = take!(ID, DESC, need(scale, "DFS-SX-shared", n, "write_gib_s"));
        let fpp = take!(ID, DESC, need(scale, "DFS-SX-fpp", n, "write_gib_s"));
        ratios.push((n, sh / fpp));
    }
    let parity = ratios.iter().all(|&(_, r)| r >= 0.8);
    let (n_prev, r_prev) = ratios[ratios.len() - 2];
    let (n_top, r_top) = ratios[ratios.len() - 1];
    let flat = (r_top / r_prev - 1.0).abs() < 0.10;
    let detail = format!(
        "shared/fpp write ratio: {} ; flat {n_prev}->{n_top}: {r_prev:.3}->{r_top:.3}",
        ratios
            .iter()
            .map(|(n, r)| format!("{n}n {r:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if parity && flat {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// Evaluate the beyond-paper scale checks against `BENCH_scale.json`.
pub fn evaluate_scale(scale: &BenchReport) -> Vec<InvariantResult> {
    vec![r2x_scale_crossover(scale), r5x_shared_asymptote(scale)]
}

/// R5 — the "stark contrast" claim: on DAOS a shared file writes at
/// ≥80% of file-per-process, while the Lustre-like PFS collapses below
/// 50%, and the DAOS ratio is at least 3× the PFS ratio.
pub fn r5_pfs_collapse(pfs_contrast: &BenchReport) -> InvariantResult {
    const ID: &str = "R5";
    const DESC: &str = "DAOS shared/FPP >= 0.8, PFS < 0.5, DAOS ratio >= 3x PFS";
    let (_, top) = match scale_range(pfs_contrast) {
        Some(r) => r,
        None => return InvariantResult::fail(ID, DESC, "empty report".into()),
    };
    let p_fpp = take!(ID, DESC, need(pfs_contrast, "pfs-fpp", top, "write_gib_s"));
    let p_sh = take!(
        ID,
        DESC,
        need(pfs_contrast, "pfs-shared", top, "write_gib_s")
    );
    let d_fpp = take!(ID, DESC, need(pfs_contrast, "daos-fpp", top, "write_gib_s"));
    let d_sh = take!(
        ID,
        DESC,
        need(pfs_contrast, "daos-shared", top, "write_gib_s")
    );
    let pfs_ratio = p_sh / p_fpp;
    let daos_ratio = d_sh / d_fpp;
    let detail =
        format!("{top} nodes shared/fpp write ratio: daos {daos_ratio:.2} vs pfs {pfs_ratio:.2}");
    if daos_ratio > 0.8 && pfs_ratio < 0.5 && daos_ratio >= 3.0 * pfs_ratio {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// Ascending load axis of one traffic series.
fn series_scales(report: &BenchReport, series: &str) -> Vec<u32> {
    report
        .series
        .get(series)
        .map(|by_scale| by_scale.keys().copied().collect())
        .unwrap_or_default()
}

/// Knee of one traffic series: the offered load (percent) with the
/// highest goodput. Open-loop, this is where the latency/throughput
/// curve turns — past it extra offered load can only queue or shed.
fn knee_of(report: &BenchReport, series: &str) -> Option<(u32, f64)> {
    let mut best: Option<(u32, f64)> = None;
    for load in series_scales(report, series) {
        let g = report.get(series, load, "goodput_gib_s")?;
        if best.is_none_or(|(_, bg)| g > bg) {
            best = Some((load, g));
        }
    }
    best
}

/// The [`daos_sim::PercentileSketch`]-reported quantiles carry up
/// to 6.25% relative bucket granularity; monotonicity is asserted with
/// that slack so two loads landing in the same bucket never fail R6.
const SKETCH_SLACK: f64 = 0.94;

/// R6 — open-loop latency knee: on every Poisson series, p99 completion
/// latency grows monotonically with offered load up to the knee, and the
/// knee's p99 sits clearly above the lightest load's.
///
/// The monotone region is clamped at 100% of nominal capacity: past it a
/// *protected* series sheds most arrivals, and the completion population
/// becomes shed-censored — survivors skew toward requests that found
/// short queues, so the quantiles of successes can legitimately *fall*
/// while the system degrades. Below nominal, everything that arrives
/// completes and the classic utilization/latency curve must hold.
pub fn r6_latency_monotone(traffic: &BenchReport) -> InvariantResult {
    const ID: &str = "R6";
    const DESC: &str = "p99 latency grows monotonically with offered load up to the knee";
    let mut detail = String::new();
    let mut pass = true;
    let series: Vec<String> = traffic
        .series
        .keys()
        .filter(|s| !s.ends_with("/burst"))
        .cloned()
        .collect();
    if series.is_empty() {
        return InvariantResult::fail(ID, DESC, "empty report".into());
    }
    for s in &series {
        let (knee, _) = match knee_of(traffic, s) {
            Some(k) => k,
            None => return InvariantResult::fail(ID, DESC, format!("missing goodput in {s}")),
        };
        let pre: Vec<(u32, f64)> = series_scales(traffic, s)
            .into_iter()
            .filter(|&l| l <= knee.min(100))
            .map(|l| (l, traffic.get(s, l, "p99_us").unwrap_or(f64::NAN)))
            .collect();
        let mut mono = true;
        for w in pre.windows(2) {
            // negated so a NaN (missing metric) also counts as non-monotone
            let step_ok = w[1].1 >= SKETCH_SLACK * w[0].1;
            if !step_ok {
                mono = false;
            }
        }
        let grows = match (pre.first(), pre.last()) {
            (Some(&(_, first)), Some(&(_, at_knee))) if pre.len() >= 2 => at_knee >= 1.1 * first,
            _ => true, // knee at the lightest load: nothing to compare
        };
        if !(mono && grows) {
            pass = false;
        }
        let curve: Vec<String> = pre.iter().map(|(l, p)| format!("{l}%:{p:.0}us")).collect();
        detail.push_str(&format!("{s} knee {knee}% [{}]; ", curve.join(" ")));
    }
    if pass {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R7 — no goodput collapse with protection ON: past the knee, every
/// admission+damping series keeps goodput within 15% of its peak. This
/// is the property the admission queue caps and the retry budget buy:
/// overload sheds early and cheaply instead of queueing into timeouts.
pub fn r7_ac_no_collapse(traffic: &BenchReport) -> InvariantResult {
    const ID: &str = "R7";
    const DESC: &str = "admission ON: goodput stays within 15% of peak past the knee";
    let mut detail = String::new();
    let mut pass = true;
    let mut seen = false;
    for s in traffic.series.keys() {
        if !(s.ends_with("/ac") || s.ends_with("/burst")) {
            continue;
        }
        seen = true;
        let (knee, peak) = match knee_of(traffic, s) {
            Some(k) => k,
            None => return InvariantResult::fail(ID, DESC, format!("missing goodput in {s}")),
        };
        let mut min_past = peak;
        for load in series_scales(traffic, s) {
            if load > knee {
                let g = traffic.get(s, load, "goodput_gib_s").unwrap_or(0.0);
                min_past = min_past.min(g);
            }
        }
        if min_past < 0.85 * peak {
            pass = false;
        }
        detail.push_str(&format!(
            "{s}: peak {peak:.2} @ {knee}%, min past {min_past:.2} GiB/s; "
        ));
    }
    if !seen {
        return InvariantResult::fail(ID, DESC, "no admission-ON series".into());
    }
    if pass {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// R8 — the storm with protection OFF: at the sweep's deepest overload,
/// every unprotected series delivers less than *half* the goodput of its
/// protected twin (queueing delay blows through the RPC deadline,
/// retries multiply offered load, served-but-abandoned work evicts
/// goodput), and every unprotected series degrades measurably (>15%)
/// from its own peak past the knee.
pub fn r8_noac_collapse(traffic: &BenchReport) -> InvariantResult {
    const ID: &str = "R8";
    const DESC: &str = "admission OFF: less than half the protected twin's goodput at top load";
    let mut detail = String::new();
    let mut pass = true;
    let mut seen = false;
    for s in traffic.series.keys() {
        if !s.ends_with("/noac") {
            continue;
        }
        seen = true;
        let twin = format!("{}ac", s.trim_end_matches("noac"));
        let loads = series_scales(traffic, s);
        let top = match loads.last() {
            Some(&t) => t,
            None => return InvariantResult::fail(ID, DESC, format!("empty series {s}")),
        };
        let g_off = match traffic.get(s, top, "goodput_gib_s") {
            Some(g) => g,
            None => return InvariantResult::fail(ID, DESC, format!("missing goodput in {s}")),
        };
        let g_on = match traffic.get(&twin, top, "goodput_gib_s") {
            Some(g) => g,
            None => return InvariantResult::fail(ID, DESC, format!("missing twin series {twin}")),
        };
        let (knee, peak) = match knee_of(traffic, s) {
            Some(k) => k,
            None => return InvariantResult::fail(ID, DESC, format!("missing goodput in {s}")),
        };
        let min_past = loads
            .iter()
            .filter(|&&l| l > knee)
            .filter_map(|&l| traffic.get(s, l, "goodput_gib_s"))
            .fold(peak, f64::min);
        if !(g_off < 0.5 * g_on && min_past < 0.85 * peak) {
            pass = false;
        }
        detail.push_str(&format!(
            "{s}@{top}%: {g_off:.2} vs {twin} {g_on:.2} GiB/s; own peak {peak:.2} @ {knee}%, min past {min_past:.2}; "
        ));
    }
    if !seen {
        return InvariantResult::fail(ID, DESC, "no admission-OFF series".into());
    }
    if pass {
        InvariantResult::ok(ID, DESC, detail)
    } else {
        InvariantResult::fail(ID, DESC, detail)
    }
}

/// Evaluate the overload invariants R6–R8 against a traffic report.
pub fn evaluate_traffic(traffic: &BenchReport) -> Vec<InvariantResult> {
    vec![
        r6_latency_monotone(traffic),
        r7_ac_no_collapse(traffic),
        r8_noac_collapse(traffic),
    ]
}

/// Evaluate R1–R5 against the three figure reports.
pub fn evaluate_all(
    fig1: &BenchReport,
    fig2: &BenchReport,
    pfs_contrast: &BenchReport,
) -> Vec<InvariantResult> {
    vec![
        r1_s2_reads_best(fig1),
        r2_sx_write_crossover(fig1),
        r3_hdf5_dfuse_penalty(fig1),
        r4_shared_interface_parity(fig2),
        r5_pfs_collapse(pfs_contrast),
    ]
}
