//! Deterministic parallel job runner for the bench suite.
//!
//! A [`Slate`] is an ordered list of independent jobs — each a label plus
//! a closure that runs one seeded, single-threaded simulation (or any
//! other self-contained computation) and returns a result fragment.
//! [`Slate::run`] fans the jobs across host threads and reduces the
//! results **in submission order**, so every downstream artifact
//! (`BENCH_<name>.json`, CSV tables, drift tables) is byte-identical
//! regardless of thread count or schedule:
//!
//! * each job's seed is fixed at submission time, never derived from the
//!   executing thread or from completion order;
//! * a job runs on exactly one thread from start to finish — a seeded
//!   `Sim` never migrates (the D04 boundary in `DESIGN.md` §8);
//! * the only schedule-dependent output is per-job *wall time*, which is
//!   reported out-of-band ([`JobResult::wall_secs`]) under the documented
//!   D02 waiver and never lands in comparison-bearing report fields.
//!
//! Thread count comes from, in order: an explicit argument, the
//! process-wide override ([`set_threads`], wired to `--threads` in the
//! binaries), the `BENCH_THREADS` environment variable, and finally
//! `std::thread::available_parallelism`. `threads = 1` executes the slate
//! serially on the calling thread, reproducing the pre-executor behavior
//! exactly.
//!
//! Panic policy: a panicking job does not poison the slate's scope or
//! deadlock its siblings — the worker catches the unwind, the remaining
//! jobs still run, and [`Slate::run`] reports the first panicking job *in
//! submission order* (deterministic even when several jobs panic) as a
//! [`PanickedJob`] carrying the job's label.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Boxed job body: runs once, on one thread, returns the job's fragment.
type JobFn<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// One finished job, in submission order.
#[derive(Clone, Debug)]
pub struct JobResult<T> {
    /// Label the job was submitted under.
    pub label: String,
    /// Host wall-clock seconds the job body took on its thread.
    /// Schedule-dependent by nature: provenance only, never merged into
    /// any baseline-compared report field.
    pub wall_secs: f64,
    /// The job's return value.
    pub value: T,
}

/// A job panicked; the slate fails deterministically with its label.
#[derive(Clone, Debug)]
pub struct PanickedJob {
    /// Label of the first panicking job in submission order.
    pub label: String,
    /// Panic payload rendered to text (when it was a string).
    pub message: String,
}

impl std::fmt::Display for PanickedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {:?} panicked: {}", self.label, self.message)
    }
}

impl std::error::Error for PanickedJob {}

/// An ordered slate of independent jobs with a deterministic reduction.
pub struct Slate<'a, T> {
    jobs: Vec<(String, JobFn<'a, T>)>,
}

impl<'a, T> Default for Slate<'a, T> {
    fn default() -> Self {
        Slate { jobs: Vec::new() }
    }
}

enum CellState<'a, T> {
    Pending(JobFn<'a, T>),
    /// A worker moved the job out and is running it.
    Running,
    Done(f64, T),
    Panicked(String),
}

impl<'a, T: Send> Slate<'a, T> {
    /// Empty slate.
    pub fn new() -> Self {
        Slate { jobs: Vec::new() }
    }

    /// Append one job. Submission order *is* reduction order.
    pub fn push(&mut self, label: impl Into<String>, job: impl FnOnce() -> T + Send + 'a) {
        self.jobs.push((label.into(), Box::new(job)));
    }

    /// Number of submitted jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the slate is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Run every job on [`threads`] host threads (the resolved default).
    pub fn run_auto(self) -> Result<Vec<JobResult<T>>, PanickedJob> {
        let n = threads();
        self.run(n)
    }

    /// Run every job across `threads` host threads and return the results
    /// in submission order. `threads <= 1` runs serially on the calling
    /// thread; either way each job body executes on exactly one thread.
    pub fn run(self, threads: usize) -> Result<Vec<JobResult<T>>, PanickedJob> {
        let n_jobs = self.jobs.len();
        let threads = threads.max(1).min(n_jobs.max(1));
        let mut labels = Vec::with_capacity(n_jobs);
        let cells: Vec<Mutex<CellState<'a, T>>> = self
            .jobs
            .into_iter()
            .map(|(label, job)| {
                labels.push(label);
                Mutex::new(CellState::Pending(job))
            })
            .collect();

        // One shared cursor hands out job indices first-come-first-served
        // (cheap work stealing: a long job occupies one thread while the
        // others drain the tail). Claim order affects only wall time —
        // results are read back by index below.
        let next = AtomicUsize::new(0);
        let worker = |_: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            let job = match std::mem::replace(&mut *cells[i].lock().unwrap(), CellState::Running) {
                CellState::Pending(job) => job,
                _ => unreachable!("cursor hands each index to exactly one worker"),
            };
            // simlint: allow(D02) per-job wall-time provenance; reported out-of-band, never merged into compared report fields
            let t0 = std::time::Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(job));
            let wall = t0.elapsed().as_secs_f64();
            *cells[i].lock().unwrap() = match outcome {
                Ok(value) => CellState::Done(wall, value),
                Err(payload) => CellState::Panicked(panic_text(payload.as_ref())),
            };
        };

        if threads <= 1 {
            // serial fast path: same per-job harness, calling thread only
            worker(0);
        } else {
            crossbeam::scope(|scope| {
                for t in 0..threads {
                    scope.spawn(move |_| worker(t));
                }
            })
            .expect("slate workers never propagate panics");
        }

        // ---- ordered reduction ---------------------------------------
        let mut out = Vec::with_capacity(n_jobs);
        for (cell, label) in cells.into_iter().zip(labels) {
            match cell.into_inner().unwrap() {
                CellState::Done(wall_secs, value) => out.push(JobResult {
                    label,
                    wall_secs,
                    value,
                }),
                CellState::Panicked(message) => return Err(PanickedJob { label, message }),
                CellState::Pending(_) | CellState::Running => {
                    unreachable!("every claimed job stores an outcome before the scope joins")
                }
            }
        }
        Ok(out)
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Thread-count knob
// ---------------------------------------------------------------------

/// Process-wide `--threads` override; 0 = unset.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pin the slate thread count for this process (the binaries' `--threads`
/// flag). `0` clears the override.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolve the slate thread count: [`set_threads`] override, else the
/// `BENCH_THREADS` environment variable, else available parallelism.
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::SeqCst) {
        0 => {}
        n => return n,
    }
    if let Some(n) = std::env::var("BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

/// Consume a `--threads N` flag from a binary's argument list, pinning
/// the process-wide knob; returns the remaining arguments. Exits with a
/// usage error on a malformed value, matching the binaries' other flags.
pub fn parse_threads_flag(args: Vec<String>) -> Vec<String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let n: usize = it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                });
            set_threads(n);
        } else {
            rest.push(a);
        }
    }
    rest
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Ordered reduction under adversarial durations: the job submitted
    /// first is by far the slowest, so with several workers it *finishes*
    /// last — results must still come back in submission order.
    #[test]
    fn long_first_job_still_reduces_in_submission_order() {
        let mut slate = Slate::new();
        slate.push("slow", || {
            std::thread::sleep(Duration::from_millis(80));
            0u64
        });
        for i in 1..8u64 {
            slate.push(format!("fast{i}"), move || {
                std::thread::sleep(Duration::from_millis(1));
                i
            });
        }
        let results = slate.run(4).expect("no panics");
        let values: Vec<u64> = results.iter().map(|r| r.value).collect();
        assert_eq!(values, (0..8).collect::<Vec<u64>>());
        assert_eq!(results[0].label, "slow");
        assert!(results.iter().all(|r| r.wall_secs >= 0.0));
    }

    /// A panicking job fails the slate with its label — and does not
    /// deadlock the scope or stop its siblings from completing.
    #[test]
    fn panicking_job_fails_slate_with_label_without_deadlock() {
        use std::sync::atomic::AtomicU64;
        let completed = AtomicU64::new(0);
        let mut slate = Slate::new();
        slate.push("ok-before", || {
            completed.fetch_add(1, Ordering::SeqCst);
        });
        slate.push("boom", || panic!("injected failure"));
        for i in 0..6 {
            slate.push(format!("ok-after{i}"), || {
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }
        let err = slate.run(3).expect_err("slate must fail");
        assert_eq!(err.label, "boom");
        assert!(err.message.contains("injected failure"));
        // the panic did not take the rest of the slate down with it
        assert_eq!(completed.load(Ordering::SeqCst), 7);
    }

    /// Several panics report the first in *submission* order, not in
    /// completion order.
    #[test]
    fn first_panic_by_submission_order_wins() {
        let mut slate = Slate::new();
        slate.push("late-panic-submitted-first", || {
            std::thread::sleep(Duration::from_millis(40));
            panic!("first submitted");
        });
        slate.push("early-panic-submitted-second", || -> () {
            panic!("finishes first")
        });
        let err = slate.run(2).expect_err("slate must fail");
        assert_eq!(err.label, "late-panic-submitted-first");
    }

    #[test]
    fn empty_slate_returns_empty() {
        let slate: Slate<u32> = Slate::new();
        assert!(slate.is_empty());
        let results = slate.run(8).expect("empty slate cannot fail");
        assert!(results.is_empty());
    }

    #[test]
    fn single_job_runs_on_any_thread_count() {
        for threads in [1, 2, 8] {
            let mut slate = Slate::new();
            slate.push("only", || 42u32);
            let results = slate.run(threads).expect("no panics");
            assert_eq!(results.len(), 1);
            assert_eq!(results[0].value, 42);
            assert_eq!(results[0].label, "only");
        }
    }

    /// Serial (threads = 1) and parallel runs produce the same ordered
    /// (label, value) sequence.
    #[test]
    fn serial_and_parallel_reduce_identically() {
        let build = || {
            let mut slate = Slate::new();
            for i in 0..16u64 {
                // reverse-staggered durations: late submissions finish early
                slate.push(format!("j{i}"), move || {
                    std::thread::sleep(Duration::from_millis(16 - i));
                    i * i
                });
            }
            slate
        };
        let serial: Vec<(String, u64)> = build()
            .run(1)
            .expect("no panics")
            .into_iter()
            .map(|r| (r.label, r.value))
            .collect();
        for threads in [2, 3, 8] {
            let parallel: Vec<(String, u64)> = build()
                .run(threads)
                .expect("no panics")
                .into_iter()
                .map(|r| (r.label, r.value))
                .collect();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }
}
