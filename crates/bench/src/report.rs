//! Machine-readable benchmark reports: `BENCH_<name>.json`.
//!
//! Every figure binary (and the `regress` harness) distills its run into a
//! [`BenchReport`]: a schema-versioned map of *series → scale → metrics*
//! plus the provenance needed to reproduce it (sim seed, a hash of the
//! cluster config, host wall time). Reports round-trip through a small
//! hand-rolled JSON layer — the workspace builds offline against vendored
//! stand-ins, so there is no serde; the subset implemented here (objects,
//! strings, numbers) is exactly what the schema needs.
//!
//! Integer fields (seed, config hash) routinely exceed 2^53, so the parser
//! keeps raw number tokens and converts on demand instead of routing
//! everything through `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Bump when the JSON layout changes shape; [`BenchReport::from_json`]
/// rejects mismatches so stale baselines fail loudly instead of diffing
/// garbage.
pub const SCHEMA_VERSION: u64 = 1;

/// Named scalar metrics for one (series, scale) cell, e.g.
/// `{"write_gib_s": 34.0, "read_gib_s": 108.0}`.
pub type Metrics = BTreeMap<String, f64>;

/// One benchmark run, distilled to the numbers worth tracking across PRs.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema: u64,
    /// Benchmark name; the file is `BENCH_<name>.json`.
    pub name: String,
    /// Root sim seed the run used.
    pub seed: u64,
    /// FNV-1a hash of the cluster config ([`config_hash`]); 0 when the
    /// benchmark spans several configs.
    pub config_hash: u64,
    /// Host wall-clock seconds for the whole run (informational only —
    /// never compared against baselines).
    pub wall_secs: f64,
    /// series label → scale (client nodes; 0 for scale-less rows) → metrics.
    pub series: BTreeMap<String, BTreeMap<u32, Metrics>>,
}

impl BenchReport {
    /// Empty report for `name`, stamped with the run's root seed.
    pub fn new(name: &str, seed: u64) -> Self {
        BenchReport {
            schema: SCHEMA_VERSION,
            name: name.to_string(),
            seed,
            config_hash: 0,
            wall_secs: 0.0,
            series: BTreeMap::new(),
        }
    }

    /// Record one metric value for a (series, scale) cell.
    pub fn record(&mut self, series: &str, scale: u32, metric: &str, value: f64) {
        self.series
            .entry(series.to_string())
            .or_default()
            .entry(scale)
            .or_default()
            .insert(metric.to_string(), value);
    }

    /// Look up one metric value.
    pub fn get(&self, series: &str, scale: u32, metric: &str) -> Option<f64> {
        self.series.get(series)?.get(&scale)?.get(metric).copied()
    }

    /// Every (series, scale, metric) triple, in deterministic order.
    pub fn cells(&self) -> Vec<(&str, u32, &str, f64)> {
        let mut out = Vec::new();
        for (s, scales) in &self.series {
            for (&n, metrics) in scales {
                for (m, &v) in metrics {
                    out.push((s.as_str(), n, m.as_str(), v));
                }
            }
        }
        out
    }

    /// Serialize to pretty-printed JSON (stable key order — `BTreeMap`
    /// everywhere — so diffs of committed baselines stay readable).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", self.schema);
        let _ = writeln!(s, "  \"name\": {},", quote(&self.name));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"config_hash\": {},", self.config_hash);
        let _ = writeln!(s, "  \"wall_secs\": {},", fmt_f64(self.wall_secs));
        s.push_str("  \"series\": {");
        let mut first_series = true;
        for (name, scales) in &self.series {
            if !first_series {
                s.push(',');
            }
            first_series = false;
            let _ = write!(s, "\n    {}: {{", quote(name));
            let mut first_scale = true;
            for (scale, metrics) in scales {
                if !first_scale {
                    s.push(',');
                }
                first_scale = false;
                let _ = write!(s, "\n      \"{scale}\": {{");
                let mut first_metric = true;
                for (metric, value) in metrics {
                    if !first_metric {
                        s.push(',');
                    }
                    first_metric = false;
                    let _ = write!(s, "\n        {}: {}", quote(metric), fmt_f64(*value));
                }
                s.push_str("\n      }");
            }
            s.push_str("\n    }");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Parse a report back from JSON; schema mismatches and malformed
    /// documents are errors, unknown top-level keys are ignored (forward
    /// compatibility).
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = Json::parse(text)?;
        let obj = root.as_object("document")?;
        let schema = get_key(obj, "schema")?.as_u64("schema")?;
        if schema != SCHEMA_VERSION {
            return Err(JsonError(format!(
                "schema version {schema} != supported {SCHEMA_VERSION}"
            )));
        }
        let mut report = BenchReport::new(
            get_key(obj, "name")?.as_str("name")?,
            get_key(obj, "seed")?.as_u64("seed")?,
        );
        report.config_hash = get_key(obj, "config_hash")?.as_u64("config_hash")?;
        report.wall_secs = get_key(obj, "wall_secs")?.as_f64("wall_secs")?;
        for (series, scales) in get_key(obj, "series")?.as_object("series")? {
            for (scale, metrics) in scales.as_object(series)? {
                let scale: u32 = scale
                    .parse()
                    .map_err(|_| JsonError(format!("bad scale key {scale:?} in {series:?}")))?;
                for (metric, value) in metrics.as_object(series)? {
                    report.record(series, scale, metric, value.as_f64(metric)?);
                }
            }
        }
        Ok(report)
    }

    /// Write `BENCH_<name>.json` under `dir`; returns the path written.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Load `BENCH_<name>.json` from `dir`.
    pub fn load(dir: &Path, name: &str) -> Result<Self, JsonError> {
        let path = dir.join(format!("BENCH_{name}.json"));
        let text = std::fs::read_to_string(&path)
            .map_err(|e| JsonError(format!("{}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

/// Shortest `f64` representation that round-trips (Rust's `Display`),
/// with JSON-invalid specials mapped to null-free sentinels.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // "1" is a valid JSON number but keep integral floats obviously
        // float-typed for human readers.
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // NaN/inf are not JSON; encode out-of-band (comparison treats a
        // huge sentinel as "broken", which is what a NaN bandwidth is).
        "-1e308".to_string()
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse/shape error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Minimal JSON value. Numbers keep their raw token so 64-bit integers
/// (seeds, hashes) survive without a trip through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Raw number token, e.g. `-12.5e3` or `18446744073709551615`.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

fn get_key<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, JsonError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| JsonError(format!("missing key {key:?}")))
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    fn as_object<'a>(&'a self, what: &str) -> Result<&'a [(String, Json)], JsonError> {
        match self {
            Json::Obj(kv) => Ok(kv),
            other => Err(JsonError(format!("{what}: expected object, got {other:?}"))),
        }
    }

    fn as_str<'a>(&'a self, what: &str) -> Result<&'a str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError(format!("{what}: expected string, got {other:?}"))),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, JsonError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| JsonError(format!("{what}: bad number {raw:?}"))),
            other => Err(JsonError(format!("{what}: expected number, got {other:?}"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, JsonError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| JsonError(format!("{what}: bad integer {raw:?}"))),
            other => Err(JsonError(format!(
                "{what}: expected integer, got {other:?}"
            ))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected literal {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut kv = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kv));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            kv.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kv));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy the full UTF-8 sequence
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        // validate once so downstream conversions can't see garbage
        raw.parse::<f64>()
            .map_err(|_| self.err(&format!("bad number {raw:?}")))?;
        Ok(Json::Num(raw.to_string()))
    }
}

// ---------------------------------------------------------------------
// Recording sinks: reports and parallel-job fragments
// ---------------------------------------------------------------------

/// Anything metrics can be recorded into: a [`BenchReport`] directly
/// (the serial path) or a [`Fragment`] produced by one parallel job and
/// merged later. Figure runners take `&mut impl Record`, so the same
/// runner body serves both execution modes.
pub trait Record {
    /// Record one metric value for a (series, scale) cell.
    fn record(&mut self, series: &str, scale: u32, metric: &str, value: f64);
    /// Stamp the testbed config hash ([`config_hash`]).
    fn set_config_hash(&mut self, hash: u64);
}

impl Record for BenchReport {
    fn record(&mut self, series: &str, scale: u32, metric: &str, value: f64) {
        BenchReport::record(self, series, scale, metric, value);
    }
    fn set_config_hash(&mut self, hash: u64) {
        self.config_hash = hash;
    }
}

/// The ordered batch of records one parallel job produces. Fragments are
/// replayed into a [`BenchReport`] **in job submission order**, so a
/// slate reduced on any thread count serializes to the same bytes as the
/// serial run. (Cells land in `BTreeMap`s keyed by series/scale/metric,
/// so the replay order only matters if two jobs wrote the same cell —
/// the ordered merge makes even that case schedule-independent.)
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Fragment {
    /// `(series, scale, metric, value)` in record order.
    pub records: Vec<(String, u32, String, f64)>,
    /// Config hash, when the job knows the testbed it ran on.
    pub config_hash: Option<u64>,
}

impl Fragment {
    /// Empty fragment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replay this fragment's records (and config hash, if any) into a
    /// report or another sink.
    pub fn replay_into(&self, sink: &mut impl Record) {
        for (series, scale, metric, value) in &self.records {
            sink.record(series, *scale, metric, *value);
        }
        if let Some(h) = self.config_hash {
            sink.set_config_hash(h);
        }
    }
}

impl Record for Fragment {
    fn record(&mut self, series: &str, scale: u32, metric: &str, value: f64) {
        self.records
            .push((series.to_string(), scale, metric.to_string(), value));
    }
    fn set_config_hash(&mut self, hash: u64) {
        self.config_hash = Some(hash);
    }
}

/// FNV-1a over the config's `Debug` rendering: any field change — media
/// timings, fabric widths, engine knobs — lands in the hash, so baselines
/// carry which testbed produced them without serializing every field.
pub fn config_hash(cfg: &daos_core::ClusterConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

/// Stable 64-bit FNV-1a (not `DefaultHasher`, whose output may change
/// across Rust releases — these hashes are committed in baselines).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
