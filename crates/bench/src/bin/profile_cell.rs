//! Temporary profiling harness: one 16-node figure cell under a wall
//! clock, for gprofng / timing comparisons while optimizing the DES core.

use daos_bench::figures::{FIG1_SEED, PPN};
use daos_bench::{run_point, ExperimentPoint};
use daos_ior::Api;
use daos_placement::ObjectClass;

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    // simlint: allow(D02) profiling harness wall clock; never feeds the simulation
    let t0 = std::time::Instant::now();
    let m = run_point(
        ExperimentPoint {
            api: Api::Dfs,
            oclass: ObjectClass::S2,
            client_nodes: nodes,
        },
        true,
        PPN,
        FIG1_SEED,
        1,
    );
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "cell DFS-S2/{}n: write {:.3} GiB/s read {:.3} GiB/s wall {:.3}s",
        nodes,
        m.report.write_gib_s(),
        m.report.read_gib_s(),
        wall
    );
}
