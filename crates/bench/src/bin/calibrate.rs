//! Calibration probe: prints the key orderings the paper reports, for
//! tuning the cost model. Not one of the figure reproductions (no shape
//! checks), but it still emits `BENCH_calibrate.json` so a calibration
//! pass can be diffed against an earlier one.

use daos_bench::exec;
use daos_bench::figures::{figure_apis, grid_points, sweep_repeats};
use daos_bench::{print_csv, run_sweep, Reporter};
use daos_placement::ObjectClass;

fn main() {
    let args = exec::parse_threads_flag(std::env::args().skip(1).collect());
    let classes = [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX];
    let nodes = [1u32, 4, 16];
    let fpp = args.first().map(String::as_str) != Some("shared");
    let mut rep = Reporter::new("calibrate", 0xCA11B);
    let points = grid_points(&figure_apis(), &classes, &nodes);
    let ms = run_sweep(points, fpp, 16, 0xCA11B, sweep_repeats());
    print_csv(
        &format!("calibration ({})", if fpp { "fpp" } else { "shared" }),
        &ms,
    );
    for m in &ms {
        rep.record(
            &m.series(),
            m.point.client_nodes,
            "write_gib_s",
            m.report.write_gib_s(),
        );
        rep.record(
            &m.series(),
            m.point.client_nodes,
            "read_gib_s",
            m.report.read_gib_s(),
        );
    }
    rep.finish();
}
