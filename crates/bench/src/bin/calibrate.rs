//! Calibration probe: prints the key orderings the paper reports, for
//! tuning the cost model. Not one of the figure reproductions.

use daos_bench::{print_csv, run_sweep, ExperimentPoint};
use daos_ior::Api;
use daos_placement::ObjectClass;

fn main() {
    let apis = [Api::Dfs, Api::Mpiio { collective: false }, Api::Hdf5];
    let classes = [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX];
    let nodes = [1u32, 4, 16];
    let mut points = Vec::new();
    for api in apis {
        for class in classes {
            for n in nodes {
                points.push(ExperimentPoint {
                    api,
                    oclass: class,
                    client_nodes: n,
                });
            }
        }
    }
    let fpp = std::env::args().nth(1).as_deref() != Some("shared");
    let ms = run_sweep(points, fpp, 16, 0xCA11B);
    print_csv(
        &format!("calibration ({})", if fpp { "fpp" } else { "shared" }),
        &ms,
    );
}
