//! **Data-protection ablation**: what replication and erasure coding (the
//! "advanced data protection" of paper §II) cost relative to the unprotected
//! sharded classes the paper benchmarks, plus degraded-read performance
//! after a target failure.
//!
//! ```text
//! cargo run -p daos-bench --release --bin protection_sweep
//! ```

use daos_bench::{paper_cluster, paper_params, Reporter};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed};
use daos_placement::ObjectClass;
use daos_sim::Sim;

const NODES: u32 = 8;
const PPN: u32 = 16;

fn point(class: ObjectClass) -> (f64, f64) {
    let mut sim = Sim::new(0x930);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(NODES),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        let mut p = paper_params(Api::Dfs, class, true, PPN);
        p.block_size = 16 << 20;
        let rep = run(&sim, &env, p).await.expect("run");
        (rep.write_gib_s(), rep.read_gib_s())
    })
}

/// Degraded read: write through stable handles, exclude targets, read the
/// *same* handles (layout cached pre-failure, like an application holding
/// open files through a failure).
fn degraded_point(class: ObjectClass, exclude: &[u32]) -> (f64, f64) {
    use daos_placement::ObjectId;
    use daos_sim::executor::join_all;
    use daos_sim::units::{gib_per_sec, MIB};
    use daos_vos::Payload;
    let exclude = exclude.to_vec();
    let mut sim = Sim::new(0x931);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(NODES),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        let ranks = NODES * PPN;
        let per_rank = 16 * MIB;
        let arrays: Vec<_> = (0..ranks)
            .map(|r| {
                env.containers[(r / PPN) as usize]
                    .object(ObjectId::new(0xDE6, r as u64), class)
                    .array(MIB)
            })
            .collect();
        // healthy write + read
        let futs: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(r, a)| {
                let a = a.clone();
                let sim = sim.clone();
                async move {
                    for k in 0..per_rank / MIB {
                        a.write(&sim, k * MIB, Payload::pattern(r as u64, MIB))
                            .await
                            .unwrap();
                    }
                }
            })
            .collect();
        join_all(&sim, futs).await;
        let read_all = |arrays: Vec<daos_core::ArrayHandle>, sim: Sim| async move {
            let t0 = sim.now();
            let futs: Vec<_> = arrays
                .into_iter()
                .map(|a| {
                    let sim = sim.clone();
                    async move {
                        for k in 0..per_rank / MIB {
                            a.read(&sim, k * MIB, MIB).await.unwrap();
                        }
                    }
                })
                .collect();
            join_all(&sim, futs).await;
            gib_per_sec(ranks as u64 * per_rank, (sim.now() - t0).as_secs_f64())
        };
        let healthy = read_all(arrays.clone(), sim.clone()).await;
        for &t in &exclude {
            env.cluster.exclude_target(t);
        }
        let degraded = read_all(arrays, sim.clone()).await;
        (healthy, degraded)
    })
}

fn main() {
    let mut rep = Reporter::new("protection_sweep", 0x930);
    println!("# protection ablation: {NODES} client nodes, {PPN} ppn, DFS, fpp");
    println!("class,write_gib_s,read_gib_s,amplification");
    let classes = [
        ObjectClass::S2,
        ObjectClass::SX,
        ObjectClass::RP_2GX,
        ObjectClass::Replicated {
            replicas: 3,
            groups: None,
        },
        ObjectClass::EC_2P1GX,
        ObjectClass::EC_4P2GX,
    ];
    let mut healthy = Vec::new();
    for class in classes {
        let (w, r) = point(class);
        println!("{class},{w:.3},{r:.3},{:.2}", class.write_amplification());
        rep.record(&class.to_string(), NODES, "write_gib_s", w);
        rep.record(&class.to_string(), NODES, "read_gib_s", r);
        healthy.push((class, w, r));
    }

    println!("\n# degraded reads (same handles, one target excluded mid-run)");
    println!("class,healthy_read_gib_s,degraded_read_gib_s");
    let mut degraded = Vec::new();
    for class in [ObjectClass::RP_2GX, ObjectClass::EC_2P1GX] {
        let (h, d) = degraded_point(class, &[0]);
        println!("{class},{h:.3},{d:.3}");
        rep.record(&format!("{class}/degraded"), NODES, "healthy_read_gib_s", h);
        rep.record(
            &format!("{class}/degraded"),
            NODES,
            "degraded_read_gib_s",
            d,
        );
        degraded.push((class, h, d));
    }

    let w_of = |c: ObjectClass| healthy.iter().find(|(x, _, _)| *x == c).unwrap().1;
    rep.check(
        "replication costs ~its amplification factor in write bandwidth",
        w_of(ObjectClass::RP_2GX) < 0.75 * w_of(ObjectClass::SX)
            && w_of(ObjectClass::RP_2GX) > 0.3 * w_of(ObjectClass::SX),
    );
    rep.check(
        // real DAOS guidance: EC suits large transfers; per-stripe parity
        // rounds make it slower than replication below saturation even at
        // lower amplification
        "protection ordering: S2 > EC_2P1 and RP_3 is the most expensive",
        w_of(ObjectClass::S2) > w_of(ObjectClass::EC_2P1GX)
            && w_of(ObjectClass::Replicated {
                replicas: 3,
                groups: None,
            }) < w_of(ObjectClass::RP_2GX),
    );
    rep.check(
        "degraded reads stay within 2.5x of healthy (redundancy works)",
        degraded.iter().all(|(_, h, d)| *d > 0.0 && h / d < 2.5),
    );
    rep.finish();
}
