//! **Benchmark regression harness** — the CI perf gate.
//!
//! Runs a reduced-scale sweep of every figure the paper's findings rest
//! on, diffs each fresh `BENCH_<name>.json` against the committed
//! baselines in `results/baselines/`, evaluates the R1–R5 invariants and
//! the robustness timeline checks, prints a per-metric drift table, and
//! exits nonzero on any tolerance or invariant violation. The simulator
//! is deterministic, so an unchanged tree reproduces its baselines
//! exactly; any PR that moves a figure must either stay inside the
//! tolerance bands or update the baselines *intentionally*.
//!
//! ```text
//! cargo run -p daos-bench --release --bin regress             # gate
//! cargo run -p daos-bench --release --bin regress -- --update # new baselines
//! cargo run -p daos-bench --release --bin regress -- --verbose
//! cargo run -p daos-bench --release --bin regress -- --compare-only
//! ```
//!
//! `--compare-only` skips the sweep and re-diffs the fresh reports
//! already sitting in the output dir (from a previous run) against the
//! baselines — handy for iterating on tolerances or baselines without
//! paying for simulations. Timeline *shape* checks need the live runs,
//! so that mode covers drift + invariants + checksum ratios only.
//!
//! Fresh reports and the drift table are also written to
//! `$DAOS_BENCH_OUT` (default `target/regress/`) so CI can upload them as
//! artifacts.

use std::path::{Path, PathBuf};
use std::time::Instant;

use daos_bench::baseline::{compare, format_drift_table, violations, TolerancePolicy};
use daos_bench::figures::{
    check_fault_timeline, check_rot_timeline, csum_overhead_point, fault_timeline,
    record_fault_timeline, record_rot_timeline, rot_timeline, run_fig1, run_fig2, run_io500,
    run_pfs_contrast, REDUCED_NODES, REDUCED_REPEATS,
};
use daos_bench::invariants::evaluate_all;
use daos_bench::report::BenchReport;
use daos_bench::Reporter;
use daos_placement::ObjectClass;
use daos_sim::units::MIB;

const BASELINE_DIR: &str = "results/baselines";

fn out_dir() -> PathBuf {
    std::env::var("DAOS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/regress"))
}

/// Run one reduced-scale figure, stamping its wall time.
fn timed(name: &str, seed: u64, f: impl FnOnce(&mut BenchReport)) -> BenchReport {
    // simlint: allow(D02) wall-time provenance for the report header; never feeds back into the simulation
    let t0 = Instant::now();
    let mut report = BenchReport::new(name, seed);
    eprintln!("regress: running {name} (reduced scale)...");
    f(&mut report);
    report.wall_secs = t0.elapsed().as_secs_f64();
    report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args.iter().any(|a| a == "--update");
    let verbose = args.iter().any(|a| a == "--verbose");
    let compare_only = args.iter().any(|a| a == "--compare-only");
    if update && compare_only {
        eprintln!("regress: --update needs a live sweep; drop --compare-only");
        std::process::exit(2);
    }
    let tol = {
        let mut t = TolerancePolicy::standard();
        if let Some(i) = args.iter().position(|a| a == "--tol") {
            let pct: f64 = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("regress: bad --tol (percent)");
                    std::process::exit(2);
                });
            t.default_rel = pct / 100.0;
        }
        t
    };

    // gating ledger for the invariant + robustness shape checks; the
    // drift comparison below contributes separately
    let mut rep = Reporter::new("regress", 0);

    // ---- reduced-scale sweep of every figure -------------------------
    let out = out_dir();
    let mut fault_rows = Vec::new();
    let mut rot_rows = Vec::new();
    let (fig1, fig2, pfs, io500, fault, scrub);
    if compare_only {
        let load = |name: &str| {
            BenchReport::load(&out, name).unwrap_or_else(|e| {
                eprintln!(
                    "regress: --compare-only needs a prior run's reports in {}: {e}",
                    out.display()
                );
                std::process::exit(2);
            })
        };
        fig1 = load("fig1_fpp");
        fig2 = load("fig2_shared");
        pfs = load("pfs_contrast");
        io500 = load("io500");
        fault = load("fault_sweep");
        scrub = load("scrub_sweep");
    } else {
        fig1 = timed("fig1_fpp", 0xF161, |r| {
            run_fig1(r, &REDUCED_NODES, REDUCED_REPEATS);
        });
        fig2 = timed("fig2_shared", 0xF162, |r| {
            run_fig2(r, &REDUCED_NODES, REDUCED_REPEATS);
        });
        pfs = timed("pfs_contrast", 0x1F5, |r| {
            run_pfs_contrast(r, &REDUCED_NODES);
        });
        io500 = timed("io500", 0x10500, |r| {
            run_io500(r, 4, 8);
        });
        fault = timed("fault_sweep", 0xFA17, |r| {
            let t = fault_timeline(ObjectClass::RP_2GX, 2, 4, 4 * MIB);
            record_fault_timeline(r, &t);
            fault_rows.push(t);
        });
        scrub = timed("scrub_sweep", 0x5C2B, |r| {
            for fpp in [true, false] {
                let label = if fpp {
                    "easy-fpp-1m"
                } else {
                    "hard-shared-64k"
                };
                let (w_on, r_on) = csum_overhead_point(true, fpp, 2, 4);
                let (w_off, r_off) = csum_overhead_point(false, fpp, 2, 4);
                for (metric, v) in [
                    ("write_csum_on", w_on),
                    ("write_csum_off", w_off),
                    ("read_csum_on", r_on),
                    ("read_csum_off", r_off),
                ] {
                    r.record(label, 2, metric, v);
                }
            }
            for scrub_mode in [false, true] {
                let t = rot_timeline(ObjectClass::RP_2GX, scrub_mode, 0x5C2B ^ scrub_mode as u64);
                record_rot_timeline(r, &t);
                rot_rows.push(t);
            }
        });
    }
    let fresh = [&fig1, &fig2, &pfs, &io500, &fault, &scrub];

    // ---- persist fresh reports for CI artifacts ----------------------
    if !compare_only {
        for report in fresh {
            if let Err(e) = report.write_to(&out) {
                eprintln!("regress: cannot write {}: {e}", out.display());
                std::process::exit(2);
            }
        }
    }

    if update {
        let dir = Path::new(BASELINE_DIR);
        for report in fresh {
            match report.write_to(dir) {
                Ok(path) => println!("baseline updated: {}", path.display()),
                Err(e) => {
                    eprintln!("regress: cannot write baseline: {e}");
                    std::process::exit(2);
                }
            }
        }
        println!("\nbaselines regenerated — commit {BASELINE_DIR}/BENCH_*.json");
        std::process::exit(0);
    }

    // ---- drift vs committed baselines --------------------------------
    let mut drift_text = String::new();
    let mut drift_violations = 0usize;
    println!(
        "== drift vs {BASELINE_DIR} (default tolerance ±{:.0}%) ==",
        tol.default_rel * 100.0
    );
    for report in fresh {
        match BenchReport::load(Path::new(BASELINE_DIR), &report.name) {
            Ok(base) => {
                if base.seed != report.seed || base.config_hash != report.config_hash {
                    println!(
                        "-- {}: provenance changed (seed {} -> {}, config_hash {:#x} -> {:#x}) — update baselines intentionally --",
                        report.name, base.seed, report.seed, base.config_hash, report.config_hash
                    );
                    drift_violations += 1;
                }
                let drifts = compare(report, &base, &tol);
                drift_violations += violations(&drifts);
                let table = format_drift_table(&report.name, &drifts, verbose);
                print!("{table}");
                drift_text.push_str(&format_drift_table(&report.name, &drifts, true));
            }
            Err(e) => {
                println!(
                    "-- {}: no baseline ({e}) — run `regress --update` and commit --",
                    report.name
                );
                drift_violations += 1;
            }
        }
    }
    let _ = std::fs::write(out.join("drift.txt"), &drift_text);

    // ---- the paper's R1-R5 invariants --------------------------------
    println!("\n== paper invariants (R1-R5) ==");
    for inv in evaluate_all(&fig1, &fig2, &pfs) {
        rep.check(
            &format!("{}: {} — {}", inv.id, inv.desc, inv.detail),
            inv.pass,
        );
    }

    // ---- robustness shape checks (reduced fault + scrub timelines) ---
    println!("\n== robustness checks ==");
    if compare_only {
        println!("(timeline shape checks skipped: no live sweep in --compare-only)");
    }
    for t in &fault_rows {
        check_fault_timeline(&mut rep, t);
    }
    for t in &rot_rows {
        check_rot_timeline(&mut rep, t);
    }
    for report in [&scrub] {
        for label in ["easy-fpp-1m", "hard-shared-64k"] {
            for phase in ["write", "read"] {
                let on = report.get(label, 2, &format!("{phase}_csum_on"));
                let off = report.get(label, 2, &format!("{phase}_csum_off"));
                let ratio = match (on, off) {
                    (Some(on), Some(off)) if off > 0.0 => on / off,
                    _ => 0.0,
                };
                rep.check(
                    &format!(
                        "{label}: csum-on {phase} bandwidth within 10% of csum-off ({ratio:.3})"
                    ),
                    ratio >= 0.90,
                );
            }
        }
    }

    // ---- verdict -----------------------------------------------------
    let check_failures = rep.failures();
    println!(
        "\nregress: {drift_violations} drift violation(s), {check_failures} invariant/shape failure(s)"
    );
    if drift_violations > 0 || check_failures > 0 {
        eprintln!(
            "regress: FAILED — see drift table above (artifacts in {})",
            out.display()
        );
        std::process::exit(1);
    }
    println!("regress: OK — figures match baselines and all invariants hold");
}
