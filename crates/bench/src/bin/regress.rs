//! **Benchmark regression harness** — the CI perf gate.
//!
//! Runs a reduced-scale sweep of every figure the paper's findings rest
//! on — as one parallel job slate ([`daos_bench::slate`]) — diffs each
//! fresh `BENCH_<name>.json` against the committed baselines in
//! `results/baselines/`, evaluates the R1–R5 invariants and the
//! robustness timeline checks, prints a per-metric drift table, and
//! exits nonzero on any tolerance or invariant violation. The simulator
//! is deterministic and the slate reduces in submission order, so an
//! unchanged tree reproduces its baselines exactly *at any thread
//! count*; any PR that moves a figure must either stay inside the
//! tolerance bands or update the baselines *intentionally*.
//!
//! ```text
//! cargo run -p daos-bench --release --bin regress               # gate
//! cargo run -p daos-bench --release --bin regress -- --update   # new baselines
//! cargo run -p daos-bench --release --bin regress -- --threads 1  # serial
//! cargo run -p daos-bench --release --bin regress -- --verbose
//! cargo run -p daos-bench --release --bin regress -- --compare-only
//! cargo run -p daos-bench --release --bin regress -- --nightly  # + scale tier
//! ```
//!
//! `--nightly` adds the beyond-paper scale tier: the 64–512-node DFS
//! sweep (`BENCH_scale.json`), its drift comparison, and the R2x/R5x
//! extension invariants. It is far heavier than the PR gate and runs
//! from CI's scheduled job, not on every push.
//!
//! `--update` refuses to regenerate baselines from a dirty working tree
//! (their provenance must be reproducible from a commit); pass
//! `--allow-dirty` to override while iterating locally.
//!
//! `--threads N` (or `BENCH_THREADS`) pins the slate width; the default
//! is the host's available parallelism and `1` reproduces the serial
//! gate exactly. Per-job wall times, the serial-equivalent total and the
//! measured speedup land in `timing.txt` and `BENCH_regress.json` in the
//! output dir — runner overhead regressions are themselves visible.
//!
//! `--compare-only` skips the sweep and re-diffs the fresh reports
//! already sitting in the output dir (from a previous run) against the
//! baselines — handy for iterating on tolerances or baselines without
//! paying for simulations. Timeline *shape* checks need the live runs,
//! so that mode covers drift + invariants + checksum ratios only.
//!
//! Fresh reports and the drift table are also written to
//! `$DAOS_BENCH_OUT` (default `target/regress/`) so CI can upload them as
//! artifacts.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use daos_bench::baseline::{compare, format_drift_table, violations, TolerancePolicy};
use daos_bench::exec;
use daos_bench::figures::{
    check_fault_timeline, check_rot_timeline, run_scale_sweep, SCALE_NODES, SCALE_SEED,
};
use daos_bench::invariants::{evaluate_all, evaluate_scale, evaluate_traffic};
use daos_bench::report::BenchReport;
use daos_bench::slate::{reduced, run_regress_slate, RegressRun};
use daos_bench::traffic::check_traffic_cell;
use daos_bench::Reporter;

const BASELINE_DIR: &str = "results/baselines";

/// Label prefixes that attribute slate jobs to their figure report, in
/// the gate's fixed report order.
const FIGURE_PREFIXES: [&str; 7] = [
    "fig1/", "fig2/", "pfs/", "io500/", "fault/", "scrub/", "traffic/",
];

fn out_dir() -> PathBuf {
    std::env::var("DAOS_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/regress"))
}

fn main() {
    let args: Vec<String> = exec::parse_threads_flag(std::env::args().skip(1).collect());
    let update = args.iter().any(|a| a == "--update");
    let verbose = args.iter().any(|a| a == "--verbose");
    let compare_only = args.iter().any(|a| a == "--compare-only");
    let nightly = args.iter().any(|a| a == "--nightly");
    let allow_dirty = args.iter().any(|a| a == "--allow-dirty");
    if update && compare_only {
        eprintln!("regress: --update needs a live sweep; drop --compare-only");
        std::process::exit(2);
    }
    if update && !allow_dirty {
        // Baselines are provenance: a figure someone can reproduce by
        // checking out the commit that shipped it. Refuse to mint them
        // from uncommitted state.
        match std::process::Command::new("git")
            .args(["status", "--porcelain", "--untracked-files=no"])
            .output()
        {
            Ok(o) if o.status.success() => {
                let dirty = String::from_utf8_lossy(&o.stdout);
                let dirty = dirty.trim();
                if !dirty.is_empty() {
                    eprintln!(
                        "regress: --update refused — the working tree has uncommitted changes:\n{dirty}"
                    );
                    eprintln!(
                        "regress: commit first so the new baselines are reproducible, or pass --allow-dirty"
                    );
                    std::process::exit(2);
                }
            }
            _ => eprintln!(
                "regress: warning: cannot check working-tree cleanliness (git unavailable); proceeding"
            ),
        }
    }
    let tol = {
        let mut t = TolerancePolicy::standard();
        if let Some(i) = args.iter().position(|a| a == "--tol") {
            let pct: f64 = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("regress: bad --tol (percent)");
                    std::process::exit(2);
                });
            t.default_rel = pct / 100.0;
        }
        t
    };

    // gating ledger for the invariant + robustness shape checks; the
    // drift comparison below contributes separately
    let mut rep = Reporter::new("regress", 0);

    // ---- reduced-scale sweep of every figure, one parallel slate -----
    let out = out_dir();
    let mut slate_run: Option<RegressRun> = None;
    let (fig1, fig2, pfs, io500, fault, scrub, traffic);
    if compare_only {
        let load = |name: &str| {
            BenchReport::load(&out, name).unwrap_or_else(|e| {
                eprintln!(
                    "regress: --compare-only needs a prior run's reports in {}: {e}",
                    out.display()
                );
                std::process::exit(2);
            })
        };
        fig1 = load("fig1_fpp");
        fig2 = load("fig2_shared");
        pfs = load("pfs_contrast");
        io500 = load("io500");
        fault = load("fault_sweep");
        scrub = load("scrub_sweep");
        traffic = load("traffic_sweep");
    } else {
        let threads = exec::threads();
        eprintln!("regress: running the reduced slate on {threads} thread(s)...");
        let mut run = run_regress_slate(&reduced(), threads);
        // stamp each fresh artifact with its figure's serial-equivalent
        // wall time (sum of its jobs) — informational provenance, never
        // compared against baselines
        let per_figure: Vec<f64> = FIGURE_PREFIXES
            .iter()
            .map(|p| run.figure_serial_secs(p))
            .collect();
        for (report, secs) in run.reports_mut().into_iter().zip(&per_figure) {
            report.wall_secs = *secs;
        }
        eprintln!(
            "regress: slate done — {} jobs, serial-equivalent {:.1}s, elapsed {:.1}s ({:.2}x on {} thread(s))",
            run.timings.len(),
            run.serial_secs,
            run.elapsed_secs,
            run.serial_secs / run.elapsed_secs.max(1e-9),
            run.threads,
        );
        fig1 = run.fig1.clone();
        fig2 = run.fig2.clone();
        pfs = run.pfs.clone();
        io500 = run.io500.clone();
        fault = run.fault.clone();
        scrub = run.scrub.clone();
        traffic = run.traffic.clone();
        slate_run = Some(run);
    }
    let fresh = [&fig1, &fig2, &pfs, &io500, &fault, &scrub, &traffic];

    // ---- persist fresh reports + runner timing for CI artifacts ------
    if let Some(run) = &slate_run {
        for report in fresh {
            if let Err(e) = report.write_to(&out) {
                eprintln!("regress: cannot write {}: {e}", out.display());
                std::process::exit(2);
            }
        }
        let mut timing = String::new();
        let _ = writeln!(
            timing,
            "threads={} jobs={} serial_secs={:.3} elapsed_secs={:.3} speedup={:.2}",
            run.threads,
            run.timings.len(),
            run.serial_secs,
            run.elapsed_secs,
            run.serial_secs / run.elapsed_secs.max(1e-9),
        );
        for (label, secs) in &run.timings {
            let _ = writeln!(timing, "{secs:10.3}s  {label}");
        }
        if let Err(e) = std::fs::create_dir_all(&out)
            .and_then(|_| std::fs::write(out.join("timing.txt"), &timing))
        {
            eprintln!("regress: cannot write timing.txt: {e}");
        }
        // runner provenance: the measured speedup is itself a tracked
        // artifact, so runner-overhead regressions show up in CI
        rep.record("runner", 0, "threads", run.threads as f64);
        rep.record("runner", 0, "jobs", run.timings.len() as f64);
        rep.record("runner", 0, "serial_secs", run.serial_secs);
        rep.record("runner", 0, "elapsed_secs", run.elapsed_secs);
        rep.record(
            "runner",
            0,
            "speedup",
            run.serial_secs / run.elapsed_secs.max(1e-9),
        );
    }

    // ---- nightly tier: the beyond-paper scale sweep ------------------
    let mut scale_report: Option<BenchReport> = None;
    if nightly {
        if compare_only {
            scale_report = Some(BenchReport::load(&out, "scale").unwrap_or_else(|e| {
                eprintln!(
                    "regress: --compare-only --nightly needs BENCH_scale.json in {}: {e}",
                    out.display()
                );
                std::process::exit(2);
            }));
        } else {
            let threads = exec::threads();
            eprintln!("regress: nightly tier — 64-512-node scale sweep on {threads} thread(s)...");
            // simlint: allow(D02) runner wall-time provenance; never compared against baselines
            let t0 = std::time::Instant::now();
            let mut scale = BenchReport::new("scale", SCALE_SEED);
            run_scale_sweep(&mut scale, &SCALE_NODES, threads, 1);
            scale.wall_secs = t0.elapsed().as_secs_f64();
            eprintln!("regress: scale sweep done in {:.1}s", scale.wall_secs);
            if let Err(e) = scale.write_to(&out) {
                eprintln!("regress: cannot write BENCH_scale.json: {e}");
                std::process::exit(2);
            }
            scale_report = Some(scale);
        }
    }

    if update {
        let dir = Path::new(BASELINE_DIR);
        let mut to_write: Vec<&BenchReport> = fresh.to_vec();
        if let Some(s) = &scale_report {
            to_write.push(s);
        }
        for report in to_write {
            match report.write_to(dir) {
                Ok(path) => println!("baseline updated: {}", path.display()),
                Err(e) => {
                    eprintln!("regress: cannot write baseline: {e}");
                    std::process::exit(2);
                }
            }
        }
        println!("\nbaselines regenerated — commit {BASELINE_DIR}/BENCH_*.json");
        std::process::exit(0);
    }

    // ---- drift vs committed baselines --------------------------------
    let mut drift_text = String::new();
    let mut drift_violations = 0usize;
    println!(
        "== drift vs {BASELINE_DIR} (default tolerance ±{:.0}%) ==",
        tol.default_rel * 100.0
    );
    let mut drift_targets: Vec<&BenchReport> = fresh.to_vec();
    if let Some(s) = &scale_report {
        drift_targets.push(s);
    }
    for report in drift_targets {
        match BenchReport::load(Path::new(BASELINE_DIR), &report.name) {
            Ok(base) => {
                if base.seed != report.seed || base.config_hash != report.config_hash {
                    println!(
                        "-- {}: provenance changed (seed {} -> {}, config_hash {:#x} -> {:#x}) — update baselines intentionally --",
                        report.name, base.seed, report.seed, base.config_hash, report.config_hash
                    );
                    drift_violations += 1;
                }
                let drifts = compare(report, &base, &tol);
                drift_violations += violations(&drifts);
                let table = format_drift_table(&report.name, &drifts, verbose);
                print!("{table}");
                drift_text.push_str(&format_drift_table(&report.name, &drifts, true));
            }
            Err(e) => {
                println!(
                    "-- {}: no baseline ({e}) — run `regress --update` and commit --",
                    report.name
                );
                drift_violations += 1;
            }
        }
    }
    let _ = std::fs::write(out.join("drift.txt"), &drift_text);

    // ---- the paper's R1-R5 invariants --------------------------------
    println!("\n== paper invariants (R1-R5) ==");
    for inv in evaluate_all(&fig1, &fig2, &pfs) {
        rep.check(
            &format!("{}: {} — {}", inv.id, inv.desc, inv.detail),
            inv.pass,
        );
    }

    // ---- the overload invariants R6-R8 -------------------------------
    println!("\n== overload invariants (R6-R8) ==");
    for inv in evaluate_traffic(&traffic) {
        rep.check(
            &format!("{}: {} — {}", inv.id, inv.desc, inv.detail),
            inv.pass,
        );
    }

    // ---- the beyond-paper scale extensions R2x/R5x (nightly) ---------
    if let Some(scale) = &scale_report {
        println!("\n== beyond-paper scale invariants (R2x, R5x) ==");
        for inv in evaluate_scale(scale) {
            rep.check(
                &format!("{}: {} — {}", inv.id, inv.desc, inv.detail),
                inv.pass,
            );
        }
    }

    // ---- robustness shape checks (reduced fault + scrub timelines) ---
    println!("\n== robustness checks ==");
    if compare_only {
        println!("(timeline shape checks skipped: no live sweep in --compare-only)");
    }
    if let Some(run) = &slate_run {
        for t in &run.fault_rows {
            check_fault_timeline(&mut rep, t);
        }
        for t in &run.rot_rows {
            check_rot_timeline(&mut rep, t);
        }
        for c in &run.traffic_rows {
            check_traffic_cell(&mut rep, c);
        }
    }
    for report in [&scrub] {
        for label in ["easy-fpp-1m", "hard-shared-64k"] {
            for phase in ["write", "read"] {
                let on = report.get(label, 2, &format!("{phase}_csum_on"));
                let off = report.get(label, 2, &format!("{phase}_csum_off"));
                let ratio = match (on, off) {
                    (Some(on), Some(off)) if off > 0.0 => on / off,
                    _ => 0.0,
                };
                rep.check(
                    &format!(
                        "{label}: csum-on {phase} bandwidth within 10% of csum-off ({ratio:.3})"
                    ),
                    ratio >= 0.90,
                );
            }
        }
    }

    // ---- verdict -----------------------------------------------------
    let check_failures = rep.failures();
    // the runner report (timing provenance) rides along as an artifact
    let runner_report = rep.into_report();
    if slate_run.is_some() {
        if let Err(e) = runner_report.write_to(&out) {
            eprintln!("regress: cannot write BENCH_regress.json: {e}");
        }
    }
    println!(
        "\nregress: {drift_violations} drift violation(s), {check_failures} invariant/shape failure(s)"
    );
    if drift_violations > 0 || check_failures > 0 {
        eprintln!(
            "regress: FAILED — see drift table above (artifacts in {})",
            out.display()
        );
        std::process::exit(1);
    }
    println!("regress: OK — figures match baselines and all invariants hold");
}
