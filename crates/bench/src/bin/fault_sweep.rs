//! **Fault sweep**: bandwidth before, during and after an engine failure,
//! for replicated and erasure-coded classes — the robustness counterpart
//! of `protection_sweep`. An engine crashes mid-run; the heartbeat
//! detector excludes it, clients ride through on retry + degraded reads,
//! the background rebuild re-protects the data, and the engine is finally
//! reintegrated.
//!
//! ```text
//! cargo run -p daos-bench --release --bin fault_sweep
//! ```

use std::rc::Rc;

use daos_bench::{check, finish, paper_cluster};
use daos_core::{Cluster, DaosClient, RetryPolicy};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::executor::join_all;
use daos_sim::fault::FaultAction;
use daos_sim::time::SimDuration;
use daos_sim::units::{gib_per_sec, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

const NODES: u32 = 4;
const PPN: u32 = 8;
const PER_RANK: u64 = 8 * MIB;
/// Engine to kill: outside the pool-service replica set (engines 0..3).
const VICTIM: usize = 5;

/// Bandwidths along the failure timeline, GiB/s.
struct Timeline {
    class: ObjectClass,
    write: f64,
    healthy: f64,
    during: f64,
    rebuilt: f64,
    reintegrated: f64,
    map_version: u32,
    chunks_repaired: u64,
}

fn sweep(class: ObjectClass) -> Timeline {
    let mut sim = Sim::new(0xFA17);
    sim.block_on(move |sim| async move {
        let cluster = Cluster::build(&sim, paper_cluster(NODES));
        let ranks = NODES * PPN;
        let clients: Vec<_> = (0..NODES)
            .map(|n| {
                DaosClient::new(Rc::clone(&cluster), n).with_retry(RetryPolicy {
                    // above healthy queueing delay at this load, small
                    // enough that a dead engine doesn't stall the sweep
                    rpc_timeout: SimDuration::from_ms(50),
                    base_backoff: SimDuration::from_ms(1),
                    max_backoff: SimDuration::from_ms(16),
                    max_attempts: 40,
                })
            })
            .collect();
        let pool = clients[0].connect(&sim).await.expect("connect");
        pool.create_container(&sim, 1).await.expect("container");
        // a container handle per client node so traffic originates from
        // every client rail, as in the IOR runs
        let mut conts = Vec::new();
        for c in &clients {
            let p = c.connect(&sim).await.expect("connect");
            conts.push(p.open_container(&sim, 1).await.expect("open"));
        }
        let arrays: Vec<_> = (0..ranks)
            .map(|r| {
                conts[(r / PPN) as usize]
                    .object(ObjectId::new(0xFA, r as u64), class)
                    .array(MIB)
            })
            .collect();

        // healthy write
        let t0 = sim.now();
        let futs: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(r, a)| {
                let a = a.clone();
                let sim = sim.clone();
                async move {
                    for k in 0..PER_RANK / MIB {
                        a.write(&sim, k * MIB, Payload::pattern(r as u64, MIB))
                            .await
                            .expect("write");
                    }
                }
            })
            .collect();
        join_all(&sim, futs).await;
        let write = gib_per_sec(ranks as u64 * PER_RANK, (sim.now() - t0).as_secs_f64());

        let read_all = |sim: Sim, arrays: Vec<daos_core::ArrayHandle>| async move {
            let t0 = sim.now();
            let futs: Vec<_> = arrays
                .into_iter()
                .map(|a| {
                    let sim = sim.clone();
                    async move {
                        for k in 0..PER_RANK / MIB {
                            a.read(&sim, k * MIB, MIB).await.expect("read");
                        }
                    }
                })
                .collect();
            join_all(&sim, futs).await;
            gib_per_sec(ranks as u64 * PER_RANK, (sim.now() - t0).as_secs_f64())
        };

        let healthy = read_all(sim.clone(), arrays.clone()).await;

        // the engine dies; reads immediately after ride timeouts, replica
        // failover / EC reconstruction, then the heartbeat exclusion
        cluster.apply_fault(&sim, FaultAction::Crash { node: VICTIM });
        let during = read_all(sim.clone(), arrays.clone()).await;

        // wait for the exclusion to commit and the rebuild to drain
        while cluster.pool_map().version() == 1 {
            clients[0].refresh_pool_map(&sim).await;
            sim.sleep_ms(5).await;
        }
        cluster.quiesce_rebuild(&sim).await;
        let rebuilt = read_all(sim.clone(), arrays.clone()).await;

        // bring the engine back and reintegrate its targets
        cluster.apply_fault(&sim, FaultAction::Restart { node: VICTIM });
        let tpe = cluster.cfg.targets_per_engine;
        let targets: Vec<u32> = (VICTIM as u32 * tpe..(VICTIM as u32 + 1) * tpe).collect();
        clients[0]
            .control(&sim, daos_core::Request::PoolReintegrate { targets })
            .await
            .expect("reintegrate");
        clients[0].refresh_pool_map(&sim).await;
        cluster.quiesce_rebuild(&sim).await;
        let reintegrated = read_all(sim.clone(), arrays).await;
        let map_version = cluster.pool_map().version();

        Timeline {
            class,
            write,
            healthy,
            during,
            rebuilt,
            reintegrated,
            map_version,
            chunks_repaired: cluster.rebuild_stats().chunks_repaired,
        }
    })
}

fn main() {
    println!("# fault sweep: {NODES} client nodes, {PPN} ppn, engine {VICTIM} crashes");
    println!("class,write_gib_s,read_healthy,read_during_failure,read_after_rebuild,read_after_reintegration,map_version,chunks_repaired");
    let classes = [
        ObjectClass::RP_2GX,
        ObjectClass::ErasureCoded {
            data: 4,
            parity: 1,
            groups: None,
        },
    ];
    let mut rows = Vec::new();
    for class in classes {
        let t = sweep(class);
        println!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}",
            t.class,
            t.write,
            t.healthy,
            t.during,
            t.rebuilt,
            t.reintegrated,
            t.map_version,
            t.chunks_repaired,
        );
        rows.push(t);
    }
    for t in &rows {
        check(
            &format!(
                "{}: failure detected, exclusion committed, data repaired",
                t.class
            ),
            t.map_version >= 2 && t.chunks_repaired > 0,
        );
        check(
            &format!(
                "{}: reads survive the failure window (degraded vs healthy)",
                t.class
            ),
            t.during > 0.0 && t.during < t.healthy,
        );
        check(
            &format!(
                "{}: post-rebuild bandwidth recovers to >60% of healthy",
                t.class
            ),
            t.rebuilt > 0.6 * t.healthy,
        );
        check(
            &format!(
                "{}: reintegration restores >60% of healthy bandwidth",
                t.class
            ),
            t.reintegrated > 0.6 * t.healthy,
        );
    }
    finish();
}
