//! **Fault sweep**: bandwidth before, during and after an engine failure,
//! for replicated and erasure-coded classes — the robustness counterpart
//! of `protection_sweep`. An engine crashes mid-run; the heartbeat
//! detector excludes it, clients ride through on retry + degraded reads,
//! the background rebuild re-protects the data, and the engine is finally
//! reintegrated.
//!
//! The per-class timelines are independent seeded sims, so they run as
//! jobs on the shared slate executor (`--threads` / `BENCH_THREADS`;
//! output is byte-identical at any thread count).
//!
//! ```text
//! cargo run -p daos-bench --release --bin fault_sweep
//! ```

use daos_bench::exec::{self, Slate};
use daos_bench::figures::{
    check_fault_timeline, fault_timeline, record_fault_timeline, FAULT_VICTIM,
};
use daos_bench::Reporter;
use daos_placement::ObjectClass;
use daos_sim::units::MIB;

const NODES: u32 = 4;
const PPN: u32 = 8;
const PER_RANK: u64 = 8 * MIB;

fn main() {
    exec::parse_threads_flag(std::env::args().skip(1).collect());
    let mut rep = Reporter::new("fault_sweep", 0xFA17);
    println!("# fault sweep: {NODES} client nodes, {PPN} ppn, engine {FAULT_VICTIM} crashes");
    println!("class,write_gib_s,read_healthy,read_during_failure,read_after_rebuild,read_after_reintegration,map_version,chunks_repaired");
    let classes = [
        ObjectClass::RP_2GX,
        ObjectClass::ErasureCoded {
            data: 4,
            parity: 1,
            groups: None,
        },
    ];
    let mut slate = Slate::new();
    for class in classes {
        slate.push(format!("fault/{class}"), move || {
            fault_timeline(class, NODES, PPN, PER_RANK)
        });
    }
    let rows: Vec<_> = slate
        .run_auto()
        .unwrap_or_else(|p| panic!("fault sweep {p}"))
        .into_iter()
        .map(|r| r.value)
        .collect();
    for t in &rows {
        println!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3},{},{}",
            t.class,
            t.write,
            t.healthy,
            t.during,
            t.rebuilt,
            t.reintegrated,
            t.map_version,
            t.chunks_repaired,
        );
        record_fault_timeline(rep.report_mut(), t);
    }
    for t in &rows {
        check_fault_timeline(&mut rep, t);
    }
    rep.finish();
}
