//! **Application-specific I/O benchmarks** — the paper's §V future work,
//! executed: NWP field output, checkpoint/restart and a producer-consumer
//! pipeline, each through the native API, `libdfs`, and POSIX/DFuse.
//!
//! ```text
//! cargo run -p daos-bench --release --bin app_workloads
//! ```

use std::rc::Rc;

use daos_bench::{paper_cluster, Reporter};
use daos_core::DaosClient;
use daos_dfs::{Dfs, DfsConfig};
use daos_dfuse::{DfuseConfig, DfuseMount};
use daos_placement::ObjectClass;
use daos_sim::time::SimDuration;
use daos_sim::Sim;
use daos_workloads::{
    checkpoint, nwp, producer_consumer, Access, RankAccess, WorkloadParams, WorkloadReport,
};

const NODES: u32 = 4;

async fn accesses(sim: &Sim, which: Access) -> Vec<RankAccess> {
    let cluster = daos_core::Cluster::build(sim, paper_cluster(NODES));
    let mut out = Vec::new();
    for i in 0..NODES {
        let client = DaosClient::new(Rc::clone(&cluster), i);
        let pool = client.connect(sim).await.unwrap();
        match which {
            Access::Native => out.push(RankAccess::Native(
                pool.open_or_create(sim, 5).await.unwrap(),
            )),
            Access::Dfs => out.push(RankAccess::Dfs(
                Dfs::mount(sim, &pool, 5, DfsConfig::default(), i as u64)
                    .await
                    .unwrap(),
            )),
            Access::Posix => {
                let fs = Dfs::mount(sim, &pool, 5, DfsConfig::default(), i as u64)
                    .await
                    .unwrap();
                out.push(RankAccess::Posix(DfuseMount::new(
                    fs,
                    DfuseConfig::default(),
                )));
            }
        }
    }
    out
}

fn params() -> WorkloadParams {
    WorkloadParams {
        writers: 32,
        readers: 16,
        steps: 3,
        object_bytes: 2 << 20,
        objects_per_step: 128,
        compute: SimDuration::from_ms(25),
        class: ObjectClass::S2,
    }
}

fn run_one(kind: &str, which: Access) -> WorkloadReport {
    let mut sim = Sim::new(0xA99 ^ which as u64);
    let kind = kind.to_string();
    sim.block_on(move |sim| async move {
        let acc = accesses(&sim, which).await;
        let mut rep = match kind.as_str() {
            "nwp" => nwp::run(&sim, acc, params()).await.unwrap(),
            "checkpoint" => checkpoint::run(&sim, acc, params()).await.unwrap(),
            _ => {
                // the coupled pipeline polls; keep its tile count moderate
                let mut p = params();
                p.objects_per_step = 48;
                p.steps = 2;
                producer_consumer::run(&sim, acc, p).await.unwrap()
            }
        };
        rep.access = which;
        rep
    })
}

fn main() {
    let mut rep = Reporter::new("app_workloads", 0xA99);
    println!("# application workloads on {NODES} client nodes (paper SV future work)");
    println!("workload,access,io_gib_s,effective_gib_s,makespan_ms");
    let mut all = Vec::new();
    for kind in ["nwp", "checkpoint", "producer_consumer"] {
        for which in [Access::Native, Access::Dfs, Access::Posix] {
            let r = run_one(kind, which);
            println!(
                "{},{},{:.3},{:.3},{:.3}",
                r.name,
                r.access.name(),
                r.io_gib_s(),
                r.effective_gib_s(),
                r.makespan.as_us_f64() / 1000.0
            );
            let series = format!("{}/{}", r.name, r.access.name());
            rep.record(&series, NODES, "io_gib_s", r.io_gib_s());
            rep.record(&series, NODES, "effective_gib_s", r.effective_gib_s());
            rep.record(
                &series,
                NODES,
                "makespan_ms",
                r.makespan.as_us_f64() / 1000.0,
            );
            all.push(r);
        }
    }
    // the paper's conclusion, restated for varied patterns: file APIs stay
    // close to the native object API even off the bulk-I/O happy path
    let by = |name: &str, acc: Access| {
        all.iter()
            .find(|r| r.name == name && r.access == acc)
            .unwrap()
            .io_gib_s()
    };
    rep.check(
        "file interfaces within 35% of native across all three app workloads",
        ["nwp", "checkpoint", "producer_consumer"].iter().all(|w| {
            by(w, Access::Dfs) > 0.65 * by(w, Access::Native)
                && by(w, Access::Posix) > 0.65 * by(w, Access::Native)
        }),
    );
    rep.check(
        "pipeline overlap beats phase separation (producer_consumer vs nwp)",
        by("producer_consumer", Access::Dfs) > 0.0 && by("nwp", Access::Dfs) > 0.0,
    );
    rep.finish();
}
