//! **Scrub sweep**: the end-to-end integrity timeline. Phase A measures
//! what the checksum engine costs on the paper's IOR easy/hard patterns
//! (csum on vs off, scrubber idle). Phase B injects silent bit rot into
//! one target at full redundancy and measures the two detection paths:
//! a client read that trips the server's verify-on-fetch, and the
//! background scrubber finding copies no client ever touches. Both must
//! end with the rot reported, the extents repaired from redundancy, and
//! every byte reading back identical.
//!
//! ```text
//! cargo run -p daos-bench --release --bin scrub_sweep
//! ```

use std::rc::Rc;

use daos_bench::{check, finish, paper_cluster};
use daos_core::{Cluster, ClusterConfig, DaosClient};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed, IorParams};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::fault::FaultAction;
use daos_sim::time::SimDuration;
use daos_sim::units::{KIB, MIB};
use daos_sim::Sim;
use daos_vos::Payload;

const NODES: u32 = 2;
const PPN: u32 = 4;

/// One IOR run (easy = file-per-process 1 MiB, hard = shared 64 KiB)
/// with the checksum engine on or off; scrubber disabled so the ratio
/// isolates the verify-on-write / csum-on-fetch cost.
fn ior_bw(csum: bool, fpp: bool) -> (f64, f64) {
    let mut sim = Sim::new(0x5C2B);
    sim.block_on(move |sim| async move {
        let mut cfg = paper_cluster(NODES);
        cfg.engine.vos.csum_enabled = csum;
        cfg.engine.scrub_interval = None;
        let env = DaosTestbed::setup(&sim, cfg, DfsConfig::default(), DfuseConfig::default())
            .await
            .expect("testbed");
        let mut p = IorParams::paper_default(Api::Dfs, ObjectClass::S2, fpp, PPN);
        p.block_size = 8 * MIB;
        if !fpp {
            p.transfer_size = 64 * KIB;
        }
        let r = run(&sim, &env, p).await.expect("ior");
        (r.write_gib_s(), r.read_gib_s())
    })
}

/// One rot-injection timeline measurement.
struct TimelineRow {
    class: ObjectClass,
    mode: &'static str,
    rot_extents: u64,
    detect_ms: f64,
    reported: u64,
    repairs_ok: u64,
    /// Every byte read back equal to what was written.
    equal: bool,
    /// The rotted target verifies clean after repairs (scrub mode only:
    /// client-triggered repair only heals the copies reads chose).
    clean: bool,
}

/// Write 2 MiB at full redundancy, rot every extent on the busiest
/// target, then detect either through a client read (`scrub = false`) or
/// by leaving the cluster idle so only the background scrubber can find
/// it (`scrub = true`).
fn rot_timeline(class: ObjectClass, scrub: bool, seed: u64) -> TimelineRow {
    let mut sim = Sim::new(seed);
    sim.block_on(move |sim| async move {
        let mut cfg = ClusterConfig::tiny(1);
        cfg.server_nodes = 4;
        cfg.targets_per_engine = 2;
        cfg.engine.scrub_interval = scrub.then(|| SimDuration::from_ms(5));
        cfg.engine.scrub_chunks = 64;
        let tpe = cfg.targets_per_engine;
        let cluster = Cluster::build(&sim, cfg);
        let client = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = client.connect(&sim).await.expect("connect");
        let cont = pool.create_container(&sim, 1).await.expect("container");
        let arr = cont.object(ObjectId::new(0x5C, 1), class).array(64 * KIB);
        let data = Payload::pattern(29, 2 * MIB);
        arr.write(&sim, 0, data.clone()).await.expect("write");

        // replica choice is deterministic per chunk, so a priming read
        // tells us exactly which copies client reads fetch; rot the target
        // serving the most of them so the client-read mode actually
        // touches the damage (scrub mode ignores the distinction)
        let before: Vec<u64> = (0..cluster.cfg.engine_count() * tpe)
            .map(|t| cluster.engine(t / tpe).target(t % tpe).counters().fetches)
            .collect();
        arr.read_bytes(&sim, 0, 2 * MIB).await.expect("prime read");
        let victim = (0..cluster.cfg.engine_count() * tpe)
            .max_by_key(|&t| {
                cluster.engine(t / tpe).target(t % tpe).counters().fetches - before[t as usize]
            })
            .unwrap();
        let t_rot = sim.now().as_ns();
        cluster.apply_fault(
            &sim,
            FaultAction::BitRot {
                target: victim as usize,
                fraction_ppm: 1_000_000,
            },
        );
        let rot_extents = cluster.corruption_stats().rot_injected;

        let mut equal = true;
        if scrub {
            // zero client traffic: only the scrubber can find the rot
            for _ in 0..100 {
                sim.sleep_ms(5).await;
                if cluster.corruption_stats().reported > 0 {
                    break;
                }
            }
        } else {
            // reads that land on the rotten copies fail over / reconstruct
            let got = arr.read_bytes(&sim, 0, 2 * MIB).await.expect("read");
            equal = got == data.materialize().to_vec();
        }
        let detect_ms = cluster
            .corruption_stats()
            .first_report_ns
            .map(|t| (t.saturating_sub(t_rot)) as f64 / 1e6)
            .unwrap_or(f64::NAN);
        cluster.quiesce_repairs(&sim).await;

        // in scrub mode the scrubber keeps finding what repairs haven't
        // reached yet: iterate until a full manual pass over the victim
        // verifies clean (client mode leaves unread copies rotten)
        let mut clean = false;
        if scrub {
            let tgt = cluster.engine(victim / tpe).target(victim % tpe);
            for _ in 0..40 {
                sim.sleep_ms(10).await;
                cluster.quiesce_repairs(&sim).await;
                let mut findings = 0u64;
                loop {
                    let r = tgt.scrub_step(&sim, 1024).await;
                    findings += r.findings.len() as u64;
                    if r.wrapped {
                        break;
                    }
                }
                if findings == 0 {
                    clean = true;
                    break;
                }
            }
            let got = arr.read_bytes(&sim, 0, 2 * MIB).await.expect("read");
            equal = got == data.materialize().to_vec();
        }

        let st = cluster.corruption_stats();
        TimelineRow {
            class,
            mode: if scrub { "scrubber" } else { "client-read" },
            rot_extents,
            detect_ms,
            reported: st.reported,
            repairs_ok: st.repairs_ok,
            equal,
            clean,
        }
    })
}

fn main() {
    let ec = ObjectClass::ErasureCoded {
        data: 2,
        parity: 1,
        groups: None,
    };

    println!("# scrub sweep A: checksum overhead, {NODES} client nodes, {PPN} ppn");
    println!("pattern,csum,write_gib_s,read_gib_s");
    let mut ratios = Vec::new();
    for fpp in [true, false] {
        let label = if fpp {
            "easy-fpp-1m"
        } else {
            "hard-shared-64k"
        };
        let (w_on, r_on) = ior_bw(true, fpp);
        let (w_off, r_off) = ior_bw(false, fpp);
        println!("{label},on,{w_on:.3},{r_on:.3}");
        println!("{label},off,{w_off:.3},{r_off:.3}");
        ratios.push((label, "write", w_on / w_off));
        ratios.push((label, "read", r_on / r_off));
    }

    println!("\n# scrub sweep B: bit-rot detection timeline");
    println!("class,mode,rot_extents,detect_ms,reported,repairs_ok,bytes_equal,media_clean");
    let mut rows = Vec::new();
    for class in [ObjectClass::RP_2GX, ec] {
        for scrub in [false, true] {
            let t = rot_timeline(class, scrub, 0x5C2B ^ scrub as u64);
            println!(
                "{},{},{},{:.3},{},{},{},{}",
                t.class,
                t.mode,
                t.rot_extents,
                t.detect_ms,
                t.reported,
                t.repairs_ok,
                t.equal,
                t.clean,
            );
            rows.push(t);
        }
    }

    for (label, phase, ratio) in &ratios {
        check(
            &format!("{label}: csum-on {phase} bandwidth within 10% of csum-off ({ratio:.3})"),
            *ratio >= 0.90,
        );
    }
    for t in &rows {
        check(
            &format!("{} {}: rot injected and detected", t.class, t.mode),
            t.rot_extents > 0 && t.reported > 0 && t.detect_ms.is_finite(),
        );
        check(
            &format!("{} {}: targeted repairs landed", t.class, t.mode),
            t.repairs_ok > 0,
        );
        check(
            &format!("{} {}: all bytes read back identical", t.class, t.mode),
            t.equal,
        );
        if t.mode == "scrubber" {
            check(
                &format!(
                    "{} {}: rotted target scrubs clean after repair",
                    t.class, t.mode
                ),
                t.clean,
            );
        }
    }
    finish();
}
