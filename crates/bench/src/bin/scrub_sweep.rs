//! **Scrub sweep**: the end-to-end integrity timeline. Phase A measures
//! what the checksum engine costs on the paper's IOR easy/hard patterns
//! (csum on vs off, scrubber idle). Phase B injects silent bit rot into
//! one target at full redundancy and measures the two detection paths:
//! a client read that trips the server's verify-on-fetch, and the
//! background scrubber finding copies no client ever touches. Both must
//! end with the rot reported, the extents repaired from redundancy, and
//! every byte reading back identical.
//!
//! ```text
//! cargo run -p daos-bench --release --bin scrub_sweep
//! ```

use daos_bench::figures::{
    check_rot_timeline, csum_overhead_point, record_rot_timeline, rot_timeline,
};
use daos_bench::Reporter;
use daos_placement::ObjectClass;

const NODES: u32 = 2;
const PPN: u32 = 4;

fn main() {
    let ec = ObjectClass::ErasureCoded {
        data: 2,
        parity: 1,
        groups: None,
    };
    let mut rep = Reporter::new("scrub_sweep", 0x5C2B);

    println!("# scrub sweep A: checksum overhead, {NODES} client nodes, {PPN} ppn");
    println!("pattern,csum,write_gib_s,read_gib_s");
    let mut ratios = Vec::new();
    for fpp in [true, false] {
        let label = if fpp {
            "easy-fpp-1m"
        } else {
            "hard-shared-64k"
        };
        let (w_on, r_on) = csum_overhead_point(true, fpp, NODES, PPN);
        let (w_off, r_off) = csum_overhead_point(false, fpp, NODES, PPN);
        println!("{label},on,{w_on:.3},{r_on:.3}");
        println!("{label},off,{w_off:.3},{r_off:.3}");
        for (metric, v) in [
            ("write_csum_on", w_on),
            ("write_csum_off", w_off),
            ("read_csum_on", r_on),
            ("read_csum_off", r_off),
        ] {
            rep.record(label, NODES, metric, v);
        }
        ratios.push((label, "write", w_on / w_off));
        ratios.push((label, "read", r_on / r_off));
    }

    println!("\n# scrub sweep B: bit-rot detection timeline");
    println!("class,mode,rot_extents,detect_ms,reported,repairs_ok,bytes_equal,media_clean");
    let mut rows = Vec::new();
    for class in [ObjectClass::RP_2GX, ec] {
        for scrub in [false, true] {
            let t = rot_timeline(class, scrub, 0x5C2B ^ scrub as u64);
            println!(
                "{},{},{},{:.3},{},{},{},{}",
                t.class,
                t.mode,
                t.rot_extents,
                t.detect_ms,
                t.reported,
                t.repairs_ok,
                t.equal,
                t.clean,
            );
            record_rot_timeline(rep.report_mut(), &t);
            rows.push(t);
        }
    }

    for (label, phase, ratio) in &ratios {
        rep.check(
            &format!("{label}: csum-on {phase} bandwidth within 10% of csum-off ({ratio:.3})"),
            *ratio >= 0.90,
        );
    }
    for t in &rows {
        check_rot_timeline(&mut rep, t);
    }
    rep.finish();
}
