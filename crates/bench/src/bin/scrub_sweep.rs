//! **Scrub sweep**: the end-to-end integrity timeline. Phase A measures
//! what the checksum engine costs on the paper's IOR easy/hard patterns
//! (csum on vs off, scrubber idle). Phase B injects silent bit rot into
//! one target at full redundancy and measures the two detection paths:
//! a client read that trips the server's verify-on-fetch, and the
//! background scrubber finding copies no client ever touches. Both must
//! end with the rot reported, the extents repaired from redundancy, and
//! every byte reading back identical.
//!
//! Every cell (four checksum-overhead points, four rot timelines) is an
//! independent seeded sim, so the whole sweep runs as one slate
//! (`--threads` / `BENCH_THREADS`; output is byte-identical at any
//! thread count).
//!
//! ```text
//! cargo run -p daos-bench --release --bin scrub_sweep
//! ```

use daos_bench::exec::{self, Slate};
use daos_bench::figures::{
    check_rot_timeline, csum_overhead_point, record_rot_timeline, rot_timeline, RotTimeline,
};
use daos_bench::Reporter;
use daos_placement::ObjectClass;

const NODES: u32 = 2;
const PPN: u32 = 4;

enum Cell {
    /// `(fpp, csum_on, write_gib_s, read_gib_s)`
    Csum(bool, bool, f64, f64),
    Rot(RotTimeline),
}

fn main() {
    exec::parse_threads_flag(std::env::args().skip(1).collect());
    let ec = ObjectClass::ErasureCoded {
        data: 2,
        parity: 1,
        groups: None,
    };
    let mut rep = Reporter::new("scrub_sweep", 0x5C2B);

    let mut slate = Slate::new();
    for fpp in [true, false] {
        for csum in [true, false] {
            slate.push(
                format!(
                    "csum-{}-{}",
                    if fpp { "easy" } else { "hard" },
                    if csum { "on" } else { "off" }
                ),
                move || {
                    let (w, r) = csum_overhead_point(csum, fpp, NODES, PPN);
                    Cell::Csum(fpp, csum, w, r)
                },
            );
        }
    }
    for class in [ObjectClass::RP_2GX, ec] {
        for scrub in [false, true] {
            slate.push(
                format!("rot-{class}-{}", if scrub { "scrubber" } else { "client" }),
                move || Cell::Rot(rot_timeline(class, scrub, 0x5C2B ^ scrub as u64)),
            );
        }
    }
    let cells: Vec<Cell> = slate
        .run_auto()
        .unwrap_or_else(|p| panic!("scrub sweep {p}"))
        .into_iter()
        .map(|r| r.value)
        .collect();

    // ---- phase A: checksum overhead ----------------------------------
    println!("# scrub sweep A: checksum overhead, {NODES} client nodes, {PPN} ppn");
    println!("pattern,csum,write_gib_s,read_gib_s");
    let mut on_off = [[0.0f64; 4]; 2]; // [fpp][w_on, r_on, w_off, r_off]
    for cell in &cells {
        let Cell::Csum(fpp, csum, w, r) = cell else {
            continue;
        };
        let label = if *fpp {
            "easy-fpp-1m"
        } else {
            "hard-shared-64k"
        };
        let state = if *csum { "on" } else { "off" };
        println!("{label},{state},{w:.3},{r:.3}");
        let row = &mut on_off[!*fpp as usize];
        let base = if *csum { 0 } else { 2 };
        row[base] = *w;
        row[base + 1] = *r;
        let suffix = if *csum { "on" } else { "off" };
        rep.record(label, NODES, &format!("write_csum_{suffix}"), *w);
        rep.record(label, NODES, &format!("read_csum_{suffix}"), *r);
    }
    let mut ratios = Vec::new();
    for (i, label) in ["easy-fpp-1m", "hard-shared-64k"].iter().enumerate() {
        let [w_on, r_on, w_off, r_off] = on_off[i];
        ratios.push((*label, "write", w_on / w_off));
        ratios.push((*label, "read", r_on / r_off));
    }

    // ---- phase B: rot detection timelines ----------------------------
    println!("\n# scrub sweep B: bit-rot detection timeline");
    println!("class,mode,rot_extents,detect_ms,reported,repairs_ok,bytes_equal,media_clean");
    let mut rows = Vec::new();
    for cell in cells {
        let Cell::Rot(t) = cell else { continue };
        println!(
            "{},{},{},{:.3},{},{},{},{}",
            t.class, t.mode, t.rot_extents, t.detect_ms, t.reported, t.repairs_ok, t.equal, t.clean,
        );
        record_rot_timeline(rep.report_mut(), &t);
        rows.push(t);
    }

    for (label, phase, ratio) in &ratios {
        rep.check(
            &format!("{label}: csum-on {phase} bandwidth within 10% of csum-off ({ratio:.3})"),
            *ratio >= 0.90,
        );
    }
    for t in &rows {
        check_rot_timeline(&mut rep, t);
    }
    rep.finish();
}
