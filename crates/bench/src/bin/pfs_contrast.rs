//! **The "stark contrast" experiment** (paper §IV/§V): the same IOR
//! workloads on a Lustre-like parallel filesystem. On DAOS, shared-file ≈
//! file-per-process; on the PFS, interleaved shared-file writes ping-pong
//! LDLM extent locks and collapse.
//!
//! Each (system, mode, scale) cell is an independent seeded sim, run as
//! a job on the shared slate executor (`--threads` / `BENCH_THREADS`;
//! output is byte-identical at any thread count).
//!
//! ```text
//! cargo run -p daos-bench --release --bin pfs_contrast
//! cargo run -p daos-bench --release --bin pfs_contrast -- --threads 1
//! ```

use daos_bench::exec;
use daos_bench::figures::run_pfs_contrast;
use daos_bench::Reporter;

const NODES: [u32; 4] = [1, 4, 8, 16];

fn main() {
    exec::parse_threads_flag(std::env::args().skip(1).collect());
    let mut rep = Reporter::new("pfs_contrast", 0x1F5);
    println!("# PFS contrast: write bandwidth, file-per-process vs shared");
    println!("system,mode,client_nodes,write_gib_s,read_gib_s,lock_revokes");
    let rows = run_pfs_contrast(rep.report_mut(), &NODES);
    let mut ratios = Vec::new();
    for row in &rows {
        let n = row.nodes;
        println!(
            "pfs,fpp,{n},{:.3},{:.3},0",
            row.pfs_fpp.write_gib_s(),
            row.pfs_fpp.read_gib_s()
        );
        println!(
            "pfs,shared,{n},{:.3},{:.3},{}",
            row.pfs_shared.write_gib_s(),
            row.pfs_shared.read_gib_s(),
            row.revokes
        );
        println!(
            "daos,fpp,{n},{:.3},{:.3},0",
            row.daos_fpp.write_gib_s(),
            row.daos_fpp.read_gib_s()
        );
        println!(
            "daos,shared,{n},{:.3},{:.3},0",
            row.daos_shared.write_gib_s(),
            row.daos_shared.read_gib_s()
        );
        let (pfs, daos) = row.ratios();
        ratios.push((n, pfs, daos));
    }
    println!("\nshared/fpp write ratio (1.0 = no shared-file penalty):");
    for (n, pfs, daos) in &ratios {
        println!("  {n:>2} nodes: pfs {pfs:.2}  daos {daos:.2}");
    }
    let (_, pfs16, daos16) = ratios.last().unwrap();
    rep.check(
        "R5: on DAOS shared ~= fpp while the PFS collapses on shared writes",
        *daos16 > 0.8 && *pfs16 < 0.5,
    );
    rep.finish();
}
