//! **The "stark contrast" experiment** (paper §IV/§V): the same IOR
//! workloads on a Lustre-like parallel filesystem. On DAOS, shared-file ≈
//! file-per-process; on the PFS, interleaved shared-file writes ping-pong
//! LDLM extent locks and collapse.
//!
//! ```text
//! cargo run -p daos-bench --release --bin pfs_contrast
//! ```

use daos_bench::{check, paper_cluster, paper_params};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, run_pfs, Api, DaosTestbed, IorReport};
use daos_pfs::{Pfs, PfsConfig};
use daos_placement::ObjectClass;
use daos_sim::Sim;

const NODES: [u32; 4] = [1, 4, 8, 16];
const PPN: u32 = 16;

fn pfs_point(nodes: u32, fpp: bool) -> (IorReport, u64) {
    let mut sim = Sim::new(0x1F5 ^ nodes as u64);
    sim.block_on(move |sim| async move {
        let fs = Pfs::build(PfsConfig {
            client_nodes: nodes,
            stripe_count: 4,
            ..Default::default()
        });
        let mut p = paper_params(Api::Posix { il: false }, ObjectClass::S1, fpp, PPN);
        p.block_size = 16 << 20; // lock ping-pong makes big runs slow
        let r = run_pfs(&sim, &fs, p).await.expect("pfs run");
        (r, fs.stats().revokes)
    })
}

fn daos_point(nodes: u32, fpp: bool) -> IorReport {
    let mut sim = Sim::new(0x1F6 ^ nodes as u64);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(nodes),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        let mut p = paper_params(Api::Dfs, ObjectClass::SX, fpp, PPN);
        p.block_size = 16 << 20;
        run(&sim, &env, p).await.expect("daos run")
    })
}

fn main() {
    println!("# PFS contrast: write bandwidth, file-per-process vs shared");
    println!("system,mode,client_nodes,write_gib_s,read_gib_s,lock_revokes");
    let mut ratios = Vec::new();
    for n in NODES {
        let (pfs_fpp, _) = pfs_point(n, true);
        let (pfs_shared, revokes) = pfs_point(n, false);
        let daos_fpp = daos_point(n, true);
        let daos_shared = daos_point(n, false);
        println!(
            "pfs,fpp,{n},{:.3},{:.3},0",
            pfs_fpp.write_gib_s(),
            pfs_fpp.read_gib_s()
        );
        println!(
            "pfs,shared,{n},{:.3},{:.3},{revokes}",
            pfs_shared.write_gib_s(),
            pfs_shared.read_gib_s()
        );
        println!(
            "daos,fpp,{n},{:.3},{:.3},0",
            daos_fpp.write_gib_s(),
            daos_fpp.read_gib_s()
        );
        println!(
            "daos,shared,{n},{:.3},{:.3},0",
            daos_shared.write_gib_s(),
            daos_shared.read_gib_s()
        );
        ratios.push((
            n,
            pfs_shared.write_gib_s() / pfs_fpp.write_gib_s(),
            daos_shared.write_gib_s() / daos_fpp.write_gib_s(),
        ));
    }
    println!("\nshared/fpp write ratio (1.0 = no shared-file penalty):");
    for (n, pfs, daos) in &ratios {
        println!("  {n:>2} nodes: pfs {pfs:.2}  daos {daos:.2}");
    }
    let (_, pfs16, daos16) = ratios.last().unwrap();
    check(
        "R5: on DAOS shared ~= fpp while the PFS collapses on shared writes",
        *daos16 > 0.8 && *pfs16 < 0.5,
    );
}
