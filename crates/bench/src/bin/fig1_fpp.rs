//! **Figure 1 — IOR file-per-process** (paper §IV, Fig. 1a read / 1b
//! write): bandwidth vs client-node count for every access mechanism
//! (DFS, MPI-IO over DFuse, HDF5 over DFuse) × object class (S1, S2, SX).
//!
//! ```text
//! cargo run -p daos-bench --release --bin fig1_fpp            # both phases
//! cargo run -p daos-bench --release --bin fig1_fpp -- read    # Fig 1(a)
//! cargo run -p daos-bench --release --bin fig1_fpp -- write   # Fig 1(b)
//! ```
//!
//! Ends with PASS/FAIL self-checks of the paper's qualitative claims and
//! writes `results/BENCH_fig1_fpp.json` for the regression harness.

use daos_bench::exec;
use daos_bench::figures::{run_fig1, FULL_NODES, FULL_REPEATS};
use daos_bench::{print_ascii_chart, print_csv, series_table, Reporter};

fn main() {
    let args = exec::parse_threads_flag(std::env::args().skip(1).collect());
    let phase = args.first().cloned();
    let mut rep = Reporter::new("fig1_fpp", 0xF161);
    let ms = run_fig1(rep.report_mut(), &FULL_NODES, FULL_REPEATS);
    print_csv("Figure 1: IOR file-per-process", &ms);
    if phase.as_deref() != Some("write") {
        print_ascii_chart("Fig 1(a) file-per-process", &ms, true);
    }
    if phase.as_deref() != Some("read") {
        print_ascii_chart("Fig 1(b) file-per-process", &ms, false);
    }

    // ---- qualitative self-checks against the paper -------------------
    let wr = series_table(&ms, false);
    let rd = series_table(&ms, true);
    let top = *FULL_NODES.last().unwrap();

    rep.check(
        "R2a: SX gives the best write bandwidth at the largest scale",
        wr["DFS-SX"][&top] > wr["DFS-S2"][&top] && wr["DFS-SX"][&top] > wr["DFS-S1"][&top],
    );
    rep.check(
        "R2b: SX writes are slower than S2 for few writers (1 node)",
        wr["DFS-SX"][&1] < wr["DFS-S2"][&1],
    );
    rep.check(
        "R1: S2 reads beat SX reads at the largest scale",
        rd["DFS-S2"][&top] > rd["DFS-SX"][&top],
    );
    rep.check(
        "R3a: MPI-IO over DFuse is close to the DFS API (write, all scales)",
        FULL_NODES.iter().all(|n| {
            let ratio = wr["MPIIO-S2"][n] / wr["DFS-S2"][n];
            ratio > 0.9 && ratio < 1.1
        }),
    );
    rep.check(
        "R3b: HDF5 over DFuse is below DFS/MPI-IO (write, small scales)",
        wr["HDF5-S1"][&1] < 0.95 * wr["MPIIO-S1"][&1]
            && wr["HDF5-S1"][&4] < 0.97 * wr["MPIIO-S1"][&4],
    );
    rep.check(
        "R3c: HDF5 over DFuse is below DFS/MPI-IO (read, small scales)",
        rd["HDF5-S1"][&1] < 0.95 * rd["MPIIO-S1"][&1]
            && rd["HDF5-S1"][&4] < 0.97 * rd["MPIIO-S1"][&4],
    );
    rep.finish();
}
