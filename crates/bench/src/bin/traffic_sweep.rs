//! **Open-loop traffic sweep**: offered load vs latency, goodput and
//! shed rate, with engine admission control + client damping ON and OFF.
//!
//! Client populations are deterministic arrival processes (Poisson and
//! bursty, aggregated per client node) sweeping offered load per object
//! class past 100% of nominal engine capacity. Each `(series, load)`
//! point is an independent seeded sim, so the sweep fans out on the
//! slate executor (`--threads` / `BENCH_THREADS`; output is
//! byte-identical at any thread count). The R6–R8 overload invariants
//! (latency knee, no-collapse with protection ON, collapse with it OFF)
//! gate the exit code.
//!
//! ```text
//! cargo run -p daos-bench --release --bin traffic_sweep
//! cargo run -p daos-bench --release --bin traffic_sweep -- --reduced
//! ```

use daos_bench::exec::{self, Slate};
use daos_bench::invariants::evaluate_traffic;
use daos_bench::report::{config_hash, Record};
use daos_bench::traffic::{
    check_traffic_cell, record_traffic_cell, traffic_cluster, traffic_modes, traffic_point,
    TrafficParams, TRAFFIC_SEED,
};
use daos_bench::Reporter;

fn main() {
    let args = exec::parse_threads_flag(std::env::args().skip(1).collect());
    let params = if args.iter().any(|a| a == "--reduced") {
        TrafficParams::reduced()
    } else {
        TrafficParams::full()
    };
    let mut rep = Reporter::new("traffic_sweep", TRAFFIC_SEED);
    println!(
        "# open-loop traffic sweep: {} client node(s) standing in for {} logical clients, {} MiB requests, {} ms window",
        params.client_nodes,
        params.logical_clients,
        params.req_size >> 20,
        params.duration.as_ns() / 1_000_000,
    );
    println!(
        "series,load_pct,offered_gib_s,goodput_gib_s,p50_us,p99_us,p999_us,shed_rate,arrivals,completed,failed,engine_sheds,breaker_fastfail,retries_denied"
    );

    let mut slate = Slate::new();
    for mode in traffic_modes() {
        for &load in params.loads {
            slate.push(format!("traffic/{}/{load}", mode.series()), move || {
                traffic_point(mode, load, params)
            });
        }
    }
    let cells: Vec<_> = slate
        .run_auto()
        .unwrap_or_else(|p| panic!("traffic sweep {p}"))
        .into_iter()
        .map(|r| {
            eprintln!("{:8.2}s  {}", r.wall_secs, r.label);
            r.value
        })
        .collect();

    for c in &cells {
        println!(
            "{},{},{:.3},{:.3},{:.0},{:.0},{:.0},{:.4},{},{},{},{},{},{}",
            c.series,
            c.load_pct,
            c.offered_gib_s,
            c.goodput_gib_s,
            c.p50_us,
            c.p99_us,
            c.p999_us,
            c.shed_rate,
            c.arrivals,
            c.completed,
            c.failed,
            c.engine_sheds,
            c.breaker_fastfail,
            c.retries_denied,
        );
        record_traffic_cell(rep.report_mut(), c);
    }
    rep.report_mut()
        .set_config_hash(config_hash(&traffic_cluster(&params, true)));

    for c in &cells {
        check_traffic_cell(&mut rep, c);
    }
    println!("\n== overload invariants (R6-R8) ==");
    let report = rep.report_mut().clone();
    for inv in evaluate_traffic(&report) {
        rep.check(
            &format!("{}: {} — {}", inv.id, inv.desc, inv.detail),
            inv.pass,
        );
    }
    rep.finish();
}
