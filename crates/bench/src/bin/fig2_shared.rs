//! **Figure 2 — IOR shared-file** (paper §IV, Fig. 2a read / 2b write):
//! a single shared file written/read by all ranks, across the same
//! interface × object-class grid as Figure 1.
//!
//! ```text
//! cargo run -p daos-bench --release --bin fig2_shared -- read    # Fig 2(a)
//! cargo run -p daos-bench --release --bin fig2_shared -- write   # Fig 2(b)
//! ```

use daos_bench::exec;
use daos_bench::figures::{run_fig2, FULL_NODES, FULL_REPEATS};
use daos_bench::{print_ascii_chart, print_csv, series_table, Reporter};

fn main() {
    let args = exec::parse_threads_flag(std::env::args().skip(1).collect());
    let phase = args.first().cloned();
    let mut rep = Reporter::new("fig2_shared", 0xF162);
    let ms = run_fig2(rep.report_mut(), &FULL_NODES, FULL_REPEATS);
    print_csv("Figure 2: IOR shared-file", &ms);
    if phase.as_deref() != Some("write") {
        print_ascii_chart("Fig 2(a) shared-file", &ms, true);
    }
    if phase.as_deref() != Some("read") {
        print_ascii_chart("Fig 2(b) shared-file", &ms, false);
    }

    // ---- qualitative self-checks against the paper -------------------
    let wr = series_table(&ms, false);
    let rd = series_table(&ms, true);
    let top = *FULL_NODES.last().unwrap();

    rep.check(
        "R4a: the DFS API gives the highest shared-file write bandwidth",
        wr["DFS-SX"][&top] >= wr["MPIIO-SX"][&top] && wr["DFS-SX"][&top] >= wr["HDF5-SX"][&top],
    );
    rep.check(
        "R4b: interfaces are similar for the shared file (write, SX, ±15%)",
        {
            let base = wr["DFS-SX"][&top];
            wr["MPIIO-SX"][&top] > 0.85 * base && wr["HDF5-SX"][&top] > 0.85 * base
        },
    );
    rep.check(
        "R4c: MPI-IO and HDF5 over DFuse give good shared reads (±15% of DFS)",
        {
            let base = rd["DFS-SX"][&top];
            rd["MPIIO-SX"][&top] > 0.85 * base && rd["HDF5-SX"][&top] > 0.85 * base
        },
    );
    rep.check(
        "R5-part: a single shared S1/S2 file bottlenecks on its few targets \
         (why shared files want wide classes)",
        wr["DFS-S1"][&top] < 0.2 * wr["DFS-SX"][&top]
            && wr["DFS-S2"][&top] < 0.35 * wr["DFS-SX"][&top],
    );
    rep.finish();
}
