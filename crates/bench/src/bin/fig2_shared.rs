//! **Figure 2 — IOR shared-file** (paper §IV, Fig. 2a read / 2b write):
//! a single shared file written/read by all ranks, across the same
//! interface × object-class grid as Figure 1.
//!
//! ```text
//! cargo run -p daos-bench --release --bin fig2_shared -- read    # Fig 2(a)
//! cargo run -p daos-bench --release --bin fig2_shared -- write   # Fig 2(b)
//! ```

use daos_bench::{check, print_ascii_chart, print_csv, run_sweep, series_table, ExperimentPoint};
use daos_ior::Api;
use daos_placement::ObjectClass;

const NODES: [u32; 5] = [1, 2, 4, 8, 16];
const PPN: u32 = 16;

fn main() {
    let phase = std::env::args().nth(1);
    let apis = [Api::Dfs, Api::Mpiio { collective: false }, Api::Hdf5];
    let classes = [ObjectClass::S1, ObjectClass::S2, ObjectClass::SX];
    let mut points = Vec::new();
    for api in apis {
        for class in classes {
            for n in NODES {
                points.push(ExperimentPoint {
                    api,
                    oclass: class,
                    client_nodes: n,
                });
            }
        }
    }
    let ms = run_sweep(points, false, PPN, 0xF162);
    print_csv("Figure 2: IOR shared-file", &ms);
    if phase.as_deref() != Some("write") {
        print_ascii_chart("Fig 2(a) shared-file", &ms, true);
    }
    if phase.as_deref() != Some("read") {
        print_ascii_chart("Fig 2(b) shared-file", &ms, false);
    }

    // ---- qualitative self-checks against the paper -------------------
    let wr = series_table(&ms, false);
    let rd = series_table(&ms, true);
    let top = *NODES.last().unwrap();

    check(
        "R4a: the DFS API gives the highest shared-file write bandwidth",
        wr["DFS-SX"][&top] >= wr["MPIIO-SX"][&top] && wr["DFS-SX"][&top] >= wr["HDF5-SX"][&top],
    );
    check(
        "R4b: interfaces are similar for the shared file (write, SX, ±15%)",
        {
            let base = wr["DFS-SX"][&top];
            wr["MPIIO-SX"][&top] > 0.85 * base && wr["HDF5-SX"][&top] > 0.85 * base
        },
    );
    check(
        "R4c: MPI-IO and HDF5 over DFuse give good shared reads (±15% of DFS)",
        {
            let base = rd["DFS-SX"][&top];
            rd["MPIIO-SX"][&top] > 0.85 * base && rd["HDF5-SX"][&top] > 0.85 * base
        },
    );
    check(
        "R5-part: a single shared S1/S2 file bottlenecks on its few targets \
         (why shared files want wide classes)",
        wr["DFS-S1"][&top] < 0.2 * wr["DFS-SX"][&top]
            && wr["DFS-S2"][&top] < 0.35 * wr["DFS-SX"][&top],
    );
}
