//! **IO500-style composite score** (paper §I cites DAOS's IO-500 rankings
//! as evidence it scales): ior-easy + ior-hard + mdtest-easy on the
//! simulated testbed, combined with the IO500 geometric mean.
//!
//! ```text
//! cargo run -p daos-bench --release --bin io500 [nodes]
//! ```

use daos_bench::{paper_cluster, paper_params};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{mdtest, run, Api, DaosTestbed, MdBackend};
use daos_placement::ObjectClass;
use daos_sim::Sim;

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let ppn = 16;
    let mut sim = Sim::new(0x10500);
    let (easy, hard, md) = sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(nodes),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        // ior-easy: file-per-process, free choice of class -> S2
        let easy = run(&sim, &env, {
            let mut p = paper_params(Api::Dfs, ObjectClass::S2, true, ppn);
            p.block_size = 16 << 20;
            p
        })
        .await
        .expect("ior easy");
        // ior-hard: single shared file -> SX
        let hard = run(&sim, &env, {
            let mut p = paper_params(Api::Dfs, ObjectClass::SX, false, ppn);
            p.block_size = 16 << 20;
            p
        })
        .await
        .expect("ior hard");
        // mdtest-easy through the native DFS API
        let md = mdtest(&sim, &env, MdBackend::Dfs, ppn, 48)
            .await
            .expect("mdtest");
        (easy, hard, md)
    });

    let bw = [
        ("ior-easy-write", easy.write_gib_s()),
        ("ior-easy-read", easy.read_gib_s()),
        ("ior-hard-write", hard.write_gib_s()),
        ("ior-hard-read", hard.read_gib_s()),
    ];
    let md_rates = [
        ("mdtest-create", md.creates_per_s() / 1000.0),
        ("mdtest-stat", md.stats_per_s() / 1000.0),
        ("mdtest-delete", md.unlinks_per_s() / 1000.0),
    ];
    println!("# io500-style run: {nodes} client nodes x {ppn} ppn");
    for (n, v) in &bw {
        println!("{n:18} {v:10.3} GiB/s");
    }
    for (n, v) in &md_rates {
        println!("{n:18} {v:10.3} kIOPS");
    }
    let geo = |vals: &[f64]| (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
    let bw_score = geo(&bw.iter().map(|(_, v)| *v).collect::<Vec<_>>());
    let md_score = geo(&md_rates.iter().map(|(_, v)| *v).collect::<Vec<_>>());
    let total = (bw_score * md_score).sqrt();
    println!("\nbw score  {bw_score:8.3} GiB/s (geometric mean)");
    println!("md score  {md_score:8.3} kIOPS   (geometric mean)");
    println!("io500     {total:8.3}");
}
