//! **IO500-style composite score** (paper §I cites DAOS's IO-500 rankings
//! as evidence it scales): ior-easy + ior-hard + mdtest-easy on the
//! simulated testbed, combined with the IO500 geometric mean.
//!
//! ```text
//! cargo run -p daos-bench --release --bin io500 [nodes]
//! ```

use daos_bench::figures::run_io500;
use daos_bench::Reporter;

fn main() {
    let nodes: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let ppn = 16;
    let mut rep = Reporter::new("io500", 0x10500);
    let r = run_io500(rep.report_mut(), nodes, ppn);

    let bw = [
        ("ior-easy-write", r.easy.write_gib_s()),
        ("ior-easy-read", r.easy.read_gib_s()),
        ("ior-hard-write", r.hard.write_gib_s()),
        ("ior-hard-read", r.hard.read_gib_s()),
    ];
    let md_rates = [
        ("mdtest-create", r.md.creates_per_s() / 1000.0),
        ("mdtest-stat", r.md.stats_per_s() / 1000.0),
        ("mdtest-delete", r.md.unlinks_per_s() / 1000.0),
    ];
    println!("# io500-style run: {nodes} client nodes x {ppn} ppn");
    for (n, v) in &bw {
        println!("{n:18} {v:10.3} GiB/s");
    }
    for (n, v) in &md_rates {
        println!("{n:18} {v:10.3} kIOPS");
    }
    println!("\nbw score  {:8.3} GiB/s (geometric mean)", r.bw_score);
    println!("md score  {:8.3} kIOPS   (geometric mean)", r.md_score);
    println!("io500     {:8.3}", r.total);
    rep.check(
        "composite score is finite and positive",
        r.total.is_finite() && r.total > 0.0,
    );
    rep.check(
        "ior-hard tracks ior-easy on DAOS (the paper's headline, IO500 form)",
        r.hard.write_gib_s() > 0.5 * r.easy.write_gib_s(),
    );
    rep.finish();
}
