//! **Beyond the paper's scale** — the DFS S2/SX × fpp/shared grid at
//! 64–512 client nodes, past the testbed the paper (and Figures 1–2)
//! stops at. Locates the R2 write crossover and tracks the R5 shared-file
//! asymptote at scales the regress gate's reduced axis cannot see.
//!
//! ```text
//! cargo run -p daos-bench --release --bin scale_sweep
//! cargo run -p daos-bench --release --bin scale_sweep -- --threads 4
//! BENCH_REPEATS=3 cargo run -p daos-bench --release --bin scale_sweep
//! ```
//!
//! Cells run as jobs on the shared slate executor (`--threads N` /
//! `BENCH_THREADS` pin the width; reduction order is submission order, so
//! output is byte-identical at any thread count). `BENCH_REPEATS`
//! overrides the per-cell placement repeats (default 1 at this scale).
//! Writes `BENCH_scale.json` for the nightly regress tier.

use daos_bench::exec;
use daos_bench::figures::{run_scale_sweep, SCALE_NODES, SCALE_SEED};
use daos_bench::invariants::evaluate_scale;
use daos_bench::Reporter;

fn main() {
    let _args = exec::parse_threads_flag(std::env::args().skip(1).collect());
    let repeats = std::env::var("BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1);
    let mut rep = Reporter::new("scale", SCALE_SEED);
    let cells = run_scale_sweep(rep.report_mut(), &SCALE_NODES, exec::threads(), repeats);

    println!("# beyond the paper's scale (DFS, {repeats} repeat(s))");
    println!("series,client_nodes,write_gib_s,read_gib_s");
    for (series, m) in &cells {
        println!(
            "{series},{},{:.3},{:.3}",
            m.point.client_nodes,
            m.report.write_gib_s(),
            m.report.read_gib_s()
        );
    }

    for inv in evaluate_scale(rep.report_mut()) {
        let line = format!("{}: {} — {}", inv.id, inv.desc, inv.detail);
        rep.check(&line, inv.pass);
    }
    rep.finish();
}
