//! **Metadata rates** (paper §I motivation): mdtest-style create / stat /
//! unlink storms through DFS, DFuse and the Lustre-like PFS — the
//! "large numbers of small files stress the MDS" scenario object stores
//! are meant to fix.
//!
//! ```text
//! cargo run -p daos-bench --release --bin mdtest_bench
//! ```

use daos_bench::{paper_cluster, Reporter};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{mdtest, mdtest_pfs, DaosTestbed, MdBackend, MdtestReport};
use daos_pfs::{Pfs, PfsConfig};
use daos_sim::Sim;

const NODES: u32 = 8;
const PPN: u32 = 8;
const FILES: u32 = 64;

fn daos_md(backend: MdBackend) -> MdtestReport {
    let mut sim = Sim::new(0x3D7 ^ backend as u64);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(NODES),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .expect("testbed");
        mdtest(&sim, &env, backend, PPN, FILES)
            .await
            .expect("mdtest")
    })
}

fn pfs_md() -> MdtestReport {
    let mut sim = Sim::new(0x3D8);
    sim.block_on(move |sim| async move {
        let fs = Pfs::build(PfsConfig {
            client_nodes: NODES,
            ..Default::default()
        });
        // pre-create per-rank dirs is implicit in the flat namespace
        mdtest_pfs(&sim, &fs, PPN, FILES).await.expect("mdtest pfs")
    })
}

fn main() {
    let mut rep = Reporter::new("mdtest_bench", 0x3D7);
    let dfs = daos_md(MdBackend::Dfs);
    let dfuse = daos_md(MdBackend::Dfuse);
    let pfs = pfs_md();
    println!("# mdtest: {} ranks x {} files", NODES * PPN, FILES);
    println!("backend,create_per_s,stat_per_s,unlink_per_s");
    for (name, r) in [("dfs", &dfs), ("dfuse", &dfuse), ("pfs", &pfs)] {
        println!(
            "{name},{:.0},{:.0},{:.0}",
            r.creates_per_s(),
            r.stats_per_s(),
            r.unlinks_per_s()
        );
        rep.record(name, NODES, "create_per_s", r.creates_per_s());
        rep.record(name, NODES, "stat_per_s", r.stats_per_s());
        rep.record(name, NODES, "unlink_per_s", r.unlinks_per_s());
    }
    rep.check(
        "DAOS metadata rates scale past the single-MDS PFS",
        dfs.creates_per_s() > 2.0 * pfs.creates_per_s()
            && dfs.stats_per_s() > 2.0 * pfs.stats_per_s(),
    );
    rep.check(
        "DFuse adds overhead over native DFS but stays well above the PFS",
        dfuse.creates_per_s() <= dfs.creates_per_s() && dfuse.creates_per_s() > pfs.creates_per_s(),
    );
    rep.finish();
}
