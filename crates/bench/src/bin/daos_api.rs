//! **The paper's future work, implemented** (§V): IOR through the native
//! DAOS array API (no filesystem layer at all) against the DFS and
//! DFuse-POSIX paths, plus the interception library as a further ablation.
//!
//! ```text
//! cargo run -p daos-bench --release --bin daos_api
//! ```

use daos_bench::{check, print_csv, run_sweep, series_table, ExperimentPoint};
use daos_ior::Api;
use daos_placement::ObjectClass;

const NODES: [u32; 3] = [1, 4, 16];
const PPN: u32 = 16;

fn main() {
    let apis = [
        Api::DaosArray,
        Api::Dfs,
        Api::Posix { il: false },
        Api::Posix { il: true },
    ];
    let mut points = Vec::new();
    for api in apis {
        for n in NODES {
            points.push(ExperimentPoint {
                api,
                oclass: ObjectClass::SX,
                client_nodes: n,
            });
        }
    }
    let ms = run_sweep(points, true, PPN, 0xDA05A);
    print_csv("Native DAOS array API vs file interfaces (SX, fpp)", &ms);

    let wr = series_table(&ms, false);
    let rd = series_table(&ms, true);
    check(
        // 6% tolerance: the native-API runs use fixed object ids, so their
        // placement is one draw rather than the file runs' averaged draws
        "native array API ~= DFS or better (skips namespace metadata)",
        NODES
            .iter()
            .all(|n| wr["DAOS-SX"][n] >= 0.94 * wr["DFS-SX"][n]),
    );
    check(
        "interception library recovers DFS-level performance over POSIX",
        NODES.iter().all(|n| {
            wr["POSIX+IL-SX"][n] >= 0.98 * wr["POSIX-SX"][n]
                && rd["POSIX+IL-SX"][n] >= 0.98 * rd["POSIX-SX"][n]
        }),
    );
    check(
        "every file interface stays within 15% of the native API (bulk I/O)",
        NODES
            .iter()
            .all(|n| wr["POSIX-SX"][n] > 0.85 * wr["DAOS-SX"][n]),
    );
}
