//! **The paper's future work, implemented** (§V): IOR through the native
//! DAOS array API (no filesystem layer at all) against the DFS and
//! DFuse-POSIX paths, plus the interception library as a further ablation.
//!
//! ```text
//! cargo run -p daos-bench --release --bin daos_api
//! cargo run -p daos-bench --release --bin daos_api -- --threads 1
//! BENCH_REPEATS=1 cargo run -p daos-bench --release --bin daos_api  # CI smoke scale
//! ```

use daos_bench::exec;
use daos_bench::figures::{grid_points, sweep_repeats};
use daos_bench::{print_csv, run_sweep, series_table, Reporter};
use daos_ior::Api;
use daos_placement::ObjectClass;

const NODES: [u32; 3] = [1, 4, 16];
const PPN: u32 = 16;

fn main() {
    exec::parse_threads_flag(std::env::args().skip(1).collect());
    let apis = [
        Api::DaosArray,
        Api::Dfs,
        Api::Posix { il: false },
        Api::Posix { il: true },
    ];
    let mut rep = Reporter::new("daos_api", 0xDA05A);
    let points = grid_points(&apis, &[ObjectClass::SX], &NODES);
    let ms = run_sweep(points, true, PPN, 0xDA05A, sweep_repeats());
    print_csv("Native DAOS array API vs file interfaces (SX, fpp)", &ms);
    for m in &ms {
        rep.record(
            &m.series(),
            m.point.client_nodes,
            "write_gib_s",
            m.report.write_gib_s(),
        );
        rep.record(
            &m.series(),
            m.point.client_nodes,
            "read_gib_s",
            m.report.read_gib_s(),
        );
    }

    let wr = series_table(&ms, false);
    let rd = series_table(&ms, true);
    rep.check(
        // 6% tolerance: the native-API runs use fixed object ids, so their
        // placement is one draw rather than the file runs' averaged draws
        "native array API ~= DFS or better (skips namespace metadata)",
        NODES
            .iter()
            .all(|n| wr["DAOS-SX"][n] >= 0.94 * wr["DFS-SX"][n]),
    );
    rep.check(
        "interception library recovers DFS-level performance over POSIX",
        NODES.iter().all(|n| {
            wr["POSIX+IL-SX"][n] >= 0.98 * wr["POSIX-SX"][n]
                && rd["POSIX+IL-SX"][n] >= 0.98 * rd["POSIX-SX"][n]
        }),
    );
    rep.check(
        "every file interface stays within 15% of the native API (bulk I/O)",
        NODES
            .iter()
            .all(|n| wr["POSIX-SX"][n] > 0.85 * wr["DAOS-SX"][n]),
    );
    rep.finish();
}
