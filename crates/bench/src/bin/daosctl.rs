//! `daosctl` — drive the simulated DAOS system from the command line.
//!
//! ```text
//! daosctl ior   [--api dfs|posix|posix-il|mpiio|mpiio-coll|hdf5|daos]
//!               [--nodes N] [--ppn N] [--xfer BYTES] [--block BYTES]
//!               [--segments N] [--oclass S1|S2|...|SX|RP_2GX|EC_2P1GX]
//!               [--shared] [--random] [--reorder] [--stonewall-ms N]
//!               [--verify] [--seed N] [--json DIR]
//! daosctl pool  [--nodes N]            # build a cluster, print its layout
//! daosctl place --oclass CLASS [--count N]   # show placement statistics
//! ```
//!
//! Sizes accept `k`/`m`/`g` suffixes (KiB/MiB/GiB). Everything runs in
//! simulation; output includes both bandwidth and the simulated duration.

use std::rc::Rc;

use daos_bench::paper_cluster;
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed, IorParams};
use daos_placement::{load_spread, place, ObjectClass, ObjectId, PoolMap};
use daos_sim::time::SimDuration;
use daos_sim::units::fmt_bytes;
use daos_sim::Sim;

fn parse_size(s: &str) -> u64 {
    let (num, mult) = match s.to_ascii_lowercase() {
        x if x.ends_with('g') => (x[..x.len() - 1].to_string(), 1u64 << 30),
        x if x.ends_with('m') => (x[..x.len() - 1].to_string(), 1u64 << 20),
        x if x.ends_with('k') => (x[..x.len() - 1].to_string(), 1u64 << 10),
        x => (x, 1),
    };
    num.parse::<u64>()
        .unwrap_or_else(|_| die(&format!("bad size: {s}")))
        * mult
}

fn die(msg: &str) -> ! {
    eprintln!("daosctl: {msg}");
    std::process::exit(2)
}

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                let val = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if val.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), val));
            } else {
                die(&format!("unexpected argument: {a}"));
            }
            i += 1;
        }
        Args { flags }
    }
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }
}

fn cmd_ior(args: &Args) {
    let api = match args.get("api").unwrap_or("dfs") {
        "dfs" => Api::Dfs,
        "posix" => Api::Posix { il: false },
        "posix-il" => Api::Posix { il: true },
        "mpiio" => Api::Mpiio { collective: false },
        "mpiio-coll" => Api::Mpiio { collective: true },
        "hdf5" => Api::Hdf5,
        "daos" => Api::DaosArray,
        other => die(&format!("unknown api: {other}")),
    };
    let oclass = ObjectClass::parse(args.get("oclass").unwrap_or("SX"))
        .unwrap_or_else(|| die("bad --oclass"));
    let nodes: u32 = args
        .get("nodes")
        .unwrap_or("4")
        .parse()
        .unwrap_or_else(|_| die("bad --nodes"));
    let ppn: u32 = args
        .get("ppn")
        .unwrap_or("16")
        .parse()
        .unwrap_or_else(|_| die("bad --ppn"));
    let params = IorParams {
        api,
        transfer_size: parse_size(args.get("xfer").unwrap_or("1m")),
        block_size: parse_size(args.get("block").unwrap_or("32m")),
        segments: args
            .get("segments")
            .unwrap_or("1")
            .parse()
            .unwrap_or_else(|_| die("bad --segments")),
        file_per_process: !args.has("shared"),
        ppn,
        oclass,
        chunk_size: parse_size(args.get("chunk").unwrap_or("1m")),
        verify: args.has("verify"),
        do_write: true,
        do_read: true,
        random_offsets: args.has("random"),
        reorder_read: args.has("reorder"),
        stonewall: args
            .get("stonewall-ms")
            .map(|v| SimDuration::from_ms(v.parse().unwrap_or_else(|_| die("bad --stonewall-ms")))),
    };
    let seed: u64 = args
        .get("seed")
        .unwrap_or("1")
        .parse()
        .unwrap_or_else(|_| die("bad --seed"));

    let mut sim = Sim::new(seed);
    let report = sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(
            &sim,
            paper_cluster(nodes),
            DfsConfig::default(),
            DfuseConfig::default(),
        )
        .await
        .unwrap_or_else(|e| die(&format!("testbed: {e}")));
        run(&sim, &env, params)
            .await
            .unwrap_or_else(|e| die(&format!("ior: {e}")))
    });
    println!(
        "api {:8} oclass {:8} {} | {} ranks on {} nodes",
        api.name(),
        oclass.name(),
        if params.file_per_process {
            "fpp"
        } else {
            "shared"
        },
        report.ranks,
        report.client_nodes,
    );
    println!(
        "write: {} in {}  ->  {:8.3} GiB/s",
        fmt_bytes(report.bytes_written),
        report.write_time,
        report.write_gib_s()
    );
    println!(
        "read:  {} in {}  ->  {:8.3} GiB/s",
        fmt_bytes(report.bytes_read),
        report.read_time,
        report.read_gib_s()
    );
    // ad-hoc runs can join the machine-readable trail too
    if let Some(dir) = args.get("json") {
        let mut bench = daos_bench::report::BenchReport::new("daosctl", seed);
        bench.config_hash = daos_bench::report::config_hash(&paper_cluster(nodes));
        let series = format!(
            "{}-{}-{}",
            api.name(),
            oclass.name(),
            if params.file_per_process {
                "fpp"
            } else {
                "shared"
            }
        );
        bench.record(&series, nodes, "write_gib_s", report.write_gib_s());
        bench.record(&series, nodes, "read_gib_s", report.read_gib_s());
        match bench.write_to(std::path::Path::new(dir)) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => die(&format!("writing json: {e}")),
        }
    }
}

fn cmd_pool(args: &Args) {
    let nodes: u32 = args
        .get("nodes")
        .unwrap_or("4")
        .parse()
        .unwrap_or_else(|_| die("bad --nodes"));
    let mut sim = Sim::new(7);
    sim.block_on(move |sim| async move {
        let cluster = daos_core::Cluster::build(&sim, paper_cluster(nodes));
        let client = daos_core::DaosClient::new(Rc::clone(&cluster), 0);
        client
            .connect(&sim)
            .await
            .unwrap_or_else(|e| die(&format!("connect: {e}")));
        let cfg = &cluster.cfg;
        println!("pool ready at {} (leader elected)", sim.now());
        println!(
            "  servers: {} x {} engines ({} targets each) = {} targets",
            cfg.server_nodes,
            cfg.engines_per_node,
            cfg.targets_per_engine,
            cfg.engine_count() * cfg.targets_per_engine
        );
        println!("  clients: {} nodes", cfg.client_nodes);
        println!(
            "  service: {} RAFT replicas on engines {:?}",
            cluster.replicas().len(),
            cluster.svc_engines()
        );
        for (i, r) in cluster.replicas().iter().enumerate() {
            println!("    replica {}: {:?}", i + 1, r.role());
        }
    });
}

fn cmd_place(args: &Args) {
    let class = ObjectClass::parse(args.get("oclass").unwrap_or("S2"))
        .unwrap_or_else(|| die("bad --oclass"));
    let count: u64 = args
        .get("count")
        .unwrap_or("1000")
        .parse()
        .unwrap_or_else(|_| die("bad --count"));
    let map = PoolMap::new(16, 8);
    let layouts: Vec<_> = (0..count)
        .map(|i| place(ObjectId::new(i, i * 7 + 1), class, &map))
        .collect();
    let (mean, sd, max) = load_spread(&layouts, &map);
    println!(
        "{count} objects, class {class}: width {} shards, fan-out {} engines",
        layouts[0].width(),
        layouts[0].engine_fanout(&map)
    );
    println!(
        "per-target load: mean {mean:.1} sd {sd:.2} max {max} (max/mean {:.2})",
        max as f64 / mean
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        die("usage: daosctl <ior|pool|place> [flags]; see source header for flags")
    };
    let args = Args::parse(rest);
    match cmd.as_str() {
        "ior" => cmd_ior(&args),
        "pool" => cmd_pool(&args),
        "place" => cmd_place(&args),
        other => die(&format!("unknown command: {other}")),
    }
}
