//! **DFuse-knob ablation**: how much of the POSIX path's cost comes from
//! each modelled mechanism — kernel crossings, request splitting
//! (`max_req`), daemon concurrency, and the interception library. This
//! decomposes the DESIGN.md cost model so the Figure 1/2 interface gaps
//! can be attributed.
//!
//! ```text
//! cargo run -p daos-bench --release --bin dfuse_ablation
//! ```

use daos_bench::{paper_cluster, paper_params, Reporter};
use daos_dfs::DfsConfig;
use daos_dfuse::DfuseConfig;
use daos_ior::{run, Api, DaosTestbed};
use daos_placement::ObjectClass;
use daos_sim::time::SimDuration;
use daos_sim::Sim;

const NODES: u32 = 1; // latency-bound regime: knob effects are visible
const PPN: u32 = 4; // few writers: per-op latency visible

fn point(dfuse: DfuseConfig, api: Api) -> (f64, f64) {
    let mut sim = Sim::new(0xAB1A);
    sim.block_on(move |sim| async move {
        let env = DaosTestbed::setup(&sim, paper_cluster(NODES), DfsConfig::default(), dfuse)
            .await
            .expect("testbed");
        let mut p = paper_params(api, ObjectClass::S2, true, PPN);
        p.block_size = 16 << 20;
        let r = run(&sim, &env, p).await.expect("run");
        (r.write_gib_s(), r.read_gib_s())
    })
}

fn main() {
    let mut rep = Reporter::new("dfuse_ablation", 0xAB1A);
    println!("# dfuse ablation: {NODES} nodes x {PPN} ppn, S2, fpp, POSIX api");
    println!("variant,write_gib_s,read_gib_s");
    let base = DfuseConfig::default();
    let variants: Vec<(&str, DfuseConfig)> = vec![
        ("default (4us crossing, 1MiB reqs, 16 threads)", base),
        (
            "slow crossings (20us)",
            DfuseConfig {
                kernel_crossing: SimDuration::from_us(20),
                ..base
            },
        ),
        (
            "small requests (128KiB max_req)",
            DfuseConfig {
                max_req: 128 << 10,
                ..base
            },
        ),
        (
            "single daemon thread",
            DfuseConfig {
                daemon_threads: 1,
                ..base
            },
        ),
        (
            "interception library",
            DfuseConfig {
                interception: true,
                ..base
            },
        ),
    ];
    let mut results = Vec::new();
    for (name, cfg) in &variants {
        let (w, r) = point(
            *cfg,
            Api::Posix {
                il: cfg.interception,
            },
        );
        println!("{name},{w:.3},{r:.3}");
        let series = name.split(" (").next().unwrap_or(name);
        rep.record(series, NODES, "write_gib_s", w);
        rep.record(series, NODES, "read_gib_s", r);
        results.push((*name, w, r));
    }
    let (_, dfs_w, dfs_r) = {
        let (w, r) = point(base, Api::Dfs);
        ("dfs", w, r)
    };
    println!("native DFS (no fuse at all),{dfs_w:.3},{dfs_r:.3}");
    rep.record("native-dfs", NODES, "write_gib_s", dfs_w);
    rep.record("native-dfs", NODES, "read_gib_s", dfs_r);

    let w_of = |n: &str| results.iter().find(|(x, _, _)| x.starts_with(n)).unwrap().1;
    rep.check(
        "128KiB request splitting costs real write bandwidth",
        w_of("small requests") < 0.9 * w_of("default"),
    );
    rep.check(
        "a single daemon thread bottlenecks the node",
        w_of("single daemon thread") < 0.8 * w_of("default"),
    );
    rep.check(
        "the interception library matches native DFS",
        (w_of("interception") - dfs_w).abs() / dfs_w < 0.05,
    );
    rep.finish();
}
