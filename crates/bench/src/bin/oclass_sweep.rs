//! **Object-class ablation** (paper §IV discussion): DFS-only sweep over
//! a wider class set than the figures — S1/S2/S4/S8/SX plus the
//! protection classes (replication, erasure coding) DAOS advertises.
//!
//! ```text
//! cargo run -p daos-bench --release --bin oclass_sweep
//! cargo run -p daos-bench --release --bin oclass_sweep -- --threads 1
//! BENCH_REPEATS=1 cargo run -p daos-bench --release --bin oclass_sweep  # CI smoke scale
//! ```

use daos_bench::exec;
use daos_bench::figures::{grid_points, sweep_repeats};
use daos_bench::{print_csv, run_sweep, series_table, Reporter};
use daos_ior::Api;
use daos_placement::ObjectClass;

const NODES: [u32; 3] = [1, 4, 16];
const PPN: u32 = 16;

fn main() {
    exec::parse_threads_flag(std::env::args().skip(1).collect());
    let classes = [
        ObjectClass::S1,
        ObjectClass::S2,
        ObjectClass::S4,
        ObjectClass::S8,
        ObjectClass::SX,
    ];
    let mut rep = Reporter::new("oclass_sweep", 0x0C1A);
    let points = grid_points(&[Api::Dfs], &classes, &NODES);
    let ms = run_sweep(points, true, PPN, 0x0C1A, sweep_repeats());
    print_csv("Object-class sweep (DFS, file-per-process)", &ms);
    for m in &ms {
        rep.record(
            &m.series(),
            m.point.client_nodes,
            "write_gib_s",
            m.report.write_gib_s(),
        );
        rep.record(
            &m.series(),
            m.point.client_nodes,
            "read_gib_s",
            m.report.read_gib_s(),
        );
    }

    let wr = series_table(&ms, false);
    rep.check(
        "sharding degree interpolates: S1 <= S4 <= SX write at 16 nodes (±10%)",
        wr["DFS-S1"][&16] <= wr["DFS-S4"][&16] * 1.1
            && wr["DFS-S4"][&16] <= wr["DFS-SX"][&16] * 1.1,
    );
    rep.check(
        "every class lands in a sane envelope (1-60 GiB/s write)",
        wr.values()
            .flat_map(|s| s.values())
            .all(|&b| b > 1.0 && b < 60.0),
    );
    rep.finish();
}
