//! Open-loop latency/SLO traffic harness: the overload counterpart of the
//! closed-loop IOR figures.
//!
//! Every IOR-style sweep in this crate is *closed-loop*: a fixed rank
//! count issues its next I/O only after the previous one completes, so
//! offered load self-limits at the system's capacity and the knee of the
//! latency/throughput curve is unreachable by construction. This module
//! drives the same simulated cluster *open-loop*: client populations are
//! modeled as deterministic arrival processes (Poisson or bursty, drawn
//! from [`Sim::derive_rng`] streams) whose rate is set as a fraction of
//! nominal engine capacity — including fractions past 100%. Arrivals are
//! aggregated per client node, so a node-level process stands in for the
//! superposition of thousands of logical clients (the Poisson limit of
//! many thin, independent sources) without simulating 10^6 actors.
//!
//! Each `(object class, admission/damping mode, arrival shape, offered
//! load)` point is one independent seeded [`Sim`], so the sweep fans out
//! on the [`crate::exec::Slate`] runner and reduces byte-identically at
//! any thread count. Per point the harness reports offered load, goodput
//! (bytes of *successfully completed* requests over the open-loop
//! window), p50/p99/p999 completion latency from a mergeable
//! [`PercentileSketch`], the engine shed rate, and the client damping
//! counters ([`daos_core::DampStats`]).
//!
//! The qualitative claims ride as machine-checked invariants (R6–R8 in
//! [`crate::invariants`]): p99 grows monotonically with offered load up
//! to the knee; with admission control + damping ON goodput stays within
//! 15% of its peak past the knee; with them OFF the same sweep collapses
//! below half of peak — the retry-storm / buffer-bloat congestion
//! failure the overload work exists to prevent.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use daos_core::{Cluster, ClusterConfig, DaosClient, RetryPolicy};
use daos_placement::{ObjectClass, ObjectId};
use daos_sim::time::SimDuration;
use daos_sim::units::{gib_per_sec, Gibps, MIB};
use daos_sim::{PercentileSketch, Sim};
use daos_vos::Payload;
use rand::Rng;

use crate::report::{fnv1a, Record};
use crate::Reporter;

/// Root seed for the traffic sweep; each point salts it with its series
/// name and load so points are independent but reproducible.
pub const TRAFFIC_SEED: u64 = 0x7AF1C;

/// Per-xstream admission queue depth in the admission-ON configuration.
pub const TRAFFIC_QUEUE_CAP: u32 = 12;

/// Engine-wide in-flight payload budget in the admission-ON
/// configuration. 32 MiB drains in ~10.7 ms at the 3 GiB/s engine write
/// path — comfortably inside the 25 ms client deadline, which is the
/// whole point: an admitted request is a request the engine can finish
/// before its client hangs up.
pub const TRAFFIC_INFLIGHT_CAP: u64 = 32 * MIB;

/// Arrival-process shape for one series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrivals {
    /// Exponential inter-arrival gaps: the superposition limit of many
    /// thin independent clients.
    Poisson,
    /// Clumps of `burst` back-to-back arrivals separated by exponential
    /// gaps with `burst`× the mean (same average rate, bursty shape) —
    /// the synchronized-checkpoint signature.
    Bursty { burst: u32 },
}

/// One traffic series: object class × overload-protection mode ×
/// arrival shape.
#[derive(Clone, Copy, Debug)]
pub struct TrafficMode {
    pub class: ObjectClass,
    /// `true` = engine admission control + client damping ON.
    pub admission: bool,
    pub arrivals: Arrivals,
}

impl TrafficMode {
    /// Series label, e.g. `S1/ac`, `SX/noac`, `SX/burst`.
    pub fn series(&self) -> String {
        let suffix = match (self.admission, self.arrivals) {
            (true, Arrivals::Bursty { .. }) => "burst",
            (true, Arrivals::Poisson) => "ac",
            (false, _) => "noac",
        };
        format!("{}/{}", self.class, suffix)
    }
}

/// The sweep's series: the hotspot-prone single-shard class and the
/// fully-striped class, each with protection ON and OFF, plus a bursty
/// variant of the striped class (protection ON) to show damping under
/// clumped arrivals.
pub fn traffic_modes() -> Vec<TrafficMode> {
    vec![
        TrafficMode {
            class: ObjectClass::S1,
            admission: true,
            arrivals: Arrivals::Poisson,
        },
        TrafficMode {
            class: ObjectClass::S1,
            admission: false,
            arrivals: Arrivals::Poisson,
        },
        TrafficMode {
            class: ObjectClass::SX,
            admission: true,
            arrivals: Arrivals::Poisson,
        },
        TrafficMode {
            class: ObjectClass::SX,
            admission: false,
            arrivals: Arrivals::Poisson,
        },
        TrafficMode {
            class: ObjectClass::SX,
            admission: true,
            arrivals: Arrivals::Bursty { burst: 8 },
        },
    ]
}

/// Scale knobs for one traffic sweep.
#[derive(Clone, Copy, Debug)]
pub struct TrafficParams {
    /// Client nodes, each running one aggregated arrival process.
    pub client_nodes: u32,
    /// Logical clients each node-level process stands in for (reported
    /// as provenance; the Poisson aggregation makes the actor count a
    /// free parameter).
    pub logical_clients: u64,
    /// Open-loop measurement window (virtual time). Arrivals stop at the
    /// window's end; in-flight requests drain before stats are read.
    pub duration: SimDuration,
    /// Request payload, aligned to the array chunk so one request is one
    /// shard RPC.
    pub req_size: u64,
    /// Arrays per client node (distinct objects → distinct placements).
    pub arrays_per_node: u32,
    /// Chunks per array; requests land on a random chunk.
    pub chunks_per_array: u64,
    /// Offered-load axis, percent of nominal aggregate engine write
    /// bandwidth (past 100 = overload).
    pub loads: &'static [u32],
}

impl TrafficParams {
    /// Full scale for the standalone `traffic_sweep` binary.
    pub fn full() -> Self {
        TrafficParams {
            client_nodes: 4,
            logical_clients: 1 << 20,
            duration: SimDuration::from_ms(400),
            req_size: MIB,
            arrays_per_node: 4,
            chunks_per_array: 1024,
            loads: &[25, 50, 75, 100, 125, 150, 175, 200],
        }
    }

    /// The CI gate's reduced scale: same cluster, same series, shorter
    /// window and a 4-point load axis.
    pub fn reduced() -> Self {
        TrafficParams {
            client_nodes: 4,
            logical_clients: 1 << 16,
            duration: SimDuration::from_ms(200),
            req_size: MIB,
            arrays_per_node: 4,
            chunks_per_array: 256,
            loads: &[50, 100, 150, 200],
        }
    }

    /// Miniature for the schedule-independence smoke tests.
    pub fn smoke() -> Self {
        TrafficParams {
            client_nodes: 2,
            logical_clients: 1 << 10,
            duration: SimDuration::from_ms(40),
            req_size: MIB,
            arrays_per_node: 2,
            chunks_per_array: 64,
            loads: &[50, 200],
        }
    }
}

/// The traffic testbed: 4 single-engine servers (12 GiB/s nominal write
/// path) and `client_nodes` clients. One engine per server keeps the
/// server NIC (≈11.6 GiB/s per direction) above the engine's share of a
/// 200% offered load — the fabric must not become a second, accidental
/// admission controller upstream of the one under test.
pub fn traffic_cluster(params: &TrafficParams, admission: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::nextgenio(params.client_nodes);
    cfg.server_nodes = 4;
    cfg.engines_per_node = 1;
    if admission {
        cfg.engine.queue_cap = Some(TRAFFIC_QUEUE_CAP);
        cfg.engine.inflight_cap = Some(TRAFFIC_INFLIGHT_CAP);
    }
    cfg
}

/// Client retry policy for one mode. Deadline and attempt count are
/// *identical* across modes so the ON/OFF contrast isolates admission +
/// damping, not patience: both clients wait 25 ms and try 4 times; only
/// the ON client meters its retries and trips breakers.
pub fn traffic_policy(admission: bool) -> RetryPolicy {
    RetryPolicy {
        rpc_timeout: SimDuration::from_ms(25),
        base_backoff: SimDuration::from_us(500),
        max_backoff: SimDuration::from_ms(8),
        max_attempts: 4,
        shed_backoff: SimDuration::from_ms(2),
        retry_budget: if admission { 64 } else { 0 },
        breaker_failures: if admission { 20 } else { 0 },
        breaker_open: SimDuration::from_ms(5),
    }
}

/// Everything one `(series, load)` point measures.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficCell {
    pub series: String,
    pub load_pct: u32,
    /// Offered load (arrival rate × request size), GiB/s.
    pub offered_gib_s: f64,
    /// Successfully completed bytes over the open-loop window, GiB/s.
    pub goodput_gib_s: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    /// Engine-side sheds / (sheds + admitted) over the data plane.
    pub shed_rate: f64,
    pub arrivals: u64,
    pub completed: u64,
    pub failed: u64,
    /// Server-side admission sheds (queue-cap + byte-cap), all engines.
    pub engine_sheds: u64,
    /// Client-side breaker fast-fails (no wire traffic), all nodes.
    pub breaker_fastfail: u64,
    pub retries_spent: u64,
    pub retries_denied: u64,
    pub logical_clients: u64,
}

/// Shared per-point accounting, written by request tasks.
#[derive(Default)]
struct Counters {
    arrivals: Cell<u64>,
    completed: Cell<u64>,
    failed: Cell<u64>,
    good_bytes: Cell<u64>,
    inflight: Cell<u64>,
    latency: RefCell<PercentileSketch>,
}

/// Nominal aggregate engine write bandwidth, bytes/s — the 100% mark of
/// the offered-load axis.
fn nominal_bytes_per_sec(cfg: &ClusterConfig) -> f64 {
    cfg.engine.bulk_write_bw.0 * cfg.engine_count() as f64
}

/// Run one `(mode, load)` point in a fresh deterministic simulation.
pub fn traffic_point(mode: TrafficMode, load_pct: u32, params: TrafficParams) -> TrafficCell {
    let series = mode.series();
    let seed = TRAFFIC_SEED ^ fnv1a(series.as_bytes()).rotate_left(17) ^ ((load_pct as u64) << 1);
    let mut sim = Sim::new(seed);
    let series_out = series.clone();
    let (counters, engine_sheds, admitted, damp) = sim.block_on(move |sim| async move {
        let cfg = traffic_cluster(&params, mode.admission);
        let offered_bps = nominal_bytes_per_sec(&cfg) * load_pct as f64 / 100.0;
        let per_node_bps = offered_bps / params.client_nodes as f64;
        let mean_gap_ns = params.req_size as f64 * 1e9 / per_node_bps;

        let cluster = Cluster::build(&sim, cfg);
        let boot = DaosClient::new(Rc::clone(&cluster), 0);
        let pool = boot.connect(&sim).await.expect("traffic: connect");
        pool.create_container(&sim, 1)
            .await
            .expect("traffic: create container");

        let policy = traffic_policy(mode.admission);
        let mut clients = Vec::new();
        let mut node_arrays = Vec::new();
        for n in 0..params.client_nodes {
            let client = DaosClient::new(Rc::clone(&cluster), n).with_retry(policy);
            let pool = client.connect(&sim).await.expect("traffic: connect");
            let cont = pool
                .open_container(&sim, 1)
                .await
                .expect("traffic: open container");
            let arrays: Vec<_> = (0..params.arrays_per_node)
                .map(|a| {
                    let oid = ObjectId::new(0x7A, (n * params.arrays_per_node + a) as u64);
                    cont.object(oid, mode.class).array(params.req_size)
                })
                .collect();
            clients.push(client);
            node_arrays.push(arrays);
        }

        let counters = Rc::new(Counters::default());
        let t_end = sim.now() + params.duration;
        let mut gens = Vec::new();
        for (n, arrays) in node_arrays.into_iter().enumerate() {
            let sim = sim.clone();
            let counters = Rc::clone(&counters);
            gens.push(sim.clone().spawn(async move {
                // Arrival randomness comes from a stream derived per
                // node, *not* the sim's global RNG: backoff jitter in the
                // client stack draws from the global stream, and the
                // offered workload must not change shape when the
                // protection mode (and hence the number of jitter draws)
                // changes.
                let mut rng =
                    sim.derive_rng(TRAFFIC_SEED ^ ((n as u64) << 8) ^ ((load_pct as u64) << 32));
                loop {
                    let (clump, stretch) = match mode.arrivals {
                        Arrivals::Poisson => (1u32, 1.0),
                        Arrivals::Bursty { burst } => (burst, burst as f64),
                    };
                    for _ in 0..clump {
                        let ai = rng.gen_range(0..arrays.len() as u64) as usize;
                        let chunk = rng.gen_range(0..params.chunks_per_array);
                        let seq = counters.arrivals.get();
                        counters.arrivals.set(seq + 1);
                        counters.inflight.set(counters.inflight.get() + 1);
                        let arr = arrays[ai].clone();
                        let sim2 = sim.clone();
                        let c = Rc::clone(&counters);
                        sim.spawn(async move {
                            let start = sim2.now();
                            let data = Payload::pattern(seq, params.req_size);
                            match arr.write(&sim2, chunk * params.req_size, data).await {
                                Ok(()) => {
                                    let lat = (sim2.now() - start).as_ns();
                                    c.completed.set(c.completed.get() + 1);
                                    c.good_bytes.set(c.good_bytes.get() + params.req_size);
                                    c.latency.borrow_mut().add(lat);
                                }
                                Err(_) => c.failed.set(c.failed.get() + 1),
                            }
                            c.inflight.set(c.inflight.get() - 1);
                        });
                    }
                    // exponential gap: u ∈ [0,1) so 1-u ∈ (0,1] and the
                    // log is finite
                    let u: f64 = rng.gen();
                    let gap = (-(mean_gap_ns * stretch) * (1.0 - u).ln()) as u64;
                    sim.sleep_ns(gap).await;
                    if sim.now() >= t_end {
                        break;
                    }
                }
            }));
        }
        for g in gens {
            g.await;
        }
        // drain: arrivals have stopped; let in-flight requests finish
        // (bounded by max_attempts × deadline + backoff)
        while counters.inflight.get() > 0 {
            sim.sleep_us(200).await;
        }

        let (mut sheds, mut admitted) = (0u64, 0u64);
        for e in cluster.engines() {
            let s = e.admission_stats();
            sheds += s.shed_queue + s.shed_bytes;
            admitted += s.admitted;
        }
        let mut damp = daos_core::DampStats::default();
        for cl in &clients {
            let d = cl.damp_stats();
            damp.retries_spent += d.retries_spent;
            damp.retries_denied += d.retries_denied;
            damp.breaker_fastfail += d.breaker_fastfail;
            damp.sheds_seen += d.sheds_seen;
        }
        (counters, sheds, admitted, damp)
    });

    let cfg = traffic_cluster(&params, mode.admission);
    let offered_bps = nominal_bytes_per_sec(&cfg) * load_pct as f64 / 100.0;
    let window_secs = params.duration.as_secs_f64();
    let lat = counters.latency.borrow();
    TrafficCell {
        series: series_out,
        load_pct,
        offered_gib_s: Gibps::from_bytes_per_sec(offered_bps).0,
        goodput_gib_s: gib_per_sec(counters.good_bytes.get(), window_secs),
        p50_us: lat.quantile(0.50) as f64 / 1e3,
        p99_us: lat.quantile(0.99) as f64 / 1e3,
        p999_us: lat.quantile(0.999) as f64 / 1e3,
        shed_rate: engine_sheds as f64 / (engine_sheds + admitted).max(1) as f64,
        arrivals: counters.arrivals.get(),
        completed: counters.completed.get(),
        failed: counters.failed.get(),
        engine_sheds,
        breaker_fastfail: damp.breaker_fastfail,
        retries_spent: damp.retries_spent,
        retries_denied: damp.retries_denied,
        logical_clients: params.logical_clients,
    }
}

/// Record one cell into a report sink; the load axis is the scale.
pub fn record_traffic_cell(report: &mut impl Record, c: &TrafficCell) {
    let s = &c.series;
    report.record(s, c.load_pct, "offered_gib_s", c.offered_gib_s);
    report.record(s, c.load_pct, "goodput_gib_s", c.goodput_gib_s);
    report.record(s, c.load_pct, "p50_us", c.p50_us);
    report.record(s, c.load_pct, "p99_us", c.p99_us);
    report.record(s, c.load_pct, "p999_us", c.p999_us);
    report.record(s, c.load_pct, "shed_rate", c.shed_rate);
    report.record(s, c.load_pct, "arrivals", c.arrivals as f64);
    report.record(s, c.load_pct, "completed", c.completed as f64);
    report.record(s, c.load_pct, "failed", c.failed as f64);
    report.record(s, c.load_pct, "engine_sheds", c.engine_sheds as f64);
    report.record(s, c.load_pct, "breaker_fastfail", c.breaker_fastfail as f64);
    report.record(s, c.load_pct, "retries_spent", c.retries_spent as f64);
    report.record(s, c.load_pct, "retries_denied", c.retries_denied as f64);
    report.record(s, c.load_pct, "logical_clients", c.logical_clients as f64);
}

/// Per-cell sanity checks (the qualitative R6–R8 claims are evaluated
/// over the whole report in [`crate::invariants::evaluate_traffic`]).
pub fn check_traffic_cell(rep: &mut Reporter, c: &TrafficCell) {
    rep.check(
        &format!(
            "{}@{}%: some requests completed ({}/{})",
            c.series, c.load_pct, c.completed, c.arrivals
        ),
        c.completed > 0,
    );
    rep.check(
        &format!(
            "{}@{}%: accounting closes (completed {} + failed {} = arrivals {})",
            c.series, c.load_pct, c.completed, c.failed, c.arrivals
        ),
        c.completed + c.failed == c.arrivals,
    );
    if !c.series.ends_with("/noac") {
        rep.check(
            &format!(
                "{}@{}%: retries metered under shedding (sheds {}, spent {}, denied {})",
                c.series, c.load_pct, c.engine_sheds, c.retries_spent, c.retries_denied
            ),
            c.engine_sheds == 0 || c.retries_spent + c.breaker_fastfail > 0,
        );
    }
}
