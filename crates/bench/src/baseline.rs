//! Baseline comparison: diff a fresh [`BenchReport`] against a committed
//! one with per-metric relative tolerance bands, and render the result as
//! a drift table.
//!
//! The simulator is deterministic, so a fresh run of unchanged code
//! reproduces its baseline *exactly*; the tolerance band exists to let
//! intentional small calibration changes land without a baseline churn,
//! while anything that moves a figure materially — or silently inverts an
//! ordering — fails the `regress` gate. Counter-like metrics (map
//! versions, repair counts, lock revokes) get zero tolerance: they are
//! exact protocol outcomes, not bandwidths.

use std::collections::BTreeMap;

use crate::report::BenchReport;

/// Relative tolerance applied per metric name.
#[derive(Clone, Debug)]
pub struct TolerancePolicy {
    /// Band for any metric without an override, e.g. 0.08 = ±8%.
    pub default_rel: f64,
    /// Per-metric overrides (exact counters use 0.0).
    pub per_metric: BTreeMap<String, f64>,
}

impl TolerancePolicy {
    /// The harness default: ±8% on bandwidth-like metrics, exact on
    /// protocol counters.
    pub fn standard() -> Self {
        let mut per_metric = BTreeMap::new();
        for counter in [
            "map_version",
            "chunks_repaired",
            "lock_revokes",
            "rot_extents",
            "reported",
            "repairs_ok",
            "bytes_equal",
            "media_clean",
            // traffic-sweep event counters: deterministic arrival
            // processes, so any change at all is a real behaviour change
            "arrivals",
            "completed",
            "failed",
            "engine_sheds",
            "breaker_fastfail",
            "retries_spent",
            "retries_denied",
            "logical_clients",
        ] {
            per_metric.insert(counter.to_string(), 0.0);
        }
        TolerancePolicy {
            default_rel: 0.08,
            per_metric,
        }
    }

    /// Tolerance band for one metric.
    pub fn rel_for(&self, metric: &str) -> f64 {
        self.per_metric
            .get(metric)
            .copied()
            .unwrap_or(self.default_rel)
    }
}

/// Why a drift row counts against the gate (or doesn't).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftStatus {
    /// Within the tolerance band.
    Ok,
    /// Relative drift beyond the band.
    Exceeded,
    /// Present in the baseline, absent from the fresh run (a series or
    /// metric was dropped — silently losing coverage is a failure).
    MissingInFresh,
    /// Present fresh, absent from the baseline (new coverage; update the
    /// baseline intentionally).
    MissingInBaseline,
}

impl DriftStatus {
    /// Whether this row fails the gate.
    pub fn is_violation(self) -> bool {
        self != DriftStatus::Ok
    }

    fn label(self) -> &'static str {
        match self {
            DriftStatus::Ok => "ok",
            DriftStatus::Exceeded => "EXCEEDED",
            DriftStatus::MissingInFresh => "MISSING-FRESH",
            DriftStatus::MissingInBaseline => "NEW-METRIC",
        }
    }
}

/// One (series, scale, metric) comparison.
#[derive(Clone, Debug)]
pub struct Drift {
    pub series: String,
    pub scale: u32,
    pub metric: String,
    pub baseline: Option<f64>,
    pub fresh: Option<f64>,
    /// Signed relative delta vs the baseline (0 when either side is
    /// missing).
    pub rel_delta: f64,
    /// Band the row was judged against.
    pub tol: f64,
    pub status: DriftStatus,
}

/// Compare a fresh report against its baseline cell-by-cell over the
/// union of both key sets.
pub fn compare(fresh: &BenchReport, baseline: &BenchReport, tol: &TolerancePolicy) -> Vec<Drift> {
    let mut keys: Vec<(String, u32, String)> = Vec::new();
    for (s, n, m, _) in baseline.cells() {
        keys.push((s.to_string(), n, m.to_string()));
    }
    for (s, n, m, _) in fresh.cells() {
        let k = (s.to_string(), n, m.to_string());
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys.sort();

    let mut out = Vec::new();
    for (series, scale, metric) in keys {
        let b = baseline.get(&series, scale, &metric);
        let f = fresh.get(&series, scale, &metric);
        let band = tol.rel_for(&metric);
        let (rel_delta, status) = match (b, f) {
            (Some(b), Some(f)) => {
                let rel = if b == f {
                    0.0 // covers 0 == 0 and exact reproduction
                } else if b.abs() > 0.0 {
                    (f - b) / b.abs()
                } else {
                    f64::INFINITY // baseline 0, fresh nonzero
                };
                let ok = rel.abs() <= band;
                (
                    rel,
                    if ok {
                        DriftStatus::Ok
                    } else {
                        DriftStatus::Exceeded
                    },
                )
            }
            (Some(_), None) => (0.0, DriftStatus::MissingInFresh),
            (None, Some(_)) => (0.0, DriftStatus::MissingInBaseline),
            (None, None) => unreachable!("key came from one of the reports"),
        };
        out.push(Drift {
            series,
            scale,
            metric,
            baseline: b,
            fresh: f,
            rel_delta,
            tol: band,
            status,
        });
    }
    out
}

/// Count of gate-failing rows.
pub fn violations(drifts: &[Drift]) -> usize {
    drifts.iter().filter(|d| d.status.is_violation()).count()
}

/// Render the drift table. With `verbose` false only violating rows (plus
/// a per-figure summary line) are shown; CI artifacts store the verbose
/// form.
pub fn format_drift_table(name: &str, drifts: &[Drift], verbose: bool) -> String {
    let mut s = String::new();
    let bad = violations(drifts);
    s.push_str(&format!(
        "-- {name}: {} metrics compared, {bad} violation(s) --\n",
        drifts.len()
    ));
    let shown: Vec<&Drift> = drifts
        .iter()
        .filter(|d| verbose || d.status.is_violation())
        .collect();
    if !shown.is_empty() {
        s.push_str(&format!(
            "{:<28} {:>5} {:<16} {:>12} {:>12} {:>8} {:>6}  {}\n",
            "series", "nodes", "metric", "baseline", "fresh", "drift%", "tol%", "status"
        ));
    }
    for d in shown {
        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        let drift_pct = if d.rel_delta.is_finite() {
            format!("{:+.2}", d.rel_delta * 100.0)
        } else {
            "inf".to_string()
        };
        s.push_str(&format!(
            "{:<28} {:>5} {:<16} {:>12} {:>12} {:>8} {:>6.1}  {}\n",
            d.series,
            d.scale,
            d.metric,
            fmt_opt(d.baseline),
            fmt_opt(d.fresh),
            drift_pct,
            d.tol * 100.0,
            d.status.label()
        ));
    }
    s
}
