//! Property tests for the slate executor: for *any* job count, per-job
//! duration profile, and thread count, the ordered reduction must return
//! exactly the fragment sequence the serial reference produces. This is
//! the schedule-independence half of the determinism contract — the other
//! half (seeded sims) is exercised by `tests/tests/parallel_determinism.rs`.

use proptest::prelude::*;

use daos_bench::exec::Slate;

/// Deterministic per-job payload: what a real slate job would serialize
/// into a fragment (label is carried by the executor itself).
fn payload(i: usize, salt: u64) -> (u64, String) {
    let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    (v, format!("frag-{i}-{v:016x}"))
}

/// Build a slate whose jobs stall for `delays_us[i]` microseconds before
/// returning `payload(i)` — adversarial durations force out-of-order
/// completion whenever more than one thread is running.
fn build_slate(delays_us: &[u64], salt: u64) -> Slate<'static, (u64, String)> {
    let mut slate = Slate::new();
    for (i, &d) in delays_us.iter().enumerate() {
        slate.push(format!("job-{i}"), move || {
            if d > 0 {
                std::thread::sleep(std::time::Duration::from_micros(d));
            }
            payload(i, salt)
        });
    }
    slate
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (job count, duration profile, thread count) reduces to the
    /// same ordered (label, value) sequence as the serial reference.
    #[test]
    fn parallel_reduction_matches_serial_reference(
        delays_us in prop::collection::vec(0u64..1500, 0..24),
        threads in 1usize..=8,
        salt in any::<u64>(),
    ) {
        let serial = build_slate(&delays_us, salt)
            .run(1)
            .expect("no job panics");
        let parallel = build_slate(&delays_us, salt)
            .run(threads)
            .expect("no job panics");

        prop_assert_eq!(serial.len(), delays_us.len());
        prop_assert_eq!(parallel.len(), serial.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            prop_assert_eq!(&s.label, &p.label);
            prop_assert_eq!(&s.value, &p.value);
        }
    }

    /// The reduction order is the submission order, independent of which
    /// job finishes first: job i always lands at index i.
    #[test]
    fn reduction_order_is_submission_order(
        delays_us in prop::collection::vec(0u64..1500, 1..24),
        threads in 2usize..=8,
    ) {
        let results = build_slate(&delays_us, 0)
            .run(threads)
            .expect("no job panics");
        for (i, r) in results.iter().enumerate() {
            prop_assert_eq!(r.label.clone(), format!("job-{i}"));
            prop_assert_eq!(r.value.clone(), payload(i, 0));
        }
    }
}
