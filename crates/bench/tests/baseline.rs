//! Tests for the regression-harness machinery: JSON round-trip,
//! tolerance-band comparison, and each R1–R5 invariant predicate against
//! hand-built pass/fail fixtures.

use daos_bench::baseline::{compare, format_drift_table, violations, DriftStatus, TolerancePolicy};
use daos_bench::invariants::{
    evaluate_all, r1_s2_reads_best, r2_sx_write_crossover, r3_hdf5_dfuse_penalty,
    r4_shared_interface_parity, r5_pfs_collapse,
};
use daos_bench::report::{config_hash, fnv1a, BenchReport, SCHEMA_VERSION};

// ---------------------------------------------------------------- JSON

#[test]
fn json_round_trip_preserves_everything() {
    let mut r = BenchReport::new("fixture", 0xDEAD_BEEF_CAFE_F00D);
    r.config_hash = u64::MAX; // > 2^53: must survive without f64 loss
    r.wall_secs = 12.75;
    r.record("DFS-S2", 1, "write_gib_s", 3.25);
    r.record("DFS-S2", 16, "write_gib_s", 34.125);
    r.record("DFS-S2", 16, "read_gib_s", 108.0);
    r.record("weird \"series\"\n", 0, "lock_revokes", 1536.0);

    let text = r.to_json();
    let back = BenchReport::from_json(&text).expect("round trip");
    assert_eq!(back, r);
    assert_eq!(back.seed, 0xDEAD_BEEF_CAFE_F00D);
    assert_eq!(back.config_hash, u64::MAX);
    assert_eq!(back.get("DFS-S2", 16, "read_gib_s"), Some(108.0));
    assert_eq!(
        back.get("weird \"series\"\n", 0, "lock_revokes"),
        Some(1536.0)
    );
}

#[test]
fn json_round_trip_empty_report() {
    let r = BenchReport::new("empty", 7);
    let back = BenchReport::from_json(&r.to_json()).expect("round trip");
    assert_eq!(back, r);
    assert!(back.cells().is_empty());
}

#[test]
fn json_nan_becomes_broken_sentinel() {
    let mut r = BenchReport::new("nan", 1);
    r.record("s", 1, "write_gib_s", f64::NAN);
    let back = BenchReport::from_json(&r.to_json()).expect("round trip");
    // NaN is not JSON; it lands as a huge negative sentinel that any
    // tolerance band flags as drift.
    assert_eq!(back.get("s", 1, "write_gib_s"), Some(-1e308));
}

#[test]
fn json_rejects_schema_mismatch_and_garbage() {
    let mut r = BenchReport::new("x", 1);
    r.record("s", 1, "m", 1.0);
    let good = r.to_json();

    let bumped = good.replace(
        &format!("\"schema\": {SCHEMA_VERSION}"),
        &format!("\"schema\": {}", SCHEMA_VERSION + 1),
    );
    assert!(
        BenchReport::from_json(&bumped).is_err(),
        "schema bump must fail"
    );

    assert!(BenchReport::from_json("").is_err());
    assert!(BenchReport::from_json("{").is_err());
    assert!(BenchReport::from_json(&format!("{good} trailing")).is_err());
    assert!(
        BenchReport::from_json("[1, 2]").is_err(),
        "document must be an object"
    );
}

#[test]
fn json_files_round_trip_through_disk() {
    let dir = std::env::temp_dir().join(format!("daos_bench_test_{}", std::process::id()));
    let mut r = BenchReport::new("disk", 42);
    r.record("s", 4, "write_gib_s", 5.5);
    let path = r.write_to(&dir).expect("write");
    assert_eq!(path.file_name().unwrap(), "BENCH_disk.json");
    let back = BenchReport::load(&dir, "disk").expect("load");
    assert_eq!(back, r);
    assert!(BenchReport::load(&dir, "nonexistent").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hashes_are_stable() {
    // committed baselines embed these, so the functions must never drift
    assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    let h = config_hash(&daos_bench::paper_cluster(16));
    assert_eq!(h, config_hash(&daos_bench::paper_cluster(16)));
    assert_ne!(h, config_hash(&daos_bench::paper_cluster(8)));
}

// ------------------------------------------------------------ tolerance

fn pair(base_v: f64, fresh_v: f64, metric: &str) -> (BenchReport, BenchReport) {
    let mut base = BenchReport::new("t", 1);
    let mut fresh = BenchReport::new("t", 1);
    base.record("s", 1, metric, base_v);
    fresh.record("s", 1, metric, fresh_v);
    (base, fresh)
}

#[test]
fn drift_inside_band_passes() {
    let (base, fresh) = pair(100.0, 107.0, "write_gib_s"); // +7% < 8%
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert_eq!(drifts.len(), 1);
    assert_eq!(drifts[0].status, DriftStatus::Ok);
    assert!((drifts[0].rel_delta - 0.07).abs() < 1e-12);
    assert_eq!(violations(&drifts), 0);
}

#[test]
fn drift_outside_band_fails() {
    let (base, fresh) = pair(100.0, 91.0, "write_gib_s"); // -9% > 8%
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert_eq!(drifts[0].status, DriftStatus::Exceeded);
    assert_eq!(violations(&drifts), 1);
}

#[test]
fn counters_get_zero_tolerance() {
    let (base, fresh) = pair(12.0, 13.0, "map_version"); // any change fails
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert_eq!(drifts[0].tol, 0.0);
    assert_eq!(drifts[0].status, DriftStatus::Exceeded);

    let (base, fresh) = pair(12.0, 12.0, "map_version");
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert_eq!(
        drifts[0].status,
        DriftStatus::Ok,
        "exact match passes a 0% band"
    );
}

#[test]
fn missing_series_fails_both_directions() {
    let mut base = BenchReport::new("t", 1);
    let mut fresh = BenchReport::new("t", 1);
    base.record("dropped", 1, "write_gib_s", 5.0);
    base.record("kept", 1, "write_gib_s", 5.0);
    fresh.record("kept", 1, "write_gib_s", 5.0);
    fresh.record("added", 1, "write_gib_s", 5.0);

    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert_eq!(violations(&drifts), 2);
    let status_of = |series: &str| {
        drifts
            .iter()
            .find(|d| d.series == series)
            .map(|d| d.status)
            .unwrap()
    };
    assert_eq!(status_of("dropped"), DriftStatus::MissingInFresh);
    assert_eq!(status_of("added"), DriftStatus::MissingInBaseline);
    assert_eq!(status_of("kept"), DriftStatus::Ok);
}

#[test]
fn zero_baseline_nonzero_fresh_is_a_violation() {
    let (base, fresh) = pair(0.0, 0.001, "write_gib_s");
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert_eq!(drifts[0].status, DriftStatus::Exceeded);
    assert!(drifts[0].rel_delta.is_infinite());
}

#[test]
fn drift_table_names_the_violating_metric() {
    let (base, fresh) = pair(100.0, 50.0, "read_gib_s");
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    let quiet = format_drift_table("fig1_fpp", &drifts, false);
    assert!(quiet.contains("fig1_fpp"));
    assert!(quiet.contains("read_gib_s"));
    assert!(quiet.contains("EXCEEDED"));
    assert!(quiet.contains("1 violation(s)"));

    // verbose shows passing rows too
    let (base, fresh) = pair(100.0, 100.0, "read_gib_s");
    let drifts = compare(&fresh, &base, &TolerancePolicy::standard());
    assert!(!format_drift_table("f", &drifts, false).contains("read_gib_s"));
    assert!(format_drift_table("f", &drifts, true).contains("read_gib_s"));
}

// ------------------------------------------------------------ invariants

/// A fig1-shaped fixture that satisfies R1, R2 and R3.
fn fig1_fixture() -> BenchReport {
    let mut r = BenchReport::new("fig1_fpp", 1);
    for (series, lo_w, lo_r, hi_w, hi_r) in [
        // series, 1-node write/read, 16-node write/read
        ("DFS-S1", 3.0, 7.0, 33.0, 105.0),
        ("DFS-S2", 3.0, 7.0, 34.0, 100.0),
        ("DFS-SX", 2.4, 6.5, 38.0, 90.0),
        ("MPIIO-S1", 2.9, 6.8, 32.0, 100.0),
        ("MPIIO-S2", 2.9, 6.8, 33.0, 95.0),
        ("MPIIO-SX", 2.3, 6.3, 37.0, 88.0),
        ("HDF5-S1", 2.5, 6.0, 30.0, 92.0),
        ("HDF5-S2", 2.5, 6.0, 31.0, 90.0),
        ("HDF5-SX", 2.0, 5.5, 34.0, 80.0),
    ] {
        r.record(series, 1, "write_gib_s", lo_w);
        r.record(series, 1, "read_gib_s", lo_r);
        r.record(series, 16, "write_gib_s", hi_w);
        r.record(series, 16, "read_gib_s", hi_r);
    }
    r
}

/// A fig2-shaped fixture satisfying R4.
fn fig2_fixture() -> BenchReport {
    let mut r = BenchReport::new("fig2_shared", 1);
    for (series, w, rd) in [
        ("DFS-SX", 36.0, 95.0),
        ("MPIIO-SX", 34.0, 90.0),
        ("HDF5-SX", 32.0, 88.0),
    ] {
        r.record(series, 16, "write_gib_s", w);
        r.record(series, 16, "read_gib_s", rd);
    }
    r
}

/// A pfs_contrast-shaped fixture satisfying R5.
fn pfs_fixture() -> BenchReport {
    let mut r = BenchReport::new("pfs_contrast", 1);
    for (series, w) in [
        ("pfs-fpp", 30.0),
        ("pfs-shared", 9.0), // ratio 0.30
        ("daos-fpp", 38.0),
        ("daos-shared", 35.0), // ratio 0.92
    ] {
        r.record(series, 16, "write_gib_s", w);
    }
    r
}

#[test]
fn r1_passes_and_detects_inversion() {
    let mut f = fig1_fixture();
    let res = r1_s2_reads_best(&f);
    assert!(res.pass, "{}", res.detail);
    assert_eq!(res.id, "R1");

    // hand-invert: SX reads pull ahead of S2
    f.record("DFS-SX", 16, "read_gib_s", 120.0);
    let res = r1_s2_reads_best(&f);
    assert!(!res.pass);
    assert!(
        res.detail.contains("120.00"),
        "detail carries the numbers: {}",
        res.detail
    );
}

#[test]
fn r2_passes_and_detects_lost_crossover() {
    let mut f = fig1_fixture();
    assert!(r2_sx_write_crossover(&f).pass);

    // SX no longer wins at scale
    f.record("DFS-SX", 16, "write_gib_s", 30.0);
    assert!(!r2_sx_write_crossover(&f).pass);

    // ...or SX wins even at 1 node (crossover gone the other way)
    let mut f = fig1_fixture();
    f.record("DFS-SX", 1, "write_gib_s", 3.5);
    assert!(!r2_sx_write_crossover(&f).pass);
}

#[test]
fn r3_passes_and_detects_hdf5_catching_up() {
    let mut f = fig1_fixture();
    assert!(r3_hdf5_dfuse_penalty(&f).pass);

    // HDF5 write penalty vanishes
    f.record("HDF5-S1", 1, "write_gib_s", 2.9);
    assert!(!r3_hdf5_dfuse_penalty(&f).pass);

    // MPI-IO drifting far from DFS also breaks the claim
    let mut f = fig1_fixture();
    f.record("MPIIO-S1", 1, "write_gib_s", 2.0);
    assert!(!r3_hdf5_dfuse_penalty(&f).pass);
}

#[test]
fn r4_passes_and_detects_parity_loss() {
    let f = fig2_fixture();
    assert!(r4_shared_interface_parity(&f).pass);

    let mut f = fig2_fixture();
    f.record("HDF5-SX", 16, "write_gib_s", 20.0); // 0.56x DFS: parity broken
    assert!(!r4_shared_interface_parity(&f).pass);

    let mut f = fig2_fixture();
    f.record("MPIIO-SX", 16, "write_gib_s", 40.0); // DFS no longer highest
    assert!(!r4_shared_interface_parity(&f).pass);
}

#[test]
fn r5_passes_and_detects_pfs_recovery() {
    let f = pfs_fixture();
    assert!(r5_pfs_collapse(&f).pass);

    // PFS shared-file writes stop collapsing -> contrast claim dies
    let mut f = pfs_fixture();
    f.record("pfs-shared", 16, "write_gib_s", 20.0); // ratio 0.67
    assert!(!r5_pfs_collapse(&f).pass);

    // DAOS shared-file writes collapse too
    let mut f = pfs_fixture();
    f.record("daos-shared", 16, "write_gib_s", 20.0); // ratio 0.53
    assert!(!r5_pfs_collapse(&f).pass);
}

#[test]
fn invariants_fail_loudly_on_missing_cells() {
    let empty = BenchReport::new("fig1_fpp", 1);
    for res in evaluate_all(&empty, &empty, &empty) {
        assert!(!res.pass, "{} must fail on an empty report", res.id);
    }

    // a report with cells but a missing series names the gap
    let mut f = fig1_fixture();
    f.series.remove("DFS-SX");
    let res = r1_s2_reads_best(&f);
    assert!(!res.pass);
    assert!(res.detail.contains("DFS-SX"), "detail: {}", res.detail);
}

#[test]
fn evaluate_all_on_good_fixtures_is_all_green() {
    let results = evaluate_all(&fig1_fixture(), &fig2_fixture(), &pfs_fixture());
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| r.pass));
    let ids: Vec<_> = results.iter().map(|r| r.id).collect();
    assert_eq!(ids, ["R1", "R2", "R3", "R4", "R5"]);
}
