//! Determinism of the open-loop traffic harness: a `(mode, load)` point
//! is a pure function of its parameters — two runs in the same process
//! produce field-identical cells (latency quantiles, goodput, every shed
//! and damping counter), the property the committed
//! `BENCH_traffic_sweep.json` baseline and the R6–R8 invariant gate rest
//! on. Thread-count independence of the full slate (traffic cells
//! included) is covered by the `daos-tests` schedule-independence suite.

use daos_bench::traffic::{traffic_modes, traffic_point, TrafficParams};

#[test]
fn traffic_point_is_reproducible() {
    let params = TrafficParams::smoke();
    for mode in traffic_modes() {
        for &load in params.loads {
            let a = traffic_point(mode, load, params);
            let b = traffic_point(mode, load, params);
            assert_eq!(a, b, "{} @ {load}%", mode.series());
            assert_eq!(a.completed + a.failed, a.arrivals, "accounting closes");
        }
    }
}

/// The two protection modes must differ *only* through the admission and
/// damping knobs: identical seeds mean identical arrival sequences, so
/// at an uncongested load (50% of nominal) both modes complete every
/// request and goodput matches closely.
#[test]
fn modes_agree_below_the_knee() {
    let params = TrafficParams::smoke();
    let modes = traffic_modes();
    let ac = traffic_point(modes[2], 50, params); // SX/ac
    let noac = traffic_point(modes[3], 50, params); // SX/noac
    assert_eq!(ac.failed, 0);
    assert_eq!(noac.failed, 0);
    assert_eq!(ac.engine_sheds, 0);
    let rel = (ac.goodput_gib_s - noac.goodput_gib_s).abs() / noac.goodput_gib_s;
    assert!(
        rel < 0.25,
        "uncongested goodput diverged: {ac:?} vs {noac:?}"
    );
}
