//! # daos-mpiio — a ROMIO-style MPI-IO implementation
//!
//! MPI-IO file handles over two ADIO drivers:
//!
//! * **UFS** — POSIX through a [`daos_dfuse::DfuseMount`] (how the paper's
//!   "MPI-IO" series reaches DAOS);
//! * **DFS** — straight `libdfs` (what ROMIO's native DAOS driver does).
//!
//! Independent `read_at`/`write_at` go straight to the driver. Collective
//! `read_at_all`/`write_at_all` implement ROMIO's *generalised two-phase*
//! protocol: offsets are exchanged with an allgather, and — when collective
//! buffering is active — data is shuffled to one aggregator per node, which
//! issues large, `cb_buffer`-aligned I/O over its file domain. With the
//! default `automatic` setting, collective buffering only engages when the
//! ranks' accesses actually interleave, matching `romio_cb_write=automatic`.

// No `unsafe` may enter the workspace outside the audited kernel
// crate (`daos-sim`, which carries `deny`): see simlint rule D05.
#![forbid(unsafe_code)]

use daos_core::DaosError;
use daos_dfs::DfsFile;
use daos_dfuse::PosixFile;
use daos_mpi::MpiRank;
use daos_sim::Sim;
use daos_vos::tree::ReadSeg;
use daos_vos::Payload;

/// Collective-buffering mode (`romio_cb_write` / `romio_cb_read`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CbMode {
    /// Engage only when accesses interleave (ROMIO default).
    Auto,
    /// Always aggregate.
    Enable,
    /// Never aggregate.
    Disable,
}

/// MPI-IO hints.
#[derive(Clone, Copy, Debug)]
pub struct Hints {
    pub cb_write: CbMode,
    pub cb_read: CbMode,
    /// Aggregator staging-buffer size (I/O granularity in the CB phase).
    pub cb_buffer: u64,
}

impl Default for Hints {
    fn default() -> Self {
        Hints {
            cb_write: CbMode::Auto,
            cb_read: CbMode::Auto,
            cb_buffer: 16 << 20,
        }
    }
}

/// Per-rank file handle of the underlying driver.
#[derive(Clone)]
pub enum RankFile {
    /// POSIX via DFuse.
    Posix(PosixFile),
    /// Native DFS.
    Dfs(DfsFile),
}

impl RankFile {
    async fn write(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        match self {
            RankFile::Posix(f) => f.pwrite(sim, off, data).await,
            RankFile::Dfs(f) => f.write(sim, off, data).await,
        }
    }
    async fn read(&self, sim: &Sim, off: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        match self {
            RankFile::Posix(f) => f.pread(sim, off, len).await,
            RankFile::Dfs(f) => f.read(sim, off, len).await,
        }
    }
}

/// An open MPI-IO file (one per rank, SPMD).
pub struct MpiFile {
    rank: MpiRank,
    file: RankFile,
    hints: Hints,
}

/// Do the (sorted-by-rank) ranges interleave? ROMIO's test: collective
/// buffering pays off only if some rank starts before a lower rank ends.
pub fn is_interleaved(ranges: &[(u64, u64)]) -> bool {
    let mut prev_end = 0u64;
    for &(off, len) in ranges {
        if off < prev_end {
            return true;
        }
        prev_end = prev_end.max(off + len);
    }
    false
}

/// Assemble read segments into one payload covering `[off, off+len)`
/// (holes become zeroes; pattern payloads stay unmaterialised when the
/// range is a single segment).
pub fn assemble(segs: &[ReadSeg], off: u64, len: u64) -> Payload {
    if segs.len() == 1 && segs[0].offset == off && segs[0].len == len {
        if let Some(d) = &segs[0].data {
            return d.clone();
        }
    }
    let mut out = vec![0u8; len as usize];
    for s in segs {
        let Some(d) = &s.data else { continue };
        // clip to [off, off+len)
        let s_start = s.offset.max(off);
        let s_end = (s.offset + s.len).min(off + len);
        if s_start >= s_end {
            continue;
        }
        let m = d.materialize();
        let src = (s_start - s.offset) as usize;
        let dst = (s_start - off) as usize;
        let n = (s_end - s_start) as usize;
        out[dst..dst + n].copy_from_slice(&m[src..src + n]);
    }
    Payload::bytes(out)
}

/// Slice `[off, off+len)` out of a set of segments (absolute offsets kept).
pub fn slice_segs(segs: &[ReadSeg], off: u64, len: u64) -> Vec<ReadSeg> {
    let end = off + len;
    let mut out = Vec::new();
    for s in segs {
        let s_start = s.offset.max(off);
        let s_end = (s.offset + s.len).min(end);
        if s_start >= s_end {
            continue;
        }
        out.push(ReadSeg {
            offset: s_start,
            len: s_end - s_start,
            data: s
                .data
                .as_ref()
                .map(|d| d.slice(s_start - s.offset, s_end - s_start)),
        });
    }
    out
}

impl MpiFile {
    /// Collective open: every rank passes its own driver handle.
    pub async fn open(sim: &Sim, rank: MpiRank, file: RankFile, hints: Hints) -> MpiFile {
        rank.barrier(sim).await;
        MpiFile { rank, file, hints }
    }

    /// Non-collective construction (`MPI_COMM_SELF`-style handles, e.g.
    /// IOR file-per-process). Collective I/O must not be used on it.
    pub fn new_independent(rank: MpiRank, file: RankFile, hints: Hints) -> MpiFile {
        MpiFile { rank, file, hints }
    }

    /// The MPI rank this handle belongs to.
    pub fn rank(&self) -> &MpiRank {
        &self.rank
    }

    /// Independent write.
    pub async fn write_at(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        self.file.write(sim, off, data).await
    }

    /// Independent read.
    pub async fn read_at(&self, sim: &Sim, off: u64, len: u64) -> Result<Vec<ReadSeg>, DaosError> {
        self.file.read(sim, off, len).await
    }

    /// Collective close.
    pub async fn close(self, sim: &Sim) {
        self.rank.barrier(sim).await;
    }

    /// One aggregator per node: the lowest rank on each node, in rank order.
    fn aggregators(&self) -> Vec<usize> {
        let w = self.rank.world();
        let mut aggs = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..w.size() {
            if seen.insert(w.node_of(r)) {
                aggs.push(r);
            }
        }
        aggs
    }

    /// File-domain split of `[lo, hi)` across aggregators, aligned to the
    /// CB buffer so aggregator I/O is large and aligned.
    fn domains(&self, lo: u64, hi: u64, n_aggs: usize) -> Vec<(u64, u64)> {
        let total = hi - lo;
        let per = (total / n_aggs as u64).div_ceil(self.hints.cb_buffer) * self.hints.cb_buffer;
        let per = per.max(self.hints.cb_buffer);
        (0..n_aggs)
            .map(|i| {
                let s = (lo + i as u64 * per).min(hi);
                let e = (s + per).min(hi);
                (s, e)
            })
            .collect()
    }

    fn cb_active(&self, mode: CbMode, ranges: &[(u64, u64)]) -> bool {
        match mode {
            CbMode::Enable => true,
            CbMode::Disable => false,
            CbMode::Auto => is_interleaved(ranges),
        }
    }

    /// Collective write of one contiguous region per rank.
    pub async fn write_at_all(&self, sim: &Sim, off: u64, data: Payload) -> Result<(), DaosError> {
        let len = data.len();
        // phase 0: exchange access ranges
        let mut mine = Vec::with_capacity(16);
        mine.extend_from_slice(&off.to_le_bytes());
        mine.extend_from_slice(&len.to_le_bytes());
        let all = self.rank.allgather(sim, mine).await;
        let ranges: Vec<(u64, u64)> = all
            .iter()
            .map(|b| {
                (
                    u64::from_le_bytes(b[0..8].try_into().unwrap()),
                    u64::from_le_bytes(b[8..16].try_into().unwrap()),
                )
            })
            .collect();

        if !self.cb_active(self.hints.cb_write, &ranges) {
            self.file.write(sim, off, data).await?;
            self.rank.barrier(sim).await;
            return Ok(());
        }

        // phase 1: shuffle data to aggregators
        let lo = ranges.iter().map(|r| r.0).min().unwrap();
        let hi = ranges.iter().map(|r| r.0 + r.1).max().unwrap();
        let aggs = self.aggregators();
        let doms = self.domains(lo, hi, aggs.len());
        let tag = 0x77AA;
        let me = self.rank.rank();

        // send my pieces to owning aggregators
        for (ai, &(ds, de)) in doms.iter().enumerate() {
            let s = off.max(ds);
            let e = (off + len).min(de);
            if s >= e {
                continue;
            }
            let piece = data.slice(s - off, e - s);
            self.rank
                .send_meta(sim, aggs[ai], tag, (s, e - s), piece)
                .await;
        }

        // if I am an aggregator: collect pieces and write my domain
        if let Some(ai) = aggs.iter().position(|&a| a == me) {
            let (ds, de) = doms[ai];
            let mut pieces: Vec<(u64, Payload)> = Vec::new();
            for (r, &(roff, rlen)) in ranges.iter().enumerate() {
                let s = roff.max(ds);
                let e = (roff + rlen).min(de);
                if s >= e {
                    continue;
                }
                let msg = self.rank.recv_msg(sim, r, tag).await;
                pieces.push((msg.meta.0, msg.data));
            }
            pieces.sort_by_key(|(o, _)| *o);
            // phase 2: issue cb_buffer-sized contiguous writes
            let mut run_start: Option<u64> = None;
            let mut run: Vec<(u64, Payload)> = Vec::new();
            let mut flush = Vec::new();
            for (o, p) in pieces {
                match run_start {
                    Some(_)
                        if run
                            .last()
                            .map(|(lo2, lp)| lo2 + lp.len() == o)
                            .unwrap_or(false) =>
                    {
                        run.push((o, p));
                    }
                    _ => {
                        if !run.is_empty() {
                            flush.push(std::mem::take(&mut run));
                        }
                        run_start = Some(o);
                        run.push((o, p));
                    }
                }
            }
            if !run.is_empty() {
                flush.push(run);
            }
            for run in flush {
                let start = run[0].0;
                let total: u64 = run.iter().map(|(_, p)| p.len()).sum();
                // write in cb_buffer chunks; each chunk may span pieces, so
                // write piece-wise but batched at cb granularity
                let mut cur = start;
                let mut idx = 0usize;
                let mut inner = 0u64;
                while cur < start + total {
                    let chunk = self.hints.cb_buffer.min(start + total - cur);
                    let mut remaining = chunk;
                    while remaining > 0 {
                        let (po, p) = &run[idx];
                        let avail = p.len() - inner;
                        let take = avail.min(remaining);
                        self.file
                            .write(sim, po + inner, p.slice(inner, take))
                            .await?;
                        inner += take;
                        remaining -= take;
                        if inner == p.len() {
                            idx += 1;
                            inner = 0;
                        }
                    }
                    cur += chunk;
                }
            }
            let _ = de;
        }
        self.rank.barrier(sim).await;
        Ok(())
    }

    /// Collective read of one contiguous region per rank.
    pub async fn read_at_all(
        &self,
        sim: &Sim,
        off: u64,
        len: u64,
    ) -> Result<Vec<ReadSeg>, DaosError> {
        let mut mine = Vec::with_capacity(16);
        mine.extend_from_slice(&off.to_le_bytes());
        mine.extend_from_slice(&len.to_le_bytes());
        let all = self.rank.allgather(sim, mine).await;
        let ranges: Vec<(u64, u64)> = all
            .iter()
            .map(|b| {
                (
                    u64::from_le_bytes(b[0..8].try_into().unwrap()),
                    u64::from_le_bytes(b[8..16].try_into().unwrap()),
                )
            })
            .collect();

        if !self.cb_active(self.hints.cb_read, &ranges) {
            let segs = self.file.read(sim, off, len).await?;
            self.rank.barrier(sim).await;
            return Ok(segs);
        }

        let lo = ranges.iter().map(|r| r.0).min().unwrap();
        let hi = ranges.iter().map(|r| r.0 + r.1).max().unwrap();
        let aggs = self.aggregators();
        let doms = self.domains(lo, hi, aggs.len());
        let tag = 0x77BB;
        let me = self.rank.rank();

        // aggregators read their domain and scatter
        if let Some(ai) = aggs.iter().position(|&a| a == me) {
            let (ds, de) = doms[ai];
            if ds < de {
                // union of the requested ranges clipped to my domain,
                // merged where contiguous
                let mut wanted: Vec<(u64, u64)> = ranges
                    .iter()
                    .filter_map(|&(roff, rlen)| {
                        let s = roff.max(ds);
                        let e = (roff + rlen).min(de);
                        (s < e).then_some((s, e))
                    })
                    .collect();
                wanted.sort_unstable();
                let mut merged: Vec<(u64, u64)> = Vec::new();
                for (s, e) in wanted {
                    match merged.last_mut() {
                        Some(last) if last.1 >= s => last.1 = last.1.max(e),
                        _ => merged.push((s, e)),
                    }
                }
                // read each merged run in cb_buffer chunks
                let mut segs: Vec<ReadSeg> = Vec::new();
                for (s, e) in merged {
                    let mut cur = s;
                    while cur < e {
                        let chunk = self.hints.cb_buffer.min(e - cur);
                        segs.extend(self.file.read(sim, cur, chunk).await?);
                        cur += chunk;
                    }
                }
                for (r, &(roff, rlen)) in ranges.iter().enumerate() {
                    let s = roff.max(ds);
                    let e = (roff + rlen).min(de);
                    if s >= e {
                        continue;
                    }
                    let piece = assemble(&slice_segs(&segs, s, e - s), s, e - s);
                    self.rank.send_meta(sim, r, tag, (s, e - s), piece).await;
                }
            }
        }

        // every rank collects its pieces from the owning aggregators
        let mut segs: Vec<ReadSeg> = Vec::new();
        for (ai, &(ds, de)) in doms.iter().enumerate() {
            let s = off.max(ds);
            let e = (off + len).min(de);
            if s >= e {
                continue;
            }
            let msg = self.rank.recv_msg(sim, aggs[ai], tag).await;
            segs.push(ReadSeg {
                offset: msg.meta.0,
                len: msg.meta.1,
                data: Some(msg.data),
            });
        }
        segs.sort_by_key(|s| s.offset);
        self.rank.barrier(sim).await;
        Ok(segs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_detection() {
        // disjoint ordered (IOR segmented): not interleaved
        assert!(!is_interleaved(&[(0, 10), (10, 10), (20, 10)]));
        // gaps still fine
        assert!(!is_interleaved(&[(0, 10), (100, 10)]));
        // strided per-rank pattern: interleaved
        assert!(is_interleaved(&[(0, 10), (5, 10)]));
        assert!(is_interleaved(&[(20, 10), (0, 10)]));
        assert!(!is_interleaved(&[]));
    }

    #[test]
    fn assemble_fills_holes_with_zeroes() {
        let segs = vec![
            ReadSeg {
                offset: 10,
                len: 5,
                data: Some(Payload::bytes(vec![1, 2, 3, 4, 5])),
            },
            ReadSeg {
                offset: 15,
                len: 5,
                data: None,
            },
        ];
        let p = assemble(&segs, 10, 10);
        assert_eq!(&p.materialize()[..], &[1, 2, 3, 4, 5, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn assemble_single_full_segment_is_zero_copy() {
        let pat = Payload::pattern(5, 1000);
        let segs = vec![ReadSeg {
            offset: 0,
            len: 1000,
            data: Some(pat.clone()),
        }];
        let p = assemble(&segs, 0, 1000);
        assert_eq!(p, pat, "must not materialise a full pattern segment");
    }

    #[test]
    fn slice_segs_clips_properly() {
        let segs = vec![ReadSeg {
            offset: 0,
            len: 100,
            data: Some(Payload::pattern(1, 100)),
        }];
        let out = slice_segs(&segs, 30, 40);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].offset, 30);
        assert_eq!(out[0].len, 40);
        assert_eq!(
            out[0].data.as_ref().unwrap().materialize(),
            Payload::pattern(1, 100).slice(30, 40).materialize()
        );
    }
}
