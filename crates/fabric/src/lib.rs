//! # daos-fabric — OFI-like network fabric model
//!
//! DAOS uses libfabric/OFI over a low-latency interconnect (Omni-Path on the
//! paper's NEXTGenIO testbed). We model the fabric at flow level:
//!
//! * each node owns a full-duplex NIC — independent `tx` and `rx`
//!   [`Pipe`]s at link rate;
//! * the switch is non-blocking (true for the 8–40 node scales here), so a
//!   message's cost is injection (tx), wire latency, and ejection (rx);
//! * large messages are *pipelined* in frames: the transmit of frame `i+1`
//!   overlaps the receive of frame `i`, so one flow reaches line rate while
//!   still contending frame-by-frame with other flows at both endpoints —
//!   this is what produces realistic incast behaviour at the servers.
//!
//! [`Endpoint`] adds an addressable RPC surface on top: register a handler
//! mailbox per node, `call` from anywhere, get a reply future.

use std::cell::RefCell;
use std::rc::Rc;

use daos_sim::time::{SimDuration, SimTime};
use daos_sim::units::Bandwidth;
use daos_sim::{Pipe, SharedPipe, Sim};

/// Index of a node on the fabric.
pub type NodeId = usize;

/// Fabric-wide parameters.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Per-direction link bandwidth at every NIC.
    pub link_bw: Bandwidth,
    /// One-way wire + switch latency.
    pub wire_latency: SimDuration,
    /// Pipelining frame: unit of overlap between tx and rx.
    pub frame: u64,
    /// Sender-side CPU cost to inject one message (doorbell, descriptor).
    pub per_msg_cpu: SimDuration,
    /// Bandwidth of the intra-node loopback path (shared-memory copy).
    pub loopback_bw: Bandwidth,
}

impl Default for FabricConfig {
    /// 100 Gb/s Omni-Path-class fabric.
    fn default() -> Self {
        FabricConfig {
            link_bw: Bandwidth::gbit_per_sec(100.0),
            wire_latency: SimDuration::from_ns(1_100),
            frame: 128 * 1024,
            per_msg_cpu: SimDuration::from_ns(300),
            loopback_bw: Bandwidth::gib_per_sec(20.0),
        }
    }
}

struct NodeNet {
    tx: SharedPipe,
    rx: SharedPipe,
    loopback: SharedPipe,
}

/// The interconnect: a set of NICs plus a non-blocking switch.
pub struct Fabric {
    cfg: FabricConfig,
    nodes: Vec<NodeNet>,
}

impl Fabric {
    /// Build a fabric with `n` nodes.
    pub fn new(n: usize, cfg: FabricConfig) -> Rc<Self> {
        let nodes = (0..n)
            .map(|i| NodeNet {
                tx: Pipe::new(format!("nic{i}.tx"), cfg.link_bw, SimDuration::ZERO),
                rx: Pipe::new(format!("nic{i}.rx"), cfg.link_bw, SimDuration::ZERO),
                loopback: Pipe::new(format!("nic{i}.lo"), cfg.loopback_bw, SimDuration::ZERO),
            })
            .collect();
        Rc::new(Fabric { cfg, nodes })
    }

    /// Number of nodes on the fabric.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }
    /// True if the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Estimated request/response round-trip for a tiny control message.
    pub fn rtt(&self) -> SimDuration {
        (self.cfg.wire_latency + self.cfg.per_msg_cpu) * 2
    }

    /// Move `bytes` from `from` to `to`, returning the completion instant.
    ///
    /// Pipelined across tx/rx in `frame`-sized units; contends FIFO with
    /// concurrent flows at both NICs. Zero-byte messages still pay wire
    /// latency and injection cost (control traffic).
    pub async fn message(&self, sim: &Sim, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        let done = self.reserve_message(sim, from, to, bytes);
        sim.sleep_until(done).await;
        done
    }

    /// Reservation-only variant of [`Fabric::message`]: books the NIC time
    /// and returns the completion instant without awaiting it.
    pub fn reserve_message(&self, sim: &Sim, from: NodeId, to: NodeId, bytes: u64) -> SimTime {
        let now = sim.now().as_ns();
        let cpu = self.cfg.per_msg_cpu.as_ns();
        if from == to {
            let lo = &self.nodes[from].loopback;
            let (_, end) = lo.reserve_after(now + cpu, bytes);
            return SimTime::from_ns(end + 200); // shared-memory handoff
        }
        let tx = &self.nodes[from].tx;
        let rx = &self.nodes[to].rx;
        let wire = self.cfg.wire_latency.as_ns();
        let mut remaining = bytes;
        let mut done = now + cpu + wire; // covers the zero-byte case
        let mut first = true;
        while remaining > 0 || first {
            let frame = remaining.min(self.cfg.frame);
            let earliest = if first { now + cpu } else { now };
            let (_, tx_end) = tx.reserve_after(earliest, frame);
            let (_, rx_end) = rx.reserve_after(tx_end + wire, frame);
            done = rx_end;
            remaining -= frame;
            first = false;
        }
        SimTime::from_ns(done)
    }

    /// Total bytes ejected at `node` (received).
    pub fn rx_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node].rx.bytes_total()
    }
    /// Total bytes injected at `node` (sent).
    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.nodes[node].tx.bytes_total()
    }
}

// ----------------------------------------------------------------- RPC

/// An in-flight RPC delivered to a handler, with a reply slot.
pub struct Incoming<Req, Rsp> {
    /// Originating node.
    pub from: NodeId,
    /// The request body.
    pub req: Req,
    /// Payload size the caller attached (already charged on the wire).
    pub bulk_in: u64,
    reply: daos_sim::sync::OneshotSender<(Rsp, u64)>,
}

impl<Req, Rsp> Incoming<Req, Rsp> {
    /// Complete the RPC. `bulk_out` is the size of any bulk payload carried
    /// by the response (e.g. read data); it is charged on the reply path.
    pub fn respond(self, rsp: Rsp, bulk_out: u64) {
        self.reply.send((rsp, bulk_out));
    }
}

/// A mailbox-backed RPC endpoint bound to one fabric node.
///
/// Servers `serve()` requests; clients `call()` them. Request and response
/// wire costs are charged on the fabric, including bulk payloads, which is
/// how RDMA transfers appear at flow level.
pub struct Endpoint<Req, Rsp> {
    fabric: Rc<Fabric>,
    node: NodeId,
    inbox: daos_sim::Mailbox<Incoming<Req, Rsp>>,
    /// Fixed request header size on the wire.
    header: u64,
    calls: RefCell<u64>,
}

impl<Req: 'static, Rsp: 'static> Endpoint<Req, Rsp> {
    /// Bind an endpoint to `node`.
    pub fn bind(fabric: Rc<Fabric>, node: NodeId) -> Rc<Self> {
        Rc::new(Endpoint {
            fabric,
            node,
            inbox: daos_sim::Mailbox::new(),
            header: 256,
            calls: RefCell::new(0),
        })
    }

    /// The node this endpoint is bound to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of calls served so far.
    pub fn call_count(&self) -> u64 {
        *self.calls.borrow()
    }

    /// Receive the next incoming RPC (server side). `None` once closed.
    pub async fn serve(&self) -> Option<Incoming<Req, Rsp>> {
        self.inbox.recv().await
    }

    /// Non-blocking receive: the next queued RPC, if any (poll-driven
    /// servers such as the pool-service replica tick loop).
    pub fn try_serve(&self) -> Option<Incoming<Req, Rsp>> {
        self.inbox.try_recv()
    }

    /// Stop accepting new requests.
    pub fn close(&self) {
        self.inbox.close();
    }

    /// Issue an RPC from `from_node` to this endpoint.
    ///
    /// `bulk_in` bytes ride the request (write payloads); the response
    /// carries whatever the handler attaches (read payloads).
    pub async fn call(
        &self,
        sim: &Sim,
        from_node: NodeId,
        req: Req,
        bulk_in: u64,
    ) -> Result<Rsp, daos_sim::sync::Closed> {
        *self.calls.borrow_mut() += 1;
        self.fabric
            .message(sim, from_node, self.node, self.header + bulk_in)
            .await;
        let (tx, rx) = daos_sim::oneshot();
        self.inbox.send(Incoming {
            from: from_node,
            req,
            bulk_in,
            reply: tx,
        });
        let (rsp, bulk_out) = rx.await?;
        self.fabric
            .message(sim, self.node, from_node, self.header + bulk_out)
            .await;
        Ok(rsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daos_sim::executor::join_all;
    use daos_sim::units::{gib_per_sec, MIB};

    fn fab(n: usize) -> Rc<Fabric> {
        Fabric::new(n, FabricConfig::default())
    }

    #[test]
    fn single_flow_reaches_line_rate() {
        let mut sim = Sim::new(1);
        let f = fab(2);
        let secs = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                f.message(&sim, 0, 1, 256 * MIB).await;
                (sim.now() - t0).as_secs_f64()
            }
        });
        let gib_s = gib_per_sec(256 * MIB, secs);
        let line = FabricConfig::default().link_bw.as_gib_per_sec();
        assert!(gib_s > 0.95 * line, "got {gib_s} GiB/s, line {line}");
        assert!(gib_s <= line * 1.01, "faster than line rate: {gib_s}");
    }

    #[test]
    fn incast_shares_receiver_bandwidth() {
        let mut sim = Sim::new(1);
        let f = fab(3);
        let secs = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                let futs: Vec<_> = (0..2)
                    .map(|src| {
                        let f = Rc::clone(&f);
                        let s = sim.clone();
                        async move {
                            f.message(&s, src, 2, 64 * MIB).await;
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                (sim.now() - t0).as_secs_f64()
            }
        });
        // 128 MiB through one rx at ~11.6 GiB/s: senders see ~half line rate each
        let agg = gib_per_sec(128 * MIB, secs);
        let line = FabricConfig::default().link_bw.as_gib_per_sec();
        assert!(agg > 0.9 * line && agg <= line * 1.01, "agg {agg}, line {line}");
    }

    #[test]
    fn disjoint_pairs_scale() {
        let mut sim = Sim::new(1);
        let f = fab(4);
        let secs = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                let futs: Vec<_> = [(0usize, 1usize), (2, 3)]
                    .into_iter()
                    .map(|(a, b)| {
                        let f = Rc::clone(&f);
                        let s = sim.clone();
                        async move {
                            f.message(&s, a, b, 64 * MIB).await;
                        }
                    })
                    .collect();
                join_all(&sim, futs).await;
                (sim.now() - t0).as_secs_f64()
            }
        });
        let agg = gib_per_sec(128 * MIB, secs);
        let line = FabricConfig::default().link_bw.as_gib_per_sec();
        assert!(agg > 1.9 * line, "disjoint pairs should double: {agg}");
    }

    #[test]
    fn zero_byte_message_costs_latency() {
        let mut sim = Sim::new(1);
        let f = fab(2);
        let t = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                f.message(&sim, 0, 1, 0).await;
                sim.now()
            }
        });
        let cfg = FabricConfig::default();
        assert!(t.as_ns() >= cfg.wire_latency.as_ns());
        assert!(t.as_ns() < 10_000, "{t}");
    }

    #[test]
    fn loopback_faster_than_wire() {
        let mut sim = Sim::new(1);
        let f = fab(2);
        let (lo, wire) = sim.block_on(|sim| {
            let f = Rc::clone(&f);
            async move {
                let t0 = sim.now();
                f.message(&sim, 0, 0, 16 * MIB).await;
                let t1 = sim.now();
                f.message(&sim, 0, 1, 16 * MIB).await;
                let t2 = sim.now();
                ((t1 - t0).as_ns(), (t2 - t1).as_ns())
            }
        });
        assert!(lo < wire, "loopback {lo} should beat wire {wire}");
    }

    #[test]
    fn rpc_round_trip_with_bulk() {
        let mut sim = Sim::new(1);
        let got = sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            let server = {
                let ep = Rc::clone(&ep);
                sim.spawn(async move {
                    while let Some(inc) = ep.serve().await {
                        let v = inc.req * 2;
                        inc.respond(v, 1024);
                    }
                })
            };
            let r = ep.call(&sim, 0, 21, 4096).await.unwrap();
            ep.close();
            server.await;
            r
        });
        assert_eq!(got, 42);
    }

    #[test]
    fn rpc_server_drop_yields_closed() {
        let mut sim = Sim::new(1);
        let r = sim.block_on(|sim| async move {
            let f = fab(2);
            let ep: Rc<Endpoint<u32, u32>> = Endpoint::bind(Rc::clone(&f), 1);
            // server takes the request then drops it without responding
            let ep2 = Rc::clone(&ep);
            sim.spawn(async move {
                let inc = ep2.serve().await.unwrap();
                drop(inc);
            });
            ep.call(&sim, 0, 1, 0).await
        });
        assert!(r.is_err());
    }
}
